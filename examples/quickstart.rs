//! Quickstart: build a fat-tree, route a pair, compare schemes.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use lmpr::prelude::*;

fn main() {
    // ── 1. Build a topology ─────────────────────────────────────────
    // The paper's Figure 3 example: XGFT(3; 4,4,4; 1,2,4).
    let spec = XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec");
    let topo = Topology::new(spec);
    println!("topology : {}", topo.spec());
    println!("PNs      : {}", topo.num_pns());
    println!("links    : {} (directed)", topo.num_links());

    // ── 2. Inspect the path space of an SD pair ─────────────────────
    let (s, d) = (PnId(0), PnId(63));
    println!("\npair ({}, {}):", s.0, d.0);
    println!("  NCA level    : {}", topo.nca_level(s, d));
    println!("  paths        : {}", topo.num_paths(s, d));
    println!("  d-mod-k path : {}", topo.dmodk_path(s, d).0);

    // List every path the way the paper does in §4.
    for p in topo.all_paths(s, d) {
        let hops: Vec<String> = topo
            .path_nodes(s, d, p)
            .iter()
            .map(|n| format!("L{}#{}", n.level, n.rank))
            .collect();
        println!("  path {}: {}", p.0, hops.join(" -> "));
    }

    // ── 3. Ask each heuristic for K = 3 paths ───────────────────────
    println!("\nK = 3 selections for ({}, {}):", s.0, d.0);
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(DModK),
        Box::new(ShiftOne::new(3)),
        Box::new(Disjoint::new(3)),
        Box::new(RandomK::new(3, 42)),
        Box::new(Umulti),
    ];
    for r in &routers {
        let set = r.path_set(&topo, s, d);
        let ids: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
        println!(
            "  {:12} -> {:?} (each carries {:.0}%)",
            r.name(),
            ids,
            set.fraction() * 100.0
        );
    }

    // ── 4. Compare max link load on one random permutation ──────────
    let tm = TrafficMatrix::permutation(&random_permutation(topo.num_pns(), 7));
    println!("\nmax link load on one random permutation:");
    for r in &routers {
        let loads = LinkLoads::accumulate(&topo, r, &tm);
        println!("  {:12} -> {:.3}", r.name(), loads.max_load());
    }
    let bound = lmpr::flowsim::ml_lower_bound(&topo, &tm);
    println!("  {:12} -> {:.3}", "optimal (ML)", bound);
}
