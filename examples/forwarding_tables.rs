//! How a subnet manager would install limited multi-path routing:
//! destination-LID linear forwarding tables with LMC-based path slots.
//!
//! Run with: `cargo run --release --example forwarding_tables`

#![forbid(unsafe_code)]

use lmpr::prelude::*;
use lmpr::routing::forwarding::{ForwardingTables, SlotOrder};
use lmpr::routing::lid;
use lmpr::topology::render;

fn main() {
    // The paper's Figure 3 topology.
    let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid"));
    println!("topology: {}\n", topo.spec());

    for k in [1u64, 2, 4, 8] {
        let ft = ForwardingTables::build(&topo, k, SlotOrder::BottomFirst);
        println!(
            "K = {k}: LMC = {}, {} LFT entries, {} of {} unicast LIDs",
            ft.lmc(),
            ft.total_entries(),
            lid::lids_required(&topo, k).unwrap(),
            lid::UNICAST_LIDS,
        );
    }

    // Show the actual table walks for the paper's worked pair (0, 63).
    let k = 4;
    let ft = ForwardingTables::build(&topo, k, SlotOrder::BottomFirst);
    let (s, d) = (PnId(0), PnId(63));
    println!("\ntable walks for pair (0, 63), K = {k}, bottom-first slots:");
    for slot in 0..k {
        let nodes = ft.route(&topo, s, d, slot).expect("tables verify");
        let labels: Vec<String> = nodes.iter().map(|n| render::label(&topo, *n)).collect();
        println!(
            "  LID {:>3} (slot {slot}): {}",
            ft.lid(d, slot),
            labels.join(" -> ")
        );
    }

    // Validate the whole fabric the way a subnet manager would.
    let mut walks = 0u64;
    for s in 0..topo.num_pns() {
        for d in 0..topo.num_pns() {
            for slot in 0..k {
                ft.route(&topo, PnId(s), PnId(d), slot)
                    .expect("all routes verify");
                walks += 1;
            }
        }
    }
    println!("\nvalidated {walks} table walks: all shortest paths, all correct");
    println!(
        "\nNote: destination-based tables can only shift d-mod-k digit-wise\n\
         (source-independently); the paper's index arithmetic is a per-pair\n\
         idealization. See lmpr_core::forwarding for the realizability story."
    );
}
