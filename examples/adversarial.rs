//! Theorem 2 live: a traffic pattern on which d-mod-k is `Π w_i` times
//! worse than optimal, plus the InfiniBand LID arithmetic that makes
//! unlimited multi-path routing unrealizable on large fabrics.
//!
//! Run with: `cargo run --release --example adversarial`

#![forbid(unsafe_code)]

use lmpr::flowsim::{ml_lower_bound, performance_ratio};
use lmpr::prelude::*;
use lmpr::routing::lid;
use lmpr::traffic::adversarial_concentration;

fn main() {
    // A tree wide enough to host the Theorem 2 construction.
    let topo = Topology::new(XgftSpec::new(&[4, 4, 64], &[2, 2, 2]).expect("valid"));
    println!("topology: {} ({} PNs)\n", topo.spec(), topo.num_pns());

    let pattern = adversarial_concentration(&topo).expect("tree is wide enough");
    println!(
        "adversarial pattern: {} unit flows, every destination a multiple of Π w_i = {}",
        pattern.tm.flows().len(),
        topo.w_prod(topo.height())
    );

    for (name, r) in [
        ("d-mod-k", Box::new(DModK) as Box<dyn Router>),
        ("disjoint(2)", Box::new(Disjoint::new(2))),
        ("disjoint(4)", Box::new(Disjoint::new(4))),
        ("umulti", Box::new(Umulti)),
    ] {
        let mload = LinkLoads::accumulate(&topo, &r, &pattern.tm).max_load();
        let ratio = performance_ratio(&topo, &r, &pattern.tm);
        println!("  {name:12} max link load = {mload:6.2}   performance ratio = {ratio:5.2}");
    }
    println!(
        "  {:12} optimal load  = {:6.2}   (Lemma 1 lower bound)",
        "",
        ml_lower_bound(&topo, &pattern.tm)
    );

    println!(
        "\nd-mod-k concentrates all {} flows onto one up-link (ratio = Π w_i = {}),\n\
         and already K = 2 disjoint paths halve the damage.",
        pattern.concentrated_load, pattern.ratio
    );

    // Why not just use UMULTI everywhere? InfiniBand LIDs.
    println!(
        "\nInfiniBand LID budget (unicast space = {} LIDs):",
        lid::UNICAST_LIDS
    );
    for (m, n) in [(8u32, 3usize), (16, 3), (24, 3)] {
        let t = Topology::new(XgftSpec::m_port_n_tree(m, n).expect("valid"));
        println!(
            "  {:28} needs {:>3} paths for UMULTI; max realizable K = {:>3}; umulti fits: {}",
            t.spec().to_string(),
            t.w_prod(t.height()),
            lid::max_realizable_budget(&t),
            lid::umulti_realizable(&t),
        );
    }
}
