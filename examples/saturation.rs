//! A miniature Table-1 / Figure-5 experiment: drive the flit-level
//! virtual cut-through simulator across offered loads and watch the
//! saturation point move with the routing scheme.
//!
//! Run with: `cargo run --release --example saturation`

#![forbid(unsafe_code)]

use lmpr::flitsim::saturation_throughput;
use lmpr::flitsim::sweep::run_sweep;
use lmpr::prelude::*;

fn main() {
    // The paper's Table-1 topology (8-port 3-tree, 128 PNs).
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).expect("valid"));
    println!("topology: {} ({} PNs)", topo.spec(), topo.num_pns());

    let cfg = SimConfig {
        warmup_cycles: 3_000,
        measure_cycles: 10_000,
        ..SimConfig::default()
    };
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();

    println!("\n{:>12} | accepted throughput at offered load", "scheme");
    print!("{:>12} |", "");
    for l in &loads {
        print!(" {:>5.0}%", l * 100.0);
    }
    println!("  | saturation");

    for (name, points) in [
        (
            "d-mod-k",
            run_sweep(&topo, &DModK, cfg, &loads, 0).expect("sweep runs"),
        ),
        (
            "disjoint(2)",
            run_sweep(&topo, &Disjoint::new(2), cfg, &loads, 0).expect("sweep runs"),
        ),
        (
            "disjoint(8)",
            run_sweep(&topo, &Disjoint::new(8), cfg, &loads, 0).expect("sweep runs"),
        ),
    ] {
        print!("{name:>12} |");
        for p in &points {
            print!(" {:>5.1}%", p.throughput * 100.0);
        }
        println!("  | {:>5.1}%", saturation_throughput(&points) * 100.0);
    }

    println!(
        "\nBelow saturation every scheme delivers the offered load; beyond it\n\
         the schemes separate — limited multi-path routing saturates later\n\
         than d-mod-k, and the disjoint heuristic latest of all."
    );
}
