//! A miniature Figure-4 experiment: average maximum link load over
//! random permutations, with the paper's confidence-interval stopping
//! rule, on an 8-port 2-tree.
//!
//! Run with: `cargo run --release --example permutation_study`

#![forbid(unsafe_code)]

use lmpr::prelude::*;

fn main() {
    let topo = Topology::new(XgftSpec::m_port_n_tree(8, 2).expect("valid"));
    println!("topology: {} ({} PNs)\n", topo.spec(), topo.num_pns());

    // The paper's methodology: sample permutations until the 99 % CI
    // half-width falls below 1 % of the mean.
    let study = PermutationStudy::new(topo.clone(), StudyConfig::default());

    println!(
        "{:>10} {:>14} {:>12} {:>10}",
        "K", "avg max load", "99% CI ±", "samples"
    );
    let r = study.run(&DModK);
    println!(
        "{:>10} {:>14.3} {:>12.4} {:>10}",
        "d-mod-k", r.mean, r.half_width, r.samples
    );
    let max_k = topo.w_prod(topo.height());
    for k in [2u64, 3, 4] {
        let r = study.run(&Disjoint::new(k));
        println!(
            "{:>10} {:>14.3} {:>12.4} {:>10}",
            format!("disjoint {k}"),
            r.mean,
            r.half_width,
            r.samples
        );
    }
    let r = study.run(&Umulti);
    println!(
        "{:>10} {:>14.3} {:>12.4} {:>10}",
        "umulti", r.mean, r.half_width, r.samples
    );

    println!(
        "\nUMULTI needs {max_k} paths per far pair; limited multi-path routing\n\
         recovers most of the gap with 2–4 (the paper's headline observation)."
    );
}
