#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo xtask analyze --ci"
cargo xtask analyze --ci

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> verify --ci (static routing-correctness matrix)"
cargo run -q --release -p lmpr-bench --bin verify -- --ci > /dev/null

echo "==> golden equivalence (chaos + faults quick documents, 180 s budget)"
# Runs the seeded chaos and faults harnesses in-process and
# byte-compares their serialized documents against the committed
# results/chaos_quick.json and results/faults_quick.json, so any
# behavioral drift in the simulators, the SelectionEngine or the RNG
# consumption order fails CI. The chaos half also gates on runtime
# invariant violations (conservation, duplicates, progress).
timeout 180 cargo test -q --release -p lmpr-bench --test golden -- --ignored

echo "==> SIGKILL-and-resume smoke (orchestrated chaos sweep, 120 s budget)"
# Start an orchestrated quick sweep, SIGKILL it mid-flight, re-run the
# same command, and byte-compare the resumed document against the
# committed golden. Proves crash-consistency end to end: journal
# replay, snapshot restore, and byte-identical reassembly.
cargo build -q --release -p lmpr-bench --bin chaos
timeout 120 bash -c '
  dir=$(mktemp -d)
  trap "rm -rf \"$dir\"" EXIT
  orch=(./target/release/chaos --quick --orchestrate "$dir/results" \
        --json "$dir/resumed.json")
  "${orch[@]}" > /dev/null 2>&1 &
  pid=$!
  sleep 1.2
  kill -KILL "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  [ -f "$dir/results/journal.json" ] || {
    echo "no journal written before the kill" >&2; exit 1; }
  "${orch[@]}" > /dev/null
  cmp "$dir/resumed.json" results/chaos_quick.json || {
    echo "resumed document is not byte-identical to the golden" >&2; exit 1; }
'

echo "==> ctld SIGKILL-and-restart smoke (epoch-fenced controller, 120 s budget)"
# Reference run: an uninterrupted daemon drains a scripted Poisson fault
# schedule and reports its routing-state digest. Crash run: the same
# daemon (same state dir semantics, fresh dir) is SIGKILLed mid-
# reconvergence — an artificial per-epoch certification delay keeps the
# window open — restarted against the same state directory, re-driven
# through the same ticks, and must land on the byte-identical digest.
# Also exercises chaos-injected certificate failure: the daemon must
# report degraded mode while serving the last-good epoch, then recover
# once the injected fault clears.
cargo build -q --release -p lmpr-ctld --bins
timeout 120 bash -c '
  set -euo pipefail
  dir=$(mktemp -d)
  trap "rm -rf \"$dir\"" EXIT
  CTLD=./target/release/ctld
  CTLC=./target/release/ctlc
  SCHED=poisson:0.0005:500:3000:9

  # --- Reference: uninterrupted run. ---
  "$CTLD" --topo 8port2tree --kind disjoint:4 --state-dir "$dir/a" \
          --socket "$dir/a.sock" --schedule "$SCHED" 2> /dev/null &
  apid=$!
  for _ in $(seq 100); do [ -S "$dir/a.sock" ] && break; sleep 0.1; done
  for t in 500 1000 1500 2000 2500 3000; do
    "$CTLC" --socket "$dir/a.sock" tick "$t" > /dev/null
  done
  ref=$("$CTLC" --socket "$dir/a.sock" digest)
  "$CTLC" --socket "$dir/a.sock" shutdown > /dev/null
  wait "$apid"

  # --- Crash run: SIGKILL mid-reconvergence, restart, re-drive. ---
  "$CTLD" --topo 8port2tree --kind disjoint:4 --state-dir "$dir/b" \
          --socket "$dir/b.sock" --schedule "$SCHED" \
          --reconverge-delay-ms 400 2> /dev/null &
  bpid=$!
  for _ in $(seq 100); do [ -S "$dir/b.sock" ] && break; sleep 0.1; done
  "$CTLC" --socket "$dir/b.sock" tick 500 > /dev/null
  # This tick dies with the daemon; its failure is the point.
  "$CTLC" --socket "$dir/b.sock" tick 1500 > /dev/null 2>&1 &
  sleep 0.15   # land inside the artificially slowed reconvergence
  kill -KILL "$bpid" 2> /dev/null || true
  wait "$bpid" 2> /dev/null || true
  rm -f "$dir/b.sock"   # stale socket from the killed process
  ls "$dir/b"/epoch-*.snap > /dev/null || {
    echo "no checkpoint survived the kill" >&2; exit 1; }

  "$CTLD" --topo 8port2tree --kind disjoint:4 --state-dir "$dir/b" \
          --socket "$dir/b.sock" --schedule "$SCHED" 2> /dev/null &
  bpid=$!
  for _ in $(seq 100); do [ -S "$dir/b.sock" ] && break; sleep 0.1; done
  for t in 500 1000 1500 2000 2500 3000; do
    "$CTLC" --socket "$dir/b.sock" tick "$t" > /dev/null
  done
  got=$("$CTLC" --socket "$dir/b.sock" digest)
  [ "$got" = "$ref" ] || {
    echo "post-crash digest diverged from the uninterrupted run" >&2
    echo "  ref: $ref" >&2; echo "  got: $got" >&2; exit 1; }

  # --- Degraded mode: injected cert failure, then recovery. ---
  "$CTLC" --socket "$dir/b.sock" chaos on > /dev/null
  "$CTLC" --socket "$dir/b.sock" fault 1 link-down:3 > /dev/null
  "$CTLC" --socket "$dir/b.sock" status | grep -q "\"mode\": \"degraded\"" || {
    echo "injected certificate failure did not degrade the daemon" >&2; exit 1; }
  "$CTLC" --socket "$dir/b.sock" paths 0:5 > /dev/null || {
    echo "degraded daemon stopped serving the last-good epoch" >&2; exit 1; }
  "$CTLC" --socket "$dir/b.sock" chaos off > /dev/null
  "$CTLC" --socket "$dir/b.sock" tick 2000000 > /dev/null
  "$CTLC" --socket "$dir/b.sock" status | grep -q "\"mode\": \"serving\"" || {
    echo "daemon did not recover after the injected fault cleared" >&2; exit 1; }
  "$CTLC" --socket "$dir/b.sock" shutdown > /dev/null
  wait "$bpid"
'

echo "==> ctl_soak chaos + failover smoke (seeded failpoint soak, 120 s budget)"
# Seeded chaos soak (DESIGN.md §13–14): daemon + feeder + query
# workers under the escalating failpoint schedule (≥100 injected
# faults, ≥10 induced crash-restarts), then the failover phase — a hot
# standby replicates the primary and every daemon death promotes it
# (≥3 promotions) under wire + storage chaos. Every invariant is
# machine-checked (CTL-SOAK-EPOCH/SERVE/RECOVER/BATCH/FAILOVER/GEN).
# The binary exits non-zero on any invariant violation; two runs with
# the same seed must produce byte-identical documents, because every
# interleaving is a pure function of the seed (repro fp1:11:s0:w0:c0).
cargo build -q --release -p lmpr-ctld --bin ctl_soak
timeout 120 bash -c '
  set -euo pipefail
  dir=$(mktemp -d)
  trap "rm -rf \"$dir\"" EXIT
  ./target/release/ctl_soak --seed 11 --out "$dir/a.json" \
      > /dev/null 2> /dev/null
  ./target/release/ctl_soak --seed 11 --out "$dir/b.json" \
      > /dev/null 2> /dev/null
  cmp "$dir/a.json" "$dir/b.json" || {
    echo "soak documents differ across same-seed runs" >&2; exit 1; }
  grep -q "\"certified\": true" "$dir/a.json" || {
    echo "soak certificate did not certify" >&2; exit 1; }
  if grep -q "\"promotions\": 0," "$dir/a.json"; then
    echo "failover phase never promoted the standby" >&2; exit 1
  fi
  # A second seed takes a different path through the failpoint
  # schedule — promotions, fence crossings and recoveries all land on
  # different batches — and must certify just the same.
  ./target/release/ctl_soak --seed 7 --out "$dir/c.json" \
      > /dev/null 2> /dev/null
  grep -q "\"certified\": true" "$dir/c.json" || {
    echo "second-seed soak did not certify" >&2; exit 1; }
  grep -q "\"quotas_met\": true" "$dir/c.json" || {
    echo "second-seed soak missed its fault/promotion quotas" >&2; exit 1; }
'

echo "CI green."
