#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> verify --ci (static routing-correctness matrix)"
cargo run -q --release -p lmpr-bench --bin verify -- --ci > /dev/null

echo "==> golden equivalence (chaos + faults quick documents, 180 s budget)"
# Runs the seeded chaos and faults harnesses in-process and
# byte-compares their serialized documents against the committed
# results/chaos_quick.json and results/faults_quick.json, so any
# behavioral drift in the simulators, the SelectionEngine or the RNG
# consumption order fails CI. The chaos half also gates on runtime
# invariant violations (conservation, duplicates, progress).
timeout 180 cargo test -q --release -p lmpr-bench --test golden -- --ignored

echo "CI green."
