#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> verify --ci (static routing-correctness matrix)"
cargo run -q --release -p lmpr-bench --bin verify -- --ci > /dev/null

echo "==> chaos --quick (seeded runtime-resilience smoke, 120 s budget)"
# Fixed seeds, so the run is reproducible; the binary exits non-zero on
# any runtime invariant violation (conservation, duplicates, progress)
# or failed run. timeout(1) enforces the wall-clock budget.
timeout 120 cargo run -q --release -p lmpr-bench --bin chaos -- --quick > /dev/null

echo "CI green."
