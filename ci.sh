#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> verify --ci (static routing-correctness matrix)"
cargo run -q --release -p lmpr-bench --bin verify -- --ci > /dev/null

echo "==> golden equivalence (chaos + faults quick documents, 180 s budget)"
# Runs the seeded chaos and faults harnesses in-process and
# byte-compares their serialized documents against the committed
# results/chaos_quick.json and results/faults_quick.json, so any
# behavioral drift in the simulators, the SelectionEngine or the RNG
# consumption order fails CI. The chaos half also gates on runtime
# invariant violations (conservation, duplicates, progress).
timeout 180 cargo test -q --release -p lmpr-bench --test golden -- --ignored

echo "==> SIGKILL-and-resume smoke (orchestrated chaos sweep, 120 s budget)"
# Start an orchestrated quick sweep, SIGKILL it mid-flight, re-run the
# same command, and byte-compare the resumed document against the
# committed golden. Proves crash-consistency end to end: journal
# replay, snapshot restore, and byte-identical reassembly.
cargo build -q --release -p lmpr-bench --bin chaos
timeout 120 bash -c '
  dir=$(mktemp -d)
  trap "rm -rf \"$dir\"" EXIT
  orch=(./target/release/chaos --quick --orchestrate "$dir/results" \
        --json "$dir/resumed.json")
  "${orch[@]}" > /dev/null 2>&1 &
  pid=$!
  sleep 1.2
  kill -KILL "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  [ -f "$dir/results/journal.json" ] || {
    echo "no journal written before the kill" >&2; exit 1; }
  "${orch[@]}" > /dev/null
  cmp "$dir/resumed.json" results/chaos_quick.json || {
    echo "resumed document is not byte-identical to the golden" >&2; exit 1; }
'

echo "CI green."
