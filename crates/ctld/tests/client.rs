//! Client-library tests against a live daemon: fence retry, reconnect
//! under injected wire chaos, and idempotent fault-batch resubmission.

use lmpr_core::RouterKind;
use lmpr_ctld::{
    serve, ChangeSpec, Client, ClientConfig, Controller, CtlConfig, FailPlan, RetryPolicy,
    ServerConfig,
};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

const TOPO: &str = "8port2tree";

struct Daemon {
    scratch: PathBuf,
    socket: PathBuf,
    server: Option<JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        let scratch = std::env::temp_dir().join(format!("ctld-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        let socket = scratch.join("ctld.sock");
        let cfg = CtlConfig::new(TOPO, RouterKind::Disjoint(4), scratch.join("state"));
        let (ctl, report) = Controller::start(cfg).expect("controller start");
        assert!(report.certified());
        let server_cfg = ServerConfig::new(&socket);
        let server = std::thread::spawn(move || serve(ctl, server_cfg));
        for _ in 0..500 {
            if UnixStream::connect(&socket).is_ok() {
                return Daemon {
                    scratch,
                    socket,
                    server: Some(server),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("server did not come up");
    }

    fn client(&self) -> Client {
        Client::new(&self.socket)
    }

    fn stop(mut self) {
        self.client().shutdown().expect("shutdown");
        self.server
            .take()
            .expect("server handle")
            .join()
            .expect("server thread")
            .expect("server exit");
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

#[test]
fn paths_retries_a_fence_at_the_reported_epoch() {
    let d = Daemon::start("fence");
    // A writer commits epoch 1; the reader primes its epoch cache there.
    // (A cache at genesis epoch 0 is treated as "never fetched" and
    // refetched, so the fence can only arm against a nonzero epoch.)
    let mut writer = d.client();
    assert!(writer
        .submit_fault(1, &[ChangeSpec::LinkDown(2)])
        .expect("fault"));
    let mut reader = d.client();
    assert_eq!(reader.current_epoch().expect("epoch"), 1);

    // The writer commits another epoch behind the reader's back.
    assert!(writer
        .submit_fault(2, &[ChangeSpec::LinkUp(2)])
        .expect("fault"));

    // The reader's next query is fenced (its cached epoch 1 is stale)
    // and must transparently retry at the epoch the rejection reported.
    let (epoch, paths) = reader.paths(&[(0, 5), (3, 12)], None).expect("paths");
    assert_eq!(epoch, 2);
    assert_eq!(paths.len(), 2);
    assert_eq!(reader.stats().fenced_retries, 1);
    d.stop();
}

#[test]
fn the_client_rides_out_injected_wire_chaos() {
    let d = Daemon::start("chaos");
    // A hostile connection: ~30% of stream ops fault (partial frames,
    // disconnects, mid-frame resets; no drops, so no reliance on the
    // read timeout for progress).
    let mut client = Client::with_config(ClientConfig {
        endpoints: vec![d.socket.clone()],
        retry: RetryPolicy {
            base_ms: 1,
            cap_ms: 10,
            max_attempts: 10,
        },
        read_timeout_ms: Some(500),
        wire_faults: Some(FailPlan {
            no_drop: true,
            ..FailPlan::new(99, 0, 300, 0)
        }),
    });
    for i in 0..40 {
        let epoch = client.current_epoch().unwrap_or_else(|e| {
            panic!("status {i} failed under wire chaos: {e}");
        });
        assert_eq!(epoch, 0);
    }
    let stats = client.stats();
    assert!(
        stats.reconnects > 0,
        "a 30% fault plan over 40 round trips must have forced reconnects: {stats:?}"
    );
    let injected = client.fault_counters().injected_count();
    assert!(injected > 0, "the fault plan never fired");
    d.stop();
}

#[test]
fn fault_submission_is_idempotent_across_resends() {
    let d = Daemon::start("idem");
    let mut client = d.client();

    // First delivery applies; byte-identical resend (a lost ack, as
    // at-least-once delivery produces) is deduplicated.
    assert!(client
        .submit_fault(1, &[ChangeSpec::LinkDown(3)])
        .expect("first"));
    assert!(!client
        .submit_fault(1, &[ChangeSpec::LinkDown(3)])
        .expect("resend"));

    // Even from a different client (a restarted feeder).
    let mut other = d.client();
    assert!(!other
        .submit_fault(1, &[ChangeSpec::LinkDown(3)])
        .expect("resend from elsewhere"));

    // The dedup did not eat the epoch: exactly one commit happened.
    assert_eq!(client.current_epoch().expect("epoch"), 1);

    // The next batch in sequence still applies normally.
    assert!(client
        .submit_fault(2, &[ChangeSpec::LinkUp(3)])
        .expect("second"));
    assert_eq!(client.current_epoch().expect("epoch"), 2);
    d.stop();
}

#[test]
fn the_client_reconnects_across_a_daemon_restart() {
    let first = Daemon::start("restart");
    let scratch = first.scratch.clone();
    let socket = first.socket.clone();
    let mut client = Client::new(&socket);
    assert!(client
        .submit_fault(1, &[ChangeSpec::LinkDown(5)])
        .expect("fault"));
    assert_eq!(client.current_epoch().expect("epoch"), 1);

    // Stop the daemon (dropping the socket) and bring up a fresh one on
    // the same state dir: it must recover epoch 1.
    client.shutdown().expect("shutdown");
    first
        .server
        .expect("server handle")
        .join()
        .expect("server thread")
        .expect("server exit");
    let cfg = CtlConfig::new(TOPO, RouterKind::Disjoint(4), scratch.join("state"));
    let (ctl, report) = Controller::start(cfg).expect("controller restart");
    assert!(report.certified());
    let server_cfg = ServerConfig::new(&socket);
    let server = std::thread::spawn(move || serve(ctl, server_cfg));

    // The same client object redials through its retry budget and sees
    // the recovered epoch.
    let mut recovered = 0;
    for _ in 0..100 {
        match client.current_epoch() {
            Ok(e) => {
                recovered = e;
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert_eq!(recovered, 1, "client must reach the restarted daemon");
    assert!(client.stats().connects >= 2);

    client.shutdown().expect("final shutdown");
    server.join().expect("server thread").expect("server exit");
    let _ = std::fs::remove_dir_all(&scratch);
}
