//! Socket-level tests: the wire protocol end to end over a real Unix
//! domain socket — fencing, overload backpressure, deadlines, chaos
//! and the shutdown handshake.

use lmpr_core::RouterKind;
use lmpr_ctld::{
    read_frame, serve, write_frame, ChangeSpec, Controller, CtlConfig, ErrorCode, Request,
    Response, ServerConfig,
};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread::JoinHandle;

const TOPO: &str = "8port2tree";

struct Daemon {
    scratch: PathBuf,
    socket: PathBuf,
    server: Option<JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    /// Start a real daemon on a scratch state dir + socket.
    fn start(tag: &str, tune: impl FnOnce(&mut CtlConfig, &mut ServerConfig)) -> Daemon {
        let scratch = std::env::temp_dir().join(format!("ctld-srv-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        let socket = scratch.join("ctld.sock");
        let mut cfg = CtlConfig::new(TOPO, RouterKind::Disjoint(4), scratch.join("state"));
        let mut server_cfg = ServerConfig::new(&socket);
        tune(&mut cfg, &mut server_cfg);
        let (ctl, report) = Controller::start(cfg).expect("controller start");
        assert!(report.certified());
        let server = std::thread::spawn(move || serve(ctl, server_cfg));
        for _ in 0..500 {
            if UnixStream::connect(&socket).is_ok() {
                return Daemon {
                    scratch,
                    socket,
                    server: Some(server),
                };
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server did not come up");
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).expect("connect")
    }

    fn stop(mut self) {
        let mut stream = self.connect();
        match roundtrip(&mut stream, &Request::Shutdown) {
            Response::Shutdown { .. } => {}
            other => panic!("unexpected shutdown reply: {other:?}"),
        }
        self.server
            .take()
            .expect("server handle")
            .join()
            .expect("server thread")
            .expect("server exit");
        assert!(!self.socket.exists(), "socket file removed on shutdown");
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

fn roundtrip(stream: &mut UnixStream, req: &Request) -> Response {
    write_frame(stream, req.to_json().as_bytes()).expect("write frame");
    let payload = read_frame(stream).expect("read frame");
    Response::decode(&payload).expect("decode reply")
}

#[test]
fn the_protocol_round_trips_end_to_end() {
    let d = Daemon::start("e2e", |_, _| {});
    let mut c = d.connect();

    let epoch = match roundtrip(&mut c, &Request::Hello) {
        Response::Status { epoch, mode, .. } => {
            assert_eq!(mode, "serving");
            epoch
        }
        other => panic!("unexpected hello reply: {other:?}"),
    };

    // Fenced read at the current epoch succeeds.
    match roundtrip(
        &mut c,
        &Request::Paths {
            epoch,
            deadline_ms: None,
            pairs: vec![(0, 5), (3, 12)],
        },
    ) {
        Response::Paths { paths, .. } => {
            assert_eq!(paths.len(), 2);
            assert!(paths.iter().all(|p| !p.is_empty()));
        }
        other => panic!("unexpected paths reply: {other:?}"),
    }

    // A fault batch commits a new epoch; the stale epoch is now fenced.
    match roundtrip(
        &mut c,
        &Request::Fault {
            batch_id: 1,
            gen: None,
            changes: vec![ChangeSpec::LinkDown(2)],
        },
    ) {
        Response::Fault {
            epoch: e, applied, ..
        } => {
            assert!(applied);
            assert_eq!(e, epoch + 1);
        }
        other => panic!("unexpected fault reply: {other:?}"),
    }
    match roundtrip(
        &mut c,
        &Request::Paths {
            epoch,
            deadline_ms: None,
            pairs: vec![(0, 5)],
        },
    ) {
        Response::Error {
            code: ErrorCode::EpochFenced,
            epoch: server,
            ..
        } => assert_eq!(server, epoch + 1),
        other => panic!("stale read not fenced: {other:?}"),
    }

    // Duplicate batch: acknowledged, not reapplied.
    match roundtrip(
        &mut c,
        &Request::Fault {
            batch_id: 1,
            gen: None,
            changes: vec![ChangeSpec::LinkDown(2)],
        },
    ) {
        Response::Fault { applied: false, .. } => {}
        other => panic!("duplicate batch mishandled: {other:?}"),
    }

    // Sequence gap: typed bad-request, connection stays usable.
    match roundtrip(
        &mut c,
        &Request::Fault {
            batch_id: 9,
            gen: None,
            changes: vec![],
        },
    ) {
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        } => {}
        other => panic!("feed gap mishandled: {other:?}"),
    }

    // Digest is 16 hex chars and stable across reads at one epoch.
    let d1 = match roundtrip(&mut c, &Request::Digest) {
        Response::Digest { digest, .. } => digest,
        other => panic!("unexpected digest reply: {other:?}"),
    };
    assert_eq!(d1.len(), 16);
    assert!(d1.bytes().all(|b| b.is_ascii_hexdigit()));
    match roundtrip(&mut c, &Request::Digest) {
        Response::Digest { digest, .. } => assert_eq!(digest, d1),
        other => panic!("unexpected digest reply: {other:?}"),
    }

    d.stop();
}

#[test]
fn malformed_frames_get_in_band_bad_request_replies() {
    let d = Daemon::start("malformed", |_, _| {});
    let mut c = d.connect();

    for junk in [&b"not json"[..], b"{\"op\": 17}", b"{\"op\": \"warp\"}"] {
        write_frame(&mut c, junk).expect("write junk");
        let payload = read_frame(&mut c).expect("read reply");
        match Response::decode(&payload).expect("decode") {
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            } => {}
            other => panic!("junk {junk:?} not rejected: {other:?}"),
        }
    }
    // The connection survives the junk.
    match roundtrip(&mut c, &Request::Status) {
        Response::Status { .. } => {}
        other => panic!("connection unusable after junk: {other:?}"),
    }
    d.stop();
}

#[test]
fn oversized_replies_are_typed_errors_not_dropped_connections() {
    let d = Daemon::start("bigreply", |_, _| {});
    let mut c = d.connect();
    let epoch = match roundtrip(&mut c, &Request::Hello) {
        Response::Status { epoch, .. } => epoch,
        other => panic!("unexpected hello reply: {other:?}"),
    };

    // A legal request — it fits the 1 MiB request frame — whose answer
    // does not: ~90k pairs, each answering with up to four path ids.
    let pairs: Vec<(u32, u32)> = (0..90_000).map(|i| (0, 1 + (i % 30))).collect();
    let req = Request::Paths {
        epoch,
        deadline_ms: None,
        pairs,
    };
    assert!(
        (req.to_json().len() as u64) <= lmpr_ctld::MAX_FRAME as u64,
        "the request itself must be within the frame bound"
    );
    match roundtrip(&mut c, &req) {
        Response::Error {
            code: ErrorCode::BadRequest,
            message,
            ..
        } => assert!(message.contains("frame bound"), "message: {message}"),
        other => panic!("oversized reply not rejected in band: {other:?}"),
    }

    // The connection survives the rejection and keeps serving.
    match roundtrip(
        &mut c,
        &Request::Paths {
            epoch,
            deadline_ms: None,
            pairs: vec![(0, 5)],
        },
    ) {
        Response::Paths { paths, .. } => {
            assert_eq!(paths.len(), 1);
            assert!(!paths[0].is_empty());
        }
        other => panic!("connection unusable after the rejection: {other:?}"),
    }
    d.stop();
}

#[test]
fn a_zero_deadline_is_rejected_as_expired() {
    let d = Daemon::start("deadline", |_, _| {});
    let mut c = d.connect();
    let epoch = match roundtrip(&mut c, &Request::Status) {
        Response::Status { epoch, .. } => epoch,
        other => panic!("unexpected status reply: {other:?}"),
    };
    match roundtrip(
        &mut c,
        &Request::Paths {
            epoch,
            deadline_ms: Some(0),
            pairs: vec![(0, 1)],
        },
    ) {
        Response::Error {
            code: ErrorCode::Deadline,
            ..
        } => {}
        other => panic!("zero deadline not expired: {other:?}"),
    }
    d.stop();
}

#[test]
fn a_slow_reconvergence_sheds_load_with_typed_overloads() {
    // A tiny queue plus an artificially slow reconvergence: while the
    // controller is busy certifying, floods of queries must be rejected
    // as `overload` by the connection threads, never silently dropped.
    let d = Daemon::start("overload", |cfg, server| {
        cfg.reconverge_delay_ms = 400;
        server.queue_cap = 1;
    });

    // Kick off a fault batch on its own connection; the controller
    // thread now sleeps inside reconvergence with the queue tiny.
    let fault_conn = {
        let mut c = d.connect();
        std::thread::spawn(move || {
            roundtrip(
                &mut c,
                &Request::Fault {
                    batch_id: 1,
                    gen: None,
                    changes: vec![ChangeSpec::LinkDown(4)],
                },
            )
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));

    let (mut overloads, mut served) = (0u32, 0u32);
    let mut floods = Vec::new();
    for _ in 0..8 {
        let mut c = d.connect();
        floods.push(std::thread::spawn(move || {
            match roundtrip(&mut c, &Request::Status) {
                Response::Status { .. } => Ok(()),
                Response::Error {
                    code: ErrorCode::Overload,
                    message,
                    ..
                } => Err(message),
                other => panic!("unexpected flood reply: {other:?}"),
            }
        }));
    }
    for h in floods {
        match h.join().expect("flood thread") {
            Ok(()) => served += 1,
            Err(msg) => {
                assert!(msg.contains("retry"), "overload message: {msg}");
                overloads += 1;
            }
        }
    }
    assert!(
        overloads >= 1,
        "no overload rejections despite a full queue ({served} served)"
    );

    match fault_conn.join().expect("fault thread") {
        Response::Fault { applied: true, .. } => {}
        other => panic!("unexpected fault reply: {other:?}"),
    }
    // Once the controller drains, service resumes normally.
    let mut c = d.connect();
    match roundtrip(&mut c, &Request::Status) {
        Response::Status { epoch: 1, .. } => {}
        other => panic!("service did not resume: {other:?}"),
    }
    d.stop();
}

#[test]
fn chaos_over_the_wire_degrades_and_recovers() {
    let d = Daemon::start("chaos", |_, _| {});
    let mut c = d.connect();

    match roundtrip(&mut c, &Request::Chaos { fail_certs: true }) {
        Response::Chaos {
            fail_certs: true, ..
        } => {}
        other => panic!("unexpected chaos reply: {other:?}"),
    }
    match roundtrip(
        &mut c,
        &Request::Fault {
            batch_id: 1,
            gen: None,
            changes: vec![ChangeSpec::LinkDown(6)],
        },
    ) {
        Response::Fault {
            epoch: 0,
            mode,
            applied: true,
            ..
        } => assert_eq!(mode, "degraded"),
        other => panic!("chaos did not degrade: {other:?}"),
    }
    // Last-good epoch 0 still answers queries while degraded.
    match roundtrip(
        &mut c,
        &Request::Paths {
            epoch: 0,
            deadline_ms: None,
            pairs: vec![(0, 9)],
        },
    ) {
        Response::Paths { mode, paths, .. } => {
            assert_eq!(mode, "degraded");
            assert_eq!(paths.len(), 1);
        }
        other => panic!("degraded service broken: {other:?}"),
    }

    // Clear the chaos and drive time past the retry backoff.
    match roundtrip(&mut c, &Request::Chaos { fail_certs: false }) {
        Response::Chaos {
            fail_certs: false, ..
        } => {}
        other => panic!("unexpected chaos reply: {other:?}"),
    }
    let status = roundtrip(&mut c, &Request::Status);
    let Response::Status {
        now,
        degraded_attempts,
        ..
    } = status
    else {
        panic!("unexpected status reply: {status:?}");
    };
    assert!(degraded_attempts >= 1);
    match roundtrip(
        &mut c,
        &Request::Tick {
            to: now + 1_000_000,
        },
    ) {
        Response::Tick { epoch: 1, mode, .. } => assert_eq!(mode, "serving"),
        other => panic!("recovery failed: {other:?}"),
    }
    d.stop();
}
