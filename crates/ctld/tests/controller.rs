//! State-machine tests: epochs, certificates, degraded mode, crash
//! recovery and kill-and-resume byte identity.

use lmpr_core::RouterKind;
use lmpr_ctld::{ChangeSpec, Controller, CtlConfig, CtlError, Mode};
use std::path::PathBuf;
use xgft::FaultSchedule;

const TOPO: &str = "8port2tree";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctld-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_cfg(tag: &str) -> CtlConfig {
    CtlConfig::new(TOPO, RouterKind::Disjoint(4), temp_dir(tag))
}

fn cleanup(cfg: &CtlConfig) {
    let _ = std::fs::remove_dir_all(&cfg.state_dir);
}

/// The full query matrix at the current epoch — the "answers" whose
/// byte identity the resume tests assert.
fn all_answers(ctl: &mut Controller) -> Vec<Vec<u64>> {
    let n = ctl.topology().num_pns();
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (s, d)))
        .collect();
    ctl.paths(ctl.epoch(), &pairs).expect("fenced at own epoch")
}

#[test]
fn genesis_certifies_and_checkpoints_epoch_zero() {
    let cfg = base_cfg("genesis");
    let (ctl, report) = Controller::start(cfg.clone()).expect("start");
    assert!(report.certified(), "{:?}", report.findings);
    assert!(!report.checks.is_empty(), "full-scope genesis certificate");
    assert_eq!(ctl.epoch(), 0);
    assert_eq!(ctl.mode(), Mode::Serving);

    // A second start resumes the committed epoch without re-verifying.
    let (ctl2, report2) = Controller::start(cfg.clone()).expect("resume");
    assert_eq!(ctl2.epoch(), 0);
    assert!(report2.checks.is_empty(), "resume does not re-certify");
    cleanup(&cfg);
}

#[test]
fn fault_feed_commits_certified_epochs_and_is_idempotent() {
    let cfg = base_cfg("feed");
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");

    // Warm some selections so the blast radius is non-trivial.
    let before = all_answers(&mut ctl);

    assert!(ctl.ingest(1, &[ChangeSpec::LinkDown(3)]).expect("batch 1"));
    assert_eq!(ctl.epoch(), 1, "commit advanced the epoch");
    assert_eq!(ctl.mode(), Mode::Serving);

    // At-least-once: the duplicate is acknowledged, not reapplied.
    assert!(!ctl.ingest(1, &[ChangeSpec::LinkDown(3)]).expect("dup"));
    assert_eq!(ctl.epoch(), 1);

    // A sequence gap is a typed rejection.
    match ctl.ingest(5, &[ChangeSpec::LinkUp(3)]) {
        Err(CtlError::FeedGap {
            got: 5,
            expected: 2,
        }) => {}
        other => panic!("expected a feed gap, got {other:?}"),
    }

    // Recovery restores the fault-free answers bit for bit.
    assert!(ctl.ingest(2, &[ChangeSpec::LinkUp(3)]).expect("batch 2"));
    assert_eq!(ctl.epoch(), 2);
    assert_eq!(all_answers(&mut ctl), before);
    cleanup(&cfg);
}

#[test]
fn cold_cache_reconvergence_still_audits_the_blast_radius() {
    // Regression: the certification scope must come from the topology,
    // not from flushed selection-cache entries. With no queries before
    // the first fault (cold cache) a cache-derived scope would be empty
    // and the epoch would certify trivially on zero pairs.
    let cfg = base_cfg("coldscope");
    assert!(cfg.scoped_certs, "scoped certificates are the default");
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");
    assert_eq!(ctl.last_cert_pairs(), 0, "no reconvergence attempted yet");

    // First fault with a stone-cold cache: the commit must be backed by
    // a non-empty audit.
    assert!(ctl.ingest(1, &[ChangeSpec::LinkDown(3)]).expect("batch 1"));
    assert_eq!(ctl.epoch(), 1);
    let cold_scope = ctl.last_cert_pairs();
    assert!(
        cold_scope > 0,
        "a committed epoch must never be backed by an empty audit"
    );

    // A failed certificate rebuilds the engine (cold cache again); the
    // degraded retry must re-audit the same topology-derived scope, not
    // rubber-stamp the state it just refused.
    ctl.set_chaos_fail_certs(true);
    ctl.ingest(2, &[ChangeSpec::LinkDown(9)]).expect("staged");
    let Mode::Degraded { next_retry_at, .. } = ctl.mode() else {
        panic!("expected degraded after an injected cert failure");
    };
    let failed_scope = ctl.last_cert_pairs();
    assert!(failed_scope > 0, "failed attempt audited a real scope");

    ctl.set_chaos_fail_certs(false);
    ctl.tick(next_retry_at).expect("recovery tick");
    assert_eq!(ctl.mode(), Mode::Serving);
    assert_eq!(ctl.epoch(), 2);
    assert_eq!(
        ctl.last_cert_pairs(),
        failed_scope,
        "the retry re-audited the failed attempt's full scope"
    );
    cleanup(&cfg);
}

#[test]
fn stale_and_future_epochs_are_fenced() {
    let cfg = base_cfg("fence");
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");
    ctl.ingest(1, &[ChangeSpec::LinkDown(0)]).expect("fault");
    assert_eq!(ctl.epoch(), 1);

    for stale in [0u64, 2, 99] {
        match ctl.paths(stale, &[(0, 5)]) {
            Err(CtlError::EpochFenced { client, server }) => {
                assert_eq!((client, server), (stale, 1));
            }
            other => panic!("epoch {stale} not fenced: {other:?}"),
        }
    }
    assert!(ctl.paths(1, &[(0, 5)]).is_ok());
    cleanup(&cfg);
}

#[test]
fn failed_certificate_degrades_and_recovery_is_served_from_last_good() {
    let cfg = base_cfg("degraded");
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");
    ctl.ingest(1, &[ChangeSpec::LinkDown(7)]).expect("fault");
    let good_epoch = ctl.epoch();
    let good_answers = all_answers(&mut ctl);

    // Injected certificate failure: the next batch must not activate.
    ctl.set_chaos_fail_certs(true);
    ctl.ingest(2, &[ChangeSpec::LinkDown(9)]).expect("staged");
    let Mode::Degraded {
        attempts: 1,
        next_retry_at,
    } = ctl.mode()
    else {
        panic!("expected degraded after an injected cert failure");
    };
    assert_eq!(ctl.epoch(), good_epoch, "last-good epoch still current");
    assert_eq!(
        all_answers(&mut ctl),
        good_answers,
        "degraded mode serves the last-good epoch byte-identically"
    );

    // Retries back off while the fault persists…
    ctl.tick(next_retry_at).expect("retry tick");
    let Mode::Degraded { attempts: 2, .. } = ctl.mode() else {
        panic!("retry under chaos must fail again");
    };
    // …and an early tick does NOT retry (backoff pacing).
    let Mode::Degraded { next_retry_at, .. } = ctl.mode() else {
        unreachable!()
    };
    ctl.tick(next_retry_at.saturating_sub(1)).expect("early");
    let Mode::Degraded { attempts: 2, .. } = ctl.mode() else {
        panic!("early tick must not burn an attempt");
    };

    // Clearing the chaos lets the pending batch certify and commit.
    ctl.set_chaos_fail_certs(false);
    ctl.tick(next_retry_at).expect("recovery tick");
    assert_eq!(ctl.mode(), Mode::Serving);
    assert_eq!(ctl.epoch(), good_epoch + 1);
    cleanup(&cfg);
}

#[test]
fn degraded_backoff_is_capped() {
    let cfg = base_cfg("backoff");
    let base = cfg.backoff_base_ticks;
    let cap = cfg.backoff_cap_ticks;
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");
    ctl.set_chaos_fail_certs(true);
    ctl.ingest(1, &[ChangeSpec::LinkDown(1)]).expect("staged");
    let mut last_delay = 0;
    for attempt in 1..12u32 {
        let Mode::Degraded {
            attempts,
            next_retry_at,
        } = ctl.mode()
        else {
            panic!("must stay degraded under chaos");
        };
        assert_eq!(attempts, attempt);
        let delay = next_retry_at - ctl.now();
        assert!(delay <= cap, "delay {delay} over cap {cap}");
        assert!(delay >= last_delay.min(cap), "backoff must not shrink");
        assert!(delay >= base.min(cap));
        last_delay = delay;
        ctl.tick(next_retry_at).expect("retry");
    }
    assert_eq!(last_delay, cap, "backoff reached the cap");
    cleanup(&cfg);
}

#[test]
fn kill_and_resume_replays_the_schedule_byte_identically() {
    let (_, topo) = lmpr_bench::topology_by_name(TOPO).expect("topo");
    let schedule = FaultSchedule::poisson(&topo, 5e-4, 500.0, 3_000, 9);
    assert!(
        schedule.events().len() >= 8,
        "schedule too quiet to be a meaningful test"
    );
    let ticks: Vec<u64> = (1..=6).map(|i| i * 500).collect();

    // Reference: uninterrupted run through every tick.
    let mut cfg_a = base_cfg("resume-a");
    cfg_a.schedule = schedule.clone();
    let (mut a, _) = Controller::start(cfg_a.clone()).expect("start a");
    for &t in &ticks {
        a.tick(t).expect("tick a");
    }
    let (epoch_a, digest_a, answers_a) = (a.epoch(), a.digest(), all_answers(&mut a));
    assert!(epoch_a > 0, "the schedule must commit epochs");

    // Crash run: same schedule, killed (dropped) after the third tick —
    // everything in memory is lost, only checkpoints survive.
    let mut cfg_b = base_cfg("resume-b");
    cfg_b.schedule = schedule.clone();
    let (mut b, _) = Controller::start(cfg_b.clone()).expect("start b");
    for &t in &ticks[..3] {
        b.tick(t).expect("tick b");
    }
    drop(b);

    // Restart resumes the last committed epoch; replaying the remaining
    // ticks must land on the identical state.
    let (mut b2, _) = Controller::start(cfg_b.clone()).expect("restart b");
    assert!(b2.epoch() > 0, "restart resumed a committed epoch");
    for &t in &ticks {
        // Re-issuing already-seen ticks is harmless: the drained-through
        // cursor makes replay idempotent.
        b2.tick(t).expect("tick b2");
    }
    assert_eq!(b2.epoch(), epoch_a, "epoch numbering reproduced");
    assert_eq!(b2.digest(), digest_a, "routing state digest reproduced");
    assert_eq!(
        all_answers(&mut b2),
        answers_a,
        "every path answer byte-identical to the uninterrupted run"
    );
    cleanup(&cfg_a);
    cleanup(&cfg_b);
}

#[test]
fn out_of_range_pairs_are_typed_errors() {
    let cfg = base_cfg("badpair");
    let (mut ctl, _) = Controller::start(cfg.clone()).expect("start");
    let n = ctl.topology().num_pns();
    match ctl.paths(0, &[(0, n)]) {
        Err(CtlError::BadPair(0, d)) => assert_eq!(d, n),
        other => panic!("expected BadPair, got {other:?}"),
    }
    cleanup(&cfg);
}
