//! High-availability integration tests: a standby replicates a live
//! primary, a promotion bumps the generation lease, clients fail over
//! and retry through the fence, and a deposed primary can no longer
//! acknowledge writes.

use lmpr_core::RouterKind;
use lmpr_ctld::{
    serve, ChangeSpec, Client, ClientConfig, ClientError, Controller, CtlConfig, ReplicaConfig,
    Response, RetryPolicy, ServerConfig, Standby,
};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Duration;

const TOPO: &str = "8port2tree";
const KIND: RouterKind = RouterKind::Disjoint(4);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctld-ha-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Start a controller over `state_dir` (promoting first when asked)
/// and serve it on `socket`; blocks until the socket accepts.
fn serve_on(state_dir: &Path, socket: &Path, promote: bool) -> JoinHandle<std::io::Result<()>> {
    let cfg = CtlConfig::new(TOPO, KIND, state_dir);
    let (mut ctl, _) = Controller::start(cfg).expect("controller start");
    if promote {
        ctl.promote().expect("promote");
    }
    let server_cfg = ServerConfig::new(socket);
    let handle = std::thread::spawn(move || serve(ctl, server_cfg));
    for _ in 0..500 {
        if UnixStream::connect(socket).is_ok() {
            return handle;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server on {socket:?} did not come up");
}

fn shutdown(socket: &Path, handle: JoinHandle<std::io::Result<()>>) {
    Client::new(socket).shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server exit");
}

fn ha_client(endpoints: Vec<PathBuf>) -> Client {
    Client::with_config(ClientConfig {
        endpoints,
        retry: RetryPolicy {
            base_ms: 1,
            cap_ms: 10,
            max_attempts: 6,
        },
        read_timeout_ms: Some(2_000),
        wire_faults: None,
    })
}

/// Wait until the standby has applied at least `epoch`.
fn await_replicated(standby: &Standby, epoch: u64) {
    for _ in 0..500 {
        if standby.stats().epoch >= epoch {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("standby never reached epoch {epoch}: {:?}", standby.stats());
}

/// The headline failover path: a standby streams the primary's
/// committed epochs, the primary dies, the promoted standby serves on
/// the second endpoint, and the client's next write lands there after
/// one endpoint failover plus one transparent generation-fence retry.
#[test]
fn a_promoted_standby_takes_over_behind_the_clients_back() {
    let dir = scratch_dir("takeover");
    let (sock_a, sock_b) = (dir.join("a.sock"), dir.join("b.sock"));
    let (primary_dir, standby_dir) = (dir.join("primary"), dir.join("standby"));

    let primary = serve_on(&primary_dir, &sock_a, false);
    let standby = Standby::spawn(ReplicaConfig::new(&sock_a, &standby_dir)).expect("standby spawn");

    let mut client = ha_client(vec![sock_a.clone(), sock_b.clone()]);
    for batch in 1..=3u64 {
        let link = batch as u32;
        assert!(client
            .submit_fault(batch, &[ChangeSpec::LinkDown(link)])
            .expect("fault on primary"));
    }
    assert_eq!(client.last_gen(), 1, "acks must carry the primary's lease");
    await_replicated(&standby, 3);
    let stats = standby.stop();
    assert_eq!((stats.generation, stats.epoch), (1, 3));

    // The primary dies; the replicated state is promoted on endpoint B.
    shutdown(&sock_a, primary);
    let promoted = serve_on(&standby_dir, &sock_b, true);

    // The client's next write must survive the switch transparently:
    // dial fails over to B, B fences the stale generation-1 write, the
    // client adopts the promoted lease and resubmits the same batch.
    assert!(client
        .submit_fault(4, &[ChangeSpec::LinkUp(1)])
        .expect("fault after failover"));
    let stats = client.stats();
    assert!(stats.failovers >= 1, "no endpoint failover: {stats:?}");
    assert!(stats.gen_retries >= 1, "no gen-fence retry: {stats:?}");
    assert_eq!(client.last_gen(), 2, "client must adopt the new lease");
    assert_eq!(client.current_epoch().expect("epoch"), 4);

    shutdown(&sock_b, promoted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Split-brain prevention: once a standby is promoted, the deposed
/// primary — still running, never crashed — can no longer acknowledge
/// writes from a client that has seen the new generation. The client
/// fails away from it instead of accepting a stale ack, and the
/// deposed primary's committed state stays untouched.
#[test]
fn a_deposed_primarys_acks_are_fenced_off() {
    let dir = scratch_dir("deposed");
    let (sock_a, sock_b) = (dir.join("a.sock"), dir.join("b.sock"));
    let (primary_dir, standby_dir) = (dir.join("primary"), dir.join("standby"));

    let deposed = serve_on(&primary_dir, &sock_a, false);
    let standby = Standby::spawn(ReplicaConfig::new(&sock_a, &standby_dir)).expect("standby spawn");
    let mut seed = Client::new(&sock_a);
    assert!(seed
        .submit_fault(1, &[ChangeSpec::LinkDown(2)])
        .expect("fault on primary"));
    await_replicated(&standby, 1);
    standby.stop();

    // Promote the standby on endpoint B while the old primary stays
    // alive on A (a partition healed the wrong way round).
    let promoted = serve_on(&standby_dir, &sock_b, true);
    let mut client = ha_client(vec![sock_b.clone(), sock_a.clone()]);
    assert_eq!(client.current_epoch().expect("epoch from B"), 1);
    assert_eq!(client.last_gen(), 2, "client must learn the promoted lease");

    // The promoted node goes away; the only reachable endpoint is the
    // deposed generation-1 primary. Its fence must reject the write
    // and the client must refuse to fall back to the stale lease.
    shutdown(&sock_b, promoted);
    let err = client
        .submit_fault(2, &[ChangeSpec::LinkUp(2)])
        .expect_err("a deposed primary must not ack");
    match &err {
        ClientError::RetriesExhausted { last, .. } => {
            assert!(
                last.contains("gen-fenced"),
                "retries must end on the generation fence, got: {last}"
            );
        }
        other => panic!("expected exhausted retries, got {other:?}"),
    }
    assert!(client.stats().gen_retries >= 1);

    // The deposed primary never applied the fenced batch.
    match Client::new(&sock_a).status().expect("status from A") {
        Response::Status {
            epoch,
            committed_batch_id,
            gen,
            ..
        } => {
            assert_eq!(gen, 1, "the deposed primary keeps its old lease");
            assert_eq!(committed_batch_id, 1, "the fenced batch must not commit");
            assert_eq!(epoch, 1);
        }
        other => panic!("unexpected status: {other:?}"),
    }

    shutdown(&sock_a, deposed);
    let _ = std::fs::remove_dir_all(&dir);
}
