//! Negative-space tests for the wire protocol: every malformed input —
//! truncated length prefixes, frames over the size bound, mid-frame
//! EOF, interleaved garbage — must come back as a typed [`WireError`]
//! (or a typed in-band rejection from a live server), never a panic and
//! never a hang.

use lmpr_core::RouterKind;
use lmpr_ctld::{
    read_frame, serve, write_frame, Controller, CtlConfig, ErrorCode, Request, Response,
    ServerConfig, WireError, MAX_FRAME,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

// -------------------------------------------------------------------
// Pure framing-layer cases (no socket).
// -------------------------------------------------------------------

#[test]
fn a_truncated_length_prefix_is_a_typed_io_error() {
    // Two bytes where the 4-byte length should be, then EOF.
    let mut input: &[u8] = &[0x10, 0x00];
    match read_frame(&mut input) {
        Err(WireError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("want typed Io error, got {other:?}"),
    }
}

#[test]
fn a_length_over_the_frame_bound_is_rejected_before_allocation() {
    let mut input: Vec<u8> = (MAX_FRAME + 1).to_le_bytes().to_vec();
    // No payload follows; the bound check must fire on the prefix
    // alone, without trying to read (or allocate) the announced size.
    match read_frame(&mut input.as_slice()) {
        Err(WireError::FrameTooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("want FrameTooLarge, got {other:?}"),
    }
    // The all-ones prefix a desynchronized peer is most likely to
    // produce is also just a typed error.
    input = u32::MAX.to_le_bytes().to_vec();
    assert!(matches!(
        read_frame(&mut input.as_slice()),
        Err(WireError::FrameTooLarge(_))
    ));
}

#[test]
fn eof_mid_frame_is_a_typed_io_error() {
    let mut input = 100u32.to_le_bytes().to_vec();
    input.extend_from_slice(&[0xAB; 40]); // 60 bytes short
    match read_frame(&mut input.as_slice()) {
        Err(WireError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("want typed Io error, got {other:?}"),
    }
}

#[test]
fn oversized_writes_are_refused_without_touching_the_stream() {
    let payload = vec![b'x'; (MAX_FRAME as usize) + 1];
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &payload),
        Err(WireError::FrameTooLarge(_))
    ));
    assert!(sink.is_empty(), "refused frame must not leak bytes");
}

#[test]
fn garbage_payloads_decode_to_typed_errors_never_panics() {
    for payload in [
        &b"\xFF\xFE\x00garbage"[..],
        b"{\"op\": \"paths\"", // truncated JSON
        b"{\"op\": 13}",       // wrong type
        b"[1, 2, 3]",          // wrong shape
        b"{\"ok\": \"yes\"}",  // response with non-bool ok
        b"",                   // empty document
    ] {
        assert!(Request::decode(payload).is_err(), "accepted {payload:?}");
        assert!(Response::decode(payload).is_err(), "accepted {payload:?}");
    }
}

// -------------------------------------------------------------------
// Live-server cases: the daemon must survive hostile peers.
// -------------------------------------------------------------------

const TOPO: &str = "8port2tree";

struct Daemon {
    scratch: PathBuf,
    socket: PathBuf,
    server: Option<JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        let scratch = std::env::temp_dir().join(format!("ctld-neg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        let socket = scratch.join("ctld.sock");
        let cfg = CtlConfig::new(TOPO, RouterKind::Disjoint(4), scratch.join("state"));
        let (ctl, report) = Controller::start(cfg).expect("controller start");
        assert!(report.certified());
        let server_cfg = ServerConfig::new(&socket);
        let server = std::thread::spawn(move || serve(ctl, server_cfg));
        for _ in 0..500 {
            if UnixStream::connect(&socket).is_ok() {
                return Daemon {
                    scratch,
                    socket,
                    server: Some(server),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("server did not come up");
    }

    fn connect(&self) -> UnixStream {
        let s = UnixStream::connect(&self.socket).expect("connect");
        // A hang is a failure mode under test: bound every read.
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        s
    }

    fn stop(mut self) {
        let mut stream = self.connect();
        write_frame(&mut stream, Request::Shutdown.to_json().as_bytes()).expect("write");
        let payload = read_frame(&mut stream).expect("read");
        assert!(matches!(
            Response::decode(&payload).expect("decode"),
            Response::Shutdown { .. }
        ));
        self.server
            .take()
            .expect("server handle")
            .join()
            .expect("server thread")
            .expect("server exit");
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

/// The server closed on us: either a clean EOF or — when our garbage
/// was still unread in its receive buffer at close — a reset.
fn assert_closed(stream: &mut UnixStream, what: &str) {
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("server must close {what}, but sent {n} bytes"),
        Err(e) => assert_eq!(
            e.kind(),
            std::io::ErrorKind::ConnectionReset,
            "want EOF or reset {what}, got {e}"
        ),
    }
}

fn status_works(stream: &mut UnixStream) {
    write_frame(stream, Request::Status.to_json().as_bytes()).expect("write status");
    let payload = read_frame(stream).expect("read status");
    assert!(matches!(
        Response::decode(&payload).expect("decode status"),
        Response::Status { .. }
    ));
}

#[test]
fn a_live_server_survives_garbage_and_keeps_serving_others() {
    let d = Daemon::start("garbage");

    // 1. A peer that opens with a bogus oversized length: the server
    // must drop the connection (EOF on our side), not crash or hang.
    let mut hostile = d.connect();
    hostile.write_all(&[0xFF; 64]).expect("write garbage");
    assert_closed(&mut hostile, "the desynchronized connection");

    // 2. A peer that interleaves garbage after a valid exchange.
    let mut sneaky = d.connect();
    status_works(&mut sneaky);
    sneaky.write_all(&[0xFF; 8]).expect("write garbage");
    assert_closed(&mut sneaky, "after mid-stream garbage");

    // 3. A peer announcing a frame just over the bound with no bytes
    // behind it: rejected from the prefix alone.
    let mut bomber = d.connect();
    bomber
        .write_all(&(MAX_FRAME + 1).to_le_bytes())
        .expect("write bomb prefix");
    assert_closed(&mut bomber, "on an oversized announcement");

    // 4. A peer sending a well-framed but non-JSON payload gets a typed
    // in-band rejection and the connection stays usable.
    let mut mumbler = d.connect();
    write_frame(&mut mumbler, b"\xFF\xFEnot json").expect("write junk frame");
    let payload = read_frame(&mut mumbler).expect("read junk reply");
    match Response::decode(&payload).expect("decode junk reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("want typed bad-request, got {other:?}"),
    }
    status_works(&mut mumbler);

    // 5. A peer disconnecting mid-frame (length written, payload
    // withheld) must not wedge the server.
    {
        let mut tease = d.connect();
        tease.write_all(&100u32.to_le_bytes()).expect("write tease");
        tease.write_all(&[0x7B; 10]).expect("write partial payload");
    } // dropped here: mid-frame EOF on the server's read

    // Throughout all of it, a well-behaved client is still served.
    let mut honest = d.connect();
    status_works(&mut honest);
    d.stop();
}
