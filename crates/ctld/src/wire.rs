//! The controller's wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte little-endian length followed by exactly
//! that many bytes of UTF-8 JSON, parsed with the strict
//! [`lmpr_bench::jsonio`] reader — duplicate keys, non-UTF-8 bytes,
//! truncations and depth bombs all come back as typed errors, never
//! panics, because the daemon feeds untrusted socket bytes straight in.
//!
//! Requests name an `op`; replies are `{"ok": true, ...}` on success
//! and `{"ok": false, "error": <code>, ...}` on a typed rejection.
//! Every successful reply carries the server's current `epoch` and
//! `mode` so clients can fence their next batch without an extra round
//! trip; write acks and errors additionally carry the primary's
//! `gen`eration lease so clients can detect a failover (and a deposed
//! primary) without an extra status round trip.
//!
//! Replication rides the same protocol: a standby sends `subscribe`
//! and the primary answers with a stream of `replicate` frames — a
//! full checkpoint snapshot first, then one frame per committed epoch
//! carrying the checkpoint envelope plus the fault batch that produced
//! it.

use crate::store::Checkpoint;
use lmpr_bench::json_string;
use lmpr_bench::jsonio::{self, ParseError, Value};
use std::fmt;
use std::io::{Read, Write};
use xgft::{DirectedLinkId, FaultChange, NodeId};

/// Upper bound on one frame's payload; anything larger is rejected
/// before allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Why a frame could not be read, written, or understood.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes EOF mid-frame).
    Io(std::io::Error),
    /// The peer announced a frame larger than [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The payload was not a valid JSON document.
    Parse(ParseError),
    /// The document parsed but is not a well-formed message.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            WireError::Parse(e) => write!(f, "payload is not valid json: {e}"),
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ParseError> for WireError {
    fn from(e: ParseError) -> Self {
        WireError::Parse(e)
    }
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(WireError::FrameTooLarge(payload.len() as u32));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// One fault change as it appears on the wire. The split from
/// [`FaultChange`] keeps the protocol self-describing (`level`/`rank`
/// for switches, a directed link id for links).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeSpec {
    /// Directed link goes down.
    LinkDown(u32),
    /// Directed link comes back up.
    LinkUp(u32),
    /// Switch `(level, rank)` goes down.
    SwitchDown(u8, u32),
    /// Switch `(level, rank)` comes back up.
    SwitchUp(u8, u32),
}

impl ChangeSpec {
    /// The core-library change this spec describes.
    pub fn to_change(self) -> FaultChange {
        match self {
            ChangeSpec::LinkDown(l) => FaultChange::LinkDown(DirectedLinkId(l)),
            ChangeSpec::LinkUp(l) => FaultChange::LinkUp(DirectedLinkId(l)),
            ChangeSpec::SwitchDown(level, rank) => FaultChange::SwitchDown(NodeId { level, rank }),
            ChangeSpec::SwitchUp(level, rank) => FaultChange::SwitchUp(NodeId { level, rank }),
        }
    }

    /// The wire spec of a core-library change.
    pub fn from_change(c: FaultChange) -> Self {
        match c {
            FaultChange::LinkDown(l) => ChangeSpec::LinkDown(l.0),
            FaultChange::LinkUp(l) => ChangeSpec::LinkUp(l.0),
            FaultChange::SwitchDown(n) => ChangeSpec::SwitchDown(n.level, n.rank),
            FaultChange::SwitchUp(n) => ChangeSpec::SwitchUp(n.level, n.rank),
        }
    }

    fn to_json(self) -> String {
        match self {
            ChangeSpec::LinkDown(l) => format!("{{\"kind\": \"link-down\", \"link\": {l}}}"),
            ChangeSpec::LinkUp(l) => format!("{{\"kind\": \"link-up\", \"link\": {l}}}"),
            ChangeSpec::SwitchDown(level, rank) => {
                format!("{{\"kind\": \"switch-down\", \"level\": {level}, \"rank\": {rank}}}")
            }
            ChangeSpec::SwitchUp(level, rank) => {
                format!("{{\"kind\": \"switch-up\", \"level\": {level}, \"rank\": {rank}}}")
            }
        }
    }

    fn from_json(v: &Value) -> Result<Self, WireError> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(WireError::Malformed("change without a kind"))?;
        let link = || {
            v.get("link")
                .and_then(Value::as_u64)
                .and_then(|l| u32::try_from(l).ok())
                .ok_or(WireError::Malformed("link change without a link id"))
        };
        let switch = || {
            let level = v
                .get("level")
                .and_then(Value::as_u64)
                .and_then(|l| u8::try_from(l).ok());
            let rank = v
                .get("rank")
                .and_then(Value::as_u64)
                .and_then(|r| u32::try_from(r).ok());
            match (level, rank) {
                (Some(l), Some(r)) => Ok((l, r)),
                _ => Err(WireError::Malformed("switch change without level/rank")),
            }
        };
        match kind {
            "link-down" => Ok(ChangeSpec::LinkDown(link()?)),
            "link-up" => Ok(ChangeSpec::LinkUp(link()?)),
            "switch-down" => switch().map(|(l, r)| ChangeSpec::SwitchDown(l, r)),
            "switch-up" => switch().map(|(l, r)| ChangeSpec::SwitchUp(l, r)),
            _ => Err(WireError::Malformed("unknown change kind")),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake / liveness probe; replied to with [`Response::Status`].
    Hello,
    /// Controller state summary.
    Status,
    /// Semantic digest of the full routing state at the current epoch.
    Digest,
    /// Epoch-fenced batch of path queries: `pairs` are `(src, dst)`
    /// processing-node ids; the batch is answered only if `epoch`
    /// matches the server's current epoch.
    Paths {
        /// The epoch the client believes is current.
        epoch: u64,
        /// Optional queue-latency budget in milliseconds; a batch still
        /// queued past it is rejected with a typed `deadline` error.
        deadline_ms: Option<u64>,
        /// The `(src, dst)` pairs to answer, in order.
        pairs: Vec<(u32, u32)>,
    },
    /// A fault event batch from the live feed. Delivery is
    /// at-least-once: `batch_id` must increase by exactly 1 per new
    /// batch and duplicates are acknowledged without reapplying.
    Fault {
        /// Monotonic feed sequence number.
        batch_id: u64,
        /// Generation fence: when set, the write is applied only if it
        /// equals the primary's current generation lease — a client
        /// that has seen a promotion cannot feed a deposed primary, and
        /// a client holding a stale lease is told to refresh. `None`
        /// writes unfenced (pre-HA clients).
        gen: Option<u64>,
        /// The state changes, applied in order.
        changes: Vec<ChangeSpec>,
    },
    /// A standby's request to stream certified epochs. Answered with a
    /// `replicate` snapshot frame, then one `replicate` frame per
    /// committed epoch for as long as the connection lasts.
    Subscribe {
        /// Newest epoch already durable on the standby (advisory; the
        /// primary always opens with a full snapshot, which the standby
        /// dedups by `(generation, epoch)`).
        from_epoch: u64,
        /// The standby's own generation fence: a primary whose lease is
        /// *older* refuses with `gen-fenced` — a deposed primary must
        /// never feed a standby that already followed a promotion.
        gen: u64,
    },
    /// Advance the controller's logical clock to `to`, draining any
    /// replayed schedule events up to it and retrying a degraded
    /// reconvergence whose backoff has elapsed.
    Tick {
        /// Target logical time.
        to: u64,
    },
    /// Fault-injection toggle: while set, every certificate is failed.
    Chaos {
        /// Inject certificate failures when true.
        fail_certs: bool,
    },
    /// Orderly shutdown.
    Shutdown,
}

impl Request {
    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> String {
        match self {
            Request::Hello => "{\"op\": \"hello\"}".to_owned(),
            Request::Status => "{\"op\": \"status\"}".to_owned(),
            Request::Digest => "{\"op\": \"digest\"}".to_owned(),
            Request::Paths {
                epoch,
                deadline_ms,
                pairs,
            } => {
                let pairs: Vec<String> = pairs.iter().map(|(s, d)| format!("[{s}, {d}]")).collect();
                let deadline = match deadline_ms {
                    Some(ms) => format!(", \"deadline_ms\": {ms}"),
                    None => String::new(),
                };
                format!(
                    "{{\"op\": \"paths\", \"epoch\": {epoch}{deadline}, \"pairs\": [{}]}}",
                    pairs.join(", ")
                )
            }
            Request::Fault {
                batch_id,
                gen,
                changes,
            } => {
                let changes: Vec<String> = changes.iter().map(|c| c.to_json()).collect();
                let gen = match gen {
                    Some(g) => format!(", \"gen\": {g}"),
                    None => String::new(),
                };
                format!(
                    "{{\"op\": \"fault\", \"batch_id\": {batch_id}{gen}, \"changes\": [{}]}}",
                    changes.join(", ")
                )
            }
            Request::Subscribe { from_epoch, gen } => {
                format!("{{\"op\": \"subscribe\", \"from_epoch\": {from_epoch}, \"gen\": {gen}}}")
            }
            Request::Tick { to } => format!("{{\"op\": \"tick\", \"to\": {to}}}"),
            Request::Chaos { fail_certs } => {
                format!("{{\"op\": \"chaos\", \"fail_certs\": {fail_certs}}}")
            }
            Request::Shutdown => "{\"op\": \"shutdown\"}".to_owned(),
        }
    }

    /// Parse a request frame.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let v = jsonio::parse_bytes(payload)?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or(WireError::Malformed("request without an op"))?;
        match op {
            "hello" => Ok(Request::Hello),
            "status" => Ok(Request::Status),
            "digest" => Ok(Request::Digest),
            "paths" => {
                let epoch = v
                    .get("epoch")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::Malformed("paths without an epoch"))?;
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Value::Null) => None,
                    Some(d) => Some(
                        d.as_u64()
                            .ok_or(WireError::Malformed("non-integer deadline_ms"))?,
                    ),
                };
                let raw = v
                    .get("pairs")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("paths without a pairs array"))?;
                let mut pairs = Vec::with_capacity(raw.len());
                for item in raw {
                    let pair = item
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or(WireError::Malformed("pair is not a 2-array"))?;
                    let s = pair
                        .first()
                        .and_then(Value::as_u64)
                        .and_then(|x| u32::try_from(x).ok());
                    let d = pair
                        .get(1)
                        .and_then(Value::as_u64)
                        .and_then(|x| u32::try_from(x).ok());
                    match (s, d) {
                        (Some(s), Some(d)) => pairs.push((s, d)),
                        _ => return Err(WireError::Malformed("pair ids must be u32 integers")),
                    }
                }
                Ok(Request::Paths {
                    epoch,
                    deadline_ms,
                    pairs,
                })
            }
            "fault" => {
                let batch_id = v
                    .get("batch_id")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::Malformed("fault without a batch_id"))?;
                let gen = match v.get("gen") {
                    None | Some(Value::Null) => None,
                    Some(g) => Some(
                        g.as_u64()
                            .ok_or(WireError::Malformed("non-integer fault gen"))?,
                    ),
                };
                let raw = v
                    .get("changes")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("fault without a changes array"))?;
                let mut changes = Vec::with_capacity(raw.len());
                for item in raw {
                    changes.push(ChangeSpec::from_json(item)?);
                }
                Ok(Request::Fault {
                    batch_id,
                    gen,
                    changes,
                })
            }
            "subscribe" => {
                let from_epoch = v
                    .get("from_epoch")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::Malformed("subscribe without from_epoch"))?;
                let gen = v
                    .get("gen")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::Malformed("subscribe without gen"))?;
                Ok(Request::Subscribe { from_epoch, gen })
            }
            "tick" => {
                let to = v
                    .get("to")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::Malformed("tick without a target time"))?;
                Ok(Request::Tick { to })
            }
            "chaos" => {
                let fail_certs = v
                    .get("fail_certs")
                    .and_then(Value::as_bool)
                    .ok_or(WireError::Malformed("chaos without fail_certs"))?;
                Ok(Request::Chaos { fail_certs })
            }
            "shutdown" => Ok(Request::Shutdown),
            _ => Err(WireError::Malformed("unknown op")),
        }
    }
}

/// Typed rejection codes. Every error a client can provoke has one —
/// the daemon never closes a connection as its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded work queue is full; retry later.
    Overload,
    /// The batch's epoch is not the server's current epoch.
    EpochFenced,
    /// The batch sat in the queue past its deadline.
    Deadline,
    /// The request's generation fence does not match the primary's
    /// lease: either the client is stale (a promotion happened — adopt
    /// the reported `gen` and retry) or the *server* is a deposed
    /// primary (its reported `gen` is older than the client's — fail
    /// over to the next endpoint).
    GenFenced,
    /// The request was malformed or violated feed sequencing.
    BadRequest,
}

impl ErrorCode {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::Overload => "overload",
            ErrorCode::EpochFenced => "epoch-fenced",
            ErrorCode::Deadline => "deadline",
            ErrorCode::GenFenced => "gen-fenced",
            ErrorCode::BadRequest => "bad-request",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "overload" => Some(ErrorCode::Overload),
            "epoch-fenced" => Some(ErrorCode::EpochFenced),
            "deadline" => Some(ErrorCode::Deadline),
            "gen-fenced" => Some(ErrorCode::GenFenced),
            "bad-request" => Some(ErrorCode::BadRequest),
            _ => None,
        }
    }
}

/// A server reply. Successful replies carry the server's `epoch` and
/// `mode` tag (`"serving"` or `"degraded"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Controller state summary.
    Status {
        /// Current epoch.
        epoch: u64,
        /// `"serving"` or `"degraded"`.
        mode: String,
        /// The primary's generation lease.
        gen: u64,
        /// Logical clock.
        now: u64,
        /// Uncommitted fault changes awaiting a passing certificate.
        pending: u64,
        /// Highest committed fault-feed batch id.
        committed_batch_id: u64,
        /// Reconvergences committed since start.
        reconv_count: u64,
        /// Total reconvergence latency in microseconds.
        reconv_total_us: u64,
        /// Worst single reconvergence latency in microseconds.
        reconv_max_us: u64,
        /// Degraded-mode retry attempts so far (0 while serving).
        degraded_attempts: u64,
    },
    /// Semantic digest of the routing state, as 16 hex digits.
    Digest {
        /// Current epoch.
        epoch: u64,
        /// Mode tag.
        mode: String,
        /// FNV-1a digest over every pair's selection.
        digest: String,
    },
    /// Answers to a [`Request::Paths`] batch, in request order; a
    /// disconnected pair yields an empty path list.
    Paths {
        /// Current epoch.
        epoch: u64,
        /// Mode tag.
        mode: String,
        /// Selected path ids per queried pair.
        paths: Vec<Vec<u64>>,
    },
    /// Acknowledgement of a fault batch.
    Fault {
        /// Current epoch (after any reconvergence the batch caused).
        epoch: u64,
        /// Mode tag.
        mode: String,
        /// The generation lease under which the ack was issued.
        gen: u64,
        /// Echoed batch id.
        batch_id: u64,
        /// False when the batch was a duplicate of an already-ingested
        /// id (at-least-once delivery).
        applied: bool,
    },
    /// One replication frame: the committed checkpoint (carrying its
    /// own `generation` and `epoch`) plus the fault batch that produced
    /// it (empty for the snapshot frame that opens a subscription).
    Replicate {
        /// Mode tag at send time.
        mode: String,
        /// The committed root state, exactly as checkpointed.
        cp: Checkpoint,
        /// The change batch whose certification committed this epoch.
        changes: Vec<ChangeSpec>,
    },
    /// Acknowledgement of a clock advance.
    Tick {
        /// Current epoch.
        epoch: u64,
        /// Mode tag.
        mode: String,
        /// The clock after the advance.
        now: u64,
    },
    /// Acknowledgement of a chaos toggle.
    Chaos {
        /// Current epoch.
        epoch: u64,
        /// Mode tag.
        mode: String,
        /// The toggle state now in force.
        fail_certs: bool,
    },
    /// Acknowledgement of an orderly shutdown.
    Shutdown {
        /// Final epoch.
        epoch: u64,
        /// Mode tag.
        mode: String,
    },
    /// A typed rejection.
    Error {
        /// Rejection code.
        code: ErrorCode,
        /// Server epoch when known (0 before the controller answered).
        epoch: u64,
        /// Server generation when known (0 before the controller
        /// answered); a `gen-fenced` rejection always reports it so the
        /// client can adopt the lease — or recognize a deposed primary.
        gen: u64,
        /// Mode tag (`"unknown"` when the controller was not consulted).
        mode: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The `(epoch, mode)` stamp every reply variant carries — used by
    /// the server to build a substitute error that still reports the
    /// routing generation when the original reply cannot be sent.
    pub fn epoch_mode(&self) -> (u64, &str) {
        match self {
            Response::Status { epoch, mode, .. }
            | Response::Digest { epoch, mode, .. }
            | Response::Paths { epoch, mode, .. }
            | Response::Fault { epoch, mode, .. }
            | Response::Tick { epoch, mode, .. }
            | Response::Chaos { epoch, mode, .. }
            | Response::Shutdown { epoch, mode }
            | Response::Error { epoch, mode, .. } => (*epoch, mode),
            Response::Replicate { mode, cp, .. } => (cp.epoch, mode),
        }
    }

    /// The generation lease this reply reports, if the variant carries
    /// one (status, fault acks, replication frames and typed errors
    /// do; pure read replies do not).
    pub fn gen(&self) -> Option<u64> {
        match self {
            Response::Status { gen, .. }
            | Response::Fault { gen, .. }
            | Response::Error { gen, .. } => Some(*gen),
            Response::Replicate { cp, .. } => Some(cp.generation),
            _ => None,
        }
    }

    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> String {
        match self {
            Response::Status {
                epoch,
                mode,
                gen,
                now,
                pending,
                committed_batch_id,
                reconv_count,
                reconv_total_us,
                reconv_max_us,
                degraded_attempts,
            } => format!(
                "{{\"ok\": true, \"reply\": \"status\", \"epoch\": {epoch}, \
                 \"gen\": {gen}, \
                 \"mode\": {}, \"now\": {now}, \"pending\": {pending}, \
                 \"committed_batch_id\": {committed_batch_id}, \
                 \"reconv_count\": {reconv_count}, \
                 \"reconv_total_us\": {reconv_total_us}, \
                 \"reconv_max_us\": {reconv_max_us}, \
                 \"degraded_attempts\": {degraded_attempts}}}",
                json_string(mode)
            ),
            Response::Digest {
                epoch,
                mode,
                digest,
            } => format!(
                "{{\"ok\": true, \"reply\": \"digest\", \"epoch\": {epoch}, \
                 \"mode\": {}, \"digest\": {}}}",
                json_string(mode),
                json_string(digest)
            ),
            Response::Paths { epoch, mode, paths } => {
                let lists: Vec<String> = paths
                    .iter()
                    .map(|ps| {
                        let ids: Vec<String> = ps.iter().map(u64::to_string).collect();
                        format!("[{}]", ids.join(", "))
                    })
                    .collect();
                format!(
                    "{{\"ok\": true, \"reply\": \"paths\", \"epoch\": {epoch}, \
                     \"mode\": {}, \"paths\": [{}]}}",
                    json_string(mode),
                    lists.join(", ")
                )
            }
            Response::Fault {
                epoch,
                mode,
                gen,
                batch_id,
                applied,
            } => format!(
                "{{\"ok\": true, \"reply\": \"fault\", \"epoch\": {epoch}, \
                 \"gen\": {gen}, \
                 \"mode\": {}, \"batch_id\": {batch_id}, \"applied\": {applied}}}",
                json_string(mode)
            ),
            Response::Replicate { mode, cp, changes } => {
                let links: Vec<String> = cp.failed_links.iter().map(u32::to_string).collect();
                let switches: Vec<String> = cp
                    .failed_switches
                    .iter()
                    .map(|(l, r)| format!("[{l}, {r}]"))
                    .collect();
                let changes: Vec<String> = changes.iter().map(|c| c.to_json()).collect();
                format!(
                    "{{\"ok\": true, \"reply\": \"replicate\", \"epoch\": {}, \
                     \"gen\": {}, \"mode\": {}, \"now\": {}, \
                     \"drained_through\": {}, \"committed_batch_id\": {}, \
                     \"failed_links\": [{}], \"failed_switches\": [{}], \
                     \"changes\": [{}]}}",
                    cp.epoch,
                    cp.generation,
                    json_string(mode),
                    cp.now,
                    cp.drained_through,
                    cp.committed_batch_id,
                    links.join(", "),
                    switches.join(", "),
                    changes.join(", ")
                )
            }
            Response::Tick { epoch, mode, now } => format!(
                "{{\"ok\": true, \"reply\": \"tick\", \"epoch\": {epoch}, \
                 \"mode\": {}, \"now\": {now}}}",
                json_string(mode)
            ),
            Response::Chaos {
                epoch,
                mode,
                fail_certs,
            } => format!(
                "{{\"ok\": true, \"reply\": \"chaos\", \"epoch\": {epoch}, \
                 \"mode\": {}, \"fail_certs\": {fail_certs}}}",
                json_string(mode)
            ),
            Response::Shutdown { epoch, mode } => format!(
                "{{\"ok\": true, \"reply\": \"shutdown\", \"epoch\": {epoch}, \"mode\": {}}}",
                json_string(mode)
            ),
            Response::Error {
                code,
                epoch,
                gen,
                mode,
                message,
            } => format!(
                "{{\"ok\": false, \"error\": {}, \"epoch\": {epoch}, \
                 \"gen\": {gen}, \"mode\": {}, \"message\": {}}}",
                json_string(code.tag()),
                json_string(mode),
                json_string(message)
            ),
        }
    }

    /// Parse a reply frame.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let v = jsonio::parse_bytes(payload)?;
        let ok = v
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or(WireError::Malformed("reply without ok"))?;
        let epoch = v.get("epoch").and_then(Value::as_u64).unwrap_or(0);
        let gen = v.get("gen").and_then(Value::as_u64).unwrap_or(0);
        let mode = v
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_owned();
        if !ok {
            let code = v
                .get("error")
                .and_then(Value::as_str)
                .and_then(ErrorCode::from_tag)
                .ok_or(WireError::Malformed("error reply without a known code"))?;
            let message = v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned();
            return Ok(Response::Error {
                code,
                epoch,
                gen,
                mode,
                message,
            });
        }
        let reply = v
            .get("reply")
            .and_then(Value::as_str)
            .ok_or(WireError::Malformed("ok reply without a reply tag"))?;
        let field = |name: &'static str, missing: &'static str| {
            v.get(name).and_then(Value::as_u64).ok_or({
                // The message names the field generically; `missing`
                // keeps the borrow 'static for the error type.
                WireError::Malformed(missing)
            })
        };
        match reply {
            "status" => Ok(Response::Status {
                epoch,
                mode,
                gen,
                now: field("now", "status without now")?,
                pending: field("pending", "status without pending")?,
                committed_batch_id: field(
                    "committed_batch_id",
                    "status without committed_batch_id",
                )?,
                reconv_count: field("reconv_count", "status without reconv_count")?,
                reconv_total_us: field("reconv_total_us", "status without reconv_total_us")?,
                reconv_max_us: field("reconv_max_us", "status without reconv_max_us")?,
                degraded_attempts: field("degraded_attempts", "status without degraded_attempts")?,
            }),
            "digest" => Ok(Response::Digest {
                epoch,
                mode,
                digest: v
                    .get("digest")
                    .and_then(Value::as_str)
                    .ok_or(WireError::Malformed("digest reply without a digest"))?
                    .to_owned(),
            }),
            "paths" => {
                let raw = v
                    .get("paths")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("paths reply without paths"))?;
                let mut paths = Vec::with_capacity(raw.len());
                for list in raw {
                    let ids = list
                        .as_arr()
                        .ok_or(WireError::Malformed("path list is not an array"))?;
                    let mut out = Vec::with_capacity(ids.len());
                    for id in ids {
                        out.push(
                            id.as_u64()
                                .ok_or(WireError::Malformed("path id is not an integer"))?,
                        );
                    }
                    paths.push(out);
                }
                Ok(Response::Paths { epoch, mode, paths })
            }
            "fault" => Ok(Response::Fault {
                epoch,
                mode,
                gen,
                batch_id: field("batch_id", "fault reply without batch_id")?,
                applied: v
                    .get("applied")
                    .and_then(Value::as_bool)
                    .ok_or(WireError::Malformed("fault reply without applied"))?,
            }),
            "replicate" => {
                let links = v
                    .get("failed_links")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("replicate without failed_links"))?;
                let mut failed_links = Vec::with_capacity(links.len());
                for l in links {
                    failed_links.push(
                        l.as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .ok_or(WireError::Malformed("failed link id is not a u32"))?,
                    );
                }
                let switches = v
                    .get("failed_switches")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("replicate without failed_switches"))?;
                let mut failed_switches = Vec::with_capacity(switches.len());
                for s in switches {
                    let pair = s
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or(WireError::Malformed("failed switch is not a 2-array"))?;
                    let level = pair
                        .first()
                        .and_then(Value::as_u64)
                        .and_then(|x| u8::try_from(x).ok());
                    let rank = pair
                        .get(1)
                        .and_then(Value::as_u64)
                        .and_then(|x| u32::try_from(x).ok());
                    match (level, rank) {
                        (Some(l), Some(r)) => failed_switches.push((l, r)),
                        _ => return Err(WireError::Malformed("switch level/rank out of range")),
                    }
                }
                let raw = v
                    .get("changes")
                    .and_then(Value::as_arr)
                    .ok_or(WireError::Malformed("replicate without changes"))?;
                let mut changes = Vec::with_capacity(raw.len());
                for item in raw {
                    changes.push(ChangeSpec::from_json(item)?);
                }
                Ok(Response::Replicate {
                    mode,
                    cp: Checkpoint {
                        generation: gen,
                        epoch,
                        now: field("now", "replicate without now")?,
                        drained_through: field(
                            "drained_through",
                            "replicate without drained_through",
                        )?,
                        committed_batch_id: field(
                            "committed_batch_id",
                            "replicate without committed_batch_id",
                        )?,
                        failed_links,
                        failed_switches,
                    },
                    changes,
                })
            }
            "tick" => Ok(Response::Tick {
                epoch,
                mode,
                now: field("now", "tick reply without now")?,
            }),
            "chaos" => Ok(Response::Chaos {
                epoch,
                mode,
                fail_certs: v
                    .get("fail_certs")
                    .and_then(Value::as_bool)
                    .ok_or(WireError::Malformed("chaos reply without fail_certs"))?,
            }),
            "shutdown" => Ok(Response::Shutdown { epoch, mode }),
            _ => Err(WireError::Malformed("unknown reply tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello,
            Request::Status,
            Request::Digest,
            Request::Paths {
                epoch: 7,
                deadline_ms: Some(250),
                pairs: vec![(0, 63), (12, 3)],
            },
            Request::Paths {
                epoch: 0,
                deadline_ms: None,
                pairs: vec![],
            },
            Request::Fault {
                batch_id: 9,
                gen: None,
                changes: vec![
                    ChangeSpec::LinkDown(5),
                    ChangeSpec::LinkUp(5),
                    ChangeSpec::SwitchDown(2, 1),
                    ChangeSpec::SwitchUp(2, 1),
                ],
            },
            Request::Fault {
                batch_id: 10,
                gen: Some(3),
                changes: vec![ChangeSpec::LinkDown(7)],
            },
            Request::Subscribe {
                from_epoch: 41,
                gen: 2,
            },
            Request::Tick { to: 12345 },
            Request::Chaos { fail_certs: true },
            Request::Shutdown,
        ];
        for req in reqs {
            let json = req.to_json();
            let back = Request::decode(json.as_bytes()).expect("round trip");
            assert_eq!(back, req, "for {json}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Status {
                epoch: 3,
                mode: "serving".into(),
                gen: 2,
                now: 500,
                pending: 0,
                committed_batch_id: 2,
                reconv_count: 3,
                reconv_total_us: 1500,
                reconv_max_us: 900,
                degraded_attempts: 0,
            },
            Response::Digest {
                epoch: 3,
                mode: "degraded".into(),
                digest: "00ff00ff00ff00ff".into(),
            },
            Response::Paths {
                epoch: 1,
                mode: "serving".into(),
                paths: vec![vec![0, 4, 9], vec![], vec![2]],
            },
            Response::Fault {
                epoch: 2,
                mode: "serving".into(),
                gen: 1,
                batch_id: 4,
                applied: false,
            },
            Response::Replicate {
                mode: "serving".into(),
                cp: Checkpoint {
                    generation: 2,
                    epoch: 6,
                    now: 880,
                    drained_through: 850,
                    committed_batch_id: 6,
                    failed_links: vec![3, 17],
                    failed_switches: vec![(1, 0), (2, 3)],
                },
                changes: vec![ChangeSpec::LinkDown(17), ChangeSpec::SwitchDown(2, 3)],
            },
            Response::Replicate {
                mode: "serving".into(),
                cp: Checkpoint {
                    generation: 1,
                    epoch: 0,
                    now: 0,
                    drained_through: 0,
                    committed_batch_id: 0,
                    failed_links: vec![],
                    failed_switches: vec![],
                },
                changes: vec![],
            },
            Response::Tick {
                epoch: 2,
                mode: "serving".into(),
                now: 777,
            },
            Response::Chaos {
                epoch: 2,
                mode: "degraded".into(),
                fail_certs: true,
            },
            Response::Shutdown {
                epoch: 5,
                mode: "serving".into(),
            },
            Response::Error {
                code: ErrorCode::EpochFenced,
                epoch: 6,
                gen: 0,
                mode: "serving".into(),
                message: "batch fenced at epoch 5".into(),
            },
            Response::Error {
                code: ErrorCode::GenFenced,
                epoch: 6,
                gen: 3,
                mode: "serving".into(),
                message: "write fenced at generation 2".into(),
            },
        ];
        for resp in resps {
            let json = resp.to_json();
            let back = Response::decode(json.as_bytes()).expect("round trip");
            assert_eq!(back, resp, "for {json}");
        }
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\": \"hello\"}").expect("write");
        let mut cursor = &buf[..];
        let payload = read_frame(&mut cursor).expect("read");
        assert_eq!(payload, b"{\"op\": \"hello\"}");

        // An announced length over the bound is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge(_))
        ));

        // Truncated payloads surface as io errors, not panics.
        let mut truncated = 100u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(b"short");
        let mut cursor = &truncated[..];
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"op\": \"warp\"}",
            b"{\"op\": \"paths\"}",
            b"{\"op\": \"paths\", \"epoch\": 1, \"pairs\": [[1]]}",
            b"{\"op\": \"paths\", \"epoch\": 1, \"pairs\": [[1, -2]]}",
            b"{\"op\": \"fault\", \"batch_id\": 1, \"changes\": [{\"kind\": \"nope\"}]}",
            b"{\"op\": \"fault\", \"batch_id\": 1, \"gen\": -4, \"changes\": []}",
            b"{\"op\": \"subscribe\"}",
            b"{\"op\": \"subscribe\", \"from_epoch\": 1}",
            b"{\"op\": \"tick\"}",
            b"\xff\xfe",
        ] {
            assert!(Request::decode(bad).is_err(), "accepted {bad:?}");
        }
    }
}
