//! Reusable client for the routing-controller daemon.
//!
//! [`Client`] owns the connection lifecycle that every embedder of the
//! wire protocol otherwise reimplements:
//!
//! * **automatic reconnect** — any transport or framing failure drops
//!   the connection and redials under capped exponential backoff, so a
//!   daemon restart (or an injected wire fault) costs the caller one
//!   retried request, not an error;
//! * **fence retry** — a `paths` batch rejected with `epoch-fenced`
//!   is re-issued at the epoch the rejection itself reported (every
//!   typed error carries the server's current epoch, so no extra
//!   status round trip is needed);
//! * **overload backoff** — a typed `overload` rejection is retried
//!   after a capped exponential delay, because the server sheds load
//!   by design and the client is expected to pace itself;
//! * **idempotent fault submission** — [`Client::submit_fault`] keeps
//!   resubmitting the same `batch_id` across reconnects until the
//!   daemon acknowledges it; the controller's at-least-once dedup
//!   turns a duplicate into a harmless `applied: false` ack, so a
//!   reply lost to a crash can never double-apply a batch;
//! * **endpoint failover** — the config holds an ordered list of
//!   daemon sockets; when a dial fails the client walks the list and
//!   sticks with the first endpoint that answers, so a primary crash
//!   with a promoted standby behind it costs one retried request;
//! * **generation-fence retry** — every reply carries the server's
//!   generation lease and the client tracks the newest it has seen;
//!   a `gen-fenced` rejection from a *newer* generation is adopted
//!   and the batch resubmitted (promotion happened mid-flight), while
//!   one from an *older* generation marks a deposed primary and the
//!   client fails over instead of letting it double-apply.
//!
//! Backoff is paced by [`std::thread::sleep`] on attempt counters
//! alone — the client never reads a clock, keeping it usable from
//! deterministic harnesses (DET-TIME).

use crate::failpoint::{FailPlan, FaultCounters, FaultyStream};
use crate::wire::{read_frame, write_frame, ErrorCode, Request, Response, WireError};
use std::fmt;
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Retry pacing: capped exponential backoff on attempt counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the second attempt, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Attempts per request (connects, transport retries, overload and
    /// fence retries all draw from the same budget).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 10,
            cap_ms: 1000,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (1-based; attempt 1 is
    /// immediate). Saturates at `cap_ms` for any attempt count: the
    /// exponent is capped before shifting and the scale before
    /// multiplying, so no attempt value can overflow the arithmetic.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let shift = u32::min(attempt - 2, 63);
        let factor = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ordered daemon sockets; the client prefers the earliest that
    /// answers and fails over down (and around) the list when the
    /// current endpoint stops answering.
    pub endpoints: Vec<PathBuf>,
    /// Retry pacing.
    pub retry: RetryPolicy,
    /// Optional per-connection read timeout in milliseconds — the only
    /// way a fully dropped reply frame is ever detected.
    pub read_timeout_ms: Option<u64>,
    /// When set, every dialed connection is wrapped in a
    /// [`FaultyStream`] driven by `plan.derive(connection_index)`:
    /// client-side wire-fault injection for the soak harness and tests.
    pub wire_faults: Option<FailPlan>,
}

impl ClientConfig {
    /// Defaults: one endpoint, [`RetryPolicy::default`], no timeout,
    /// no faults.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        Self::with_endpoints(vec![socket_path.into()])
    }

    /// A config over an ordered endpoint list (primary first).
    pub fn with_endpoints(endpoints: Vec<PathBuf>) -> Self {
        ClientConfig {
            endpoints,
            retry: RetryPolicy::default(),
            read_timeout_ms: None,
            wire_faults: None,
        }
    }
}

/// Why a client call failed for good (retries exhausted or the server
/// rejected the request in a way retrying cannot fix).
#[derive(Debug)]
pub enum ClientError {
    /// The retry budget ran out; the payload is the last failure.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's failure, stringified.
        last: String,
    },
    /// A typed server rejection that retrying cannot fix
    /// (`bad-request`, `deadline`).
    Rejected {
        /// The typed error code.
        code: ErrorCode,
        /// The server's epoch at rejection.
        epoch: u64,
        /// The server's mode tag.
        mode: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a structurally valid but unexpected
    /// response kind.
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Rejected { code, message, .. } => {
                write!(f, "server rejected request ({}): {message}", code.tag())
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response kind: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters for the client's recovery actions, for harness accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections dialed (including the first).
    pub connects: u64,
    /// Reconnects forced by transport or framing failures.
    pub reconnects: u64,
    /// `epoch-fenced` rejections retried at the reported epoch.
    pub fenced_retries: u64,
    /// `overload` rejections retried after backoff.
    pub overload_retries: u64,
    /// Fault batches resubmitted after a lost or failed exchange.
    pub resubmissions: u64,
    /// Successful dials that landed on a different endpoint than the
    /// previous connection used.
    pub failovers: u64,
    /// `gen-fenced` rejections recovered from — by adopting a newer
    /// generation or failing away from a deposed one.
    pub gen_retries: u64,
}

/// Both halves of a stream, boxable.
trait Duplex: Read + Write + Send {}
impl<S: Read + Write + Send> Duplex for S {}

/// A reconnecting, retrying connection to an ordered list of daemon
/// endpoints (one socket is the degenerate single-endpoint case).
pub struct Client {
    cfg: ClientConfig,
    conn: Option<Box<dyn Duplex>>,
    /// Connections dialed so far; feeds [`FailPlan::derive`] so each
    /// connection's injected fault sequence is reproducible.
    conn_index: u64,
    /// Index into `cfg.endpoints` the current/most recent connection
    /// used; dials start here and walk the list on failure.
    endpoint_ix: usize,
    counters: FaultCounters,
    stats: ClientStats,
    /// The server epoch most recently seen in any reply.
    last_epoch: u64,
    /// The newest generation lease seen in any reply (0 = none yet).
    last_gen: u64,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("cfg", &self.cfg)
            .field("connected", &self.conn.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// A client for the daemon at `socket_path` with default retries.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        Self::with_config(ClientConfig::new(socket_path))
    }

    /// A client with explicit configuration.
    pub fn with_config(cfg: ClientConfig) -> Self {
        Client {
            cfg,
            conn: None,
            conn_index: 0,
            endpoint_ix: 0,
            counters: FaultCounters::new(),
            stats: ClientStats::default(),
            last_epoch: 0,
            last_gen: 0,
        }
    }

    /// Recovery-action counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Counters for faults injected by this client's own
    /// `wire_faults` plan (zero without one).
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters.clone()
    }

    /// The server epoch most recently seen in any reply.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The newest generation lease seen in any reply (0 = none yet).
    pub fn last_gen(&self) -> u64 {
        self.last_gen
    }

    fn backoff(&self, attempt: u32) {
        let ms = self.cfg.retry.delay_ms(attempt);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Dial the current endpoint, walking the rest of the list (with
    /// wraparound) when it refuses. A successful dial that landed on a
    /// different endpoint than the previous connection is a failover.
    fn dial(&mut self) -> io::Result<()> {
        let n = self.cfg.endpoints.len();
        if n == 0 {
            return Err(io::Error::other("client has no endpoints configured"));
        }
        let mut last_err = None;
        for step in 0..n {
            let ix = (self.endpoint_ix + step) % n;
            let stream = match UnixStream::connect(&self.cfg.endpoints[ix]) {
                Ok(s) => s,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            if let Some(ms) = self.cfg.read_timeout_ms {
                stream.set_read_timeout(Some(Duration::from_millis(ms.max(1))))?;
            }
            if ix != self.endpoint_ix {
                self.stats.failovers += 1;
                self.endpoint_ix = ix;
            }
            let index = self.conn_index;
            self.conn_index += 1;
            self.stats.connects += 1;
            self.conn = Some(match self.cfg.wire_faults {
                Some(plan) if plan.armed() => Box::new(FaultyStream::new(
                    stream,
                    plan.derive(index),
                    self.counters.clone(),
                )),
                _ => Box::new(stream),
            });
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no endpoint answered")))
    }

    /// Drop the connection and move the preferred endpoint one step
    /// down the list — used when the *current* endpoint is alive but
    /// provably deposed (its generation lease is older than one this
    /// client has already seen).
    fn fail_away_from_current(&mut self) {
        self.conn = None;
        let n = self.cfg.endpoints.len();
        if n > 1 {
            self.stats.failovers += 1;
            self.endpoint_ix = (self.endpoint_ix + 1) % n;
        }
    }

    /// One write/read exchange on the current connection (dialing if
    /// needed). Any failure leaves the connection dropped.
    fn exchange(&mut self, req: &Request) -> Result<(String, Response), WireError> {
        if self.conn.is_none() {
            self.dial().map_err(WireError::Io)?;
        }
        let Some(conn) = self.conn.as_mut() else {
            // Unreachable: dial() either errored above or set `conn`.
            return Err(WireError::Io(io::Error::other("no connection after dial")));
        };
        let result = (|| {
            write_frame(conn, req.to_json().as_bytes())?;
            let payload = read_frame(conn)?;
            let text = String::from_utf8_lossy(&payload).into_owned();
            let resp = Response::decode(&payload)?;
            Ok((text, resp))
        })();
        if result.is_err() {
            self.conn = None;
        }
        if let Ok((_, resp)) = &result {
            self.last_epoch = resp.epoch_mode().0;
            if let Some(g) = resp.gen() {
                if g > self.last_gen {
                    self.last_gen = g;
                }
            }
        }
        result
    }

    /// Issue `req`, retrying transport failures (with reconnect) and
    /// `overload` rejections under the configured backoff. Typed
    /// rejections other than `overload` are returned to the caller as
    /// the `Response::Error` they are — [`Client::paths`] and
    /// [`Client::submit_fault`] layer their own semantics on top.
    pub fn request(&mut self, req: &Request) -> Result<(String, Response), ClientError> {
        let max = self.cfg.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=max {
            self.backoff(attempt);
            match self.exchange(req) {
                Ok((text, resp)) => {
                    if let Response::Error {
                        code: ErrorCode::Overload,
                        message,
                        ..
                    } = &resp
                    {
                        self.stats.overload_retries += 1;
                        last = format!("overload: {message}");
                        continue;
                    }
                    return Ok((text, resp));
                }
                Err(e) => {
                    self.stats.reconnects += 1;
                    last = e.to_string();
                }
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: max,
            last,
        })
    }

    /// `status` round trip.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        let (_, resp) = self.request(&Request::Status)?;
        match resp {
            Response::Status { .. } => Ok(resp),
            other => Err(reject_or_unexpected(other, "status")),
        }
    }

    /// The server's current epoch (one `status` round trip).
    pub fn current_epoch(&mut self) -> Result<u64, ClientError> {
        match self.status()? {
            Response::Status { epoch, .. } => Ok(epoch),
            other => Err(reject_or_unexpected(other, "status")),
        }
    }

    /// `digest` round trip: `(epoch, digest-hex)`.
    pub fn digest(&mut self) -> Result<(u64, String), ClientError> {
        let (_, resp) = self.request(&Request::Digest)?;
        match resp {
            Response::Digest { epoch, digest, .. } => Ok((epoch, digest)),
            other => Err(reject_or_unexpected(other, "digest")),
        }
    }

    /// Advance the daemon's logical clock to `to`; returns the clock
    /// after the advance.
    pub fn tick(&mut self, to: u64) -> Result<u64, ClientError> {
        let (_, resp) = self.request(&Request::Tick { to })?;
        match resp {
            Response::Tick { now, .. } => Ok(now),
            other => Err(reject_or_unexpected(other, "tick")),
        }
    }

    /// Epoch-fenced path query. The batch is first issued at the newest
    /// epoch this client has seen (or fetched via `status` when it has
    /// seen none); an `epoch-fenced` rejection is retried at the epoch
    /// the rejection reported, so a reconvergence between fetch and
    /// query costs one extra round trip, never an error.
    pub fn paths(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: Option<u64>,
    ) -> Result<(u64, Vec<Vec<u64>>), ClientError> {
        let mut epoch = if self.last_epoch > 0 {
            self.last_epoch
        } else {
            self.current_epoch()?
        };
        let max = self.cfg.retry.max_attempts.max(1);
        for _ in 0..max {
            let req = Request::Paths {
                epoch,
                deadline_ms,
                pairs: pairs.to_vec(),
            };
            let (_, resp) = self.request(&req)?;
            match resp {
                Response::Paths { epoch, paths, .. } => return Ok((epoch, paths)),
                Response::Error {
                    code: ErrorCode::EpochFenced,
                    epoch: server_epoch,
                    ..
                } => {
                    self.stats.fenced_retries += 1;
                    epoch = server_epoch;
                }
                other => return Err(reject_or_unexpected(other, "paths")),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: max,
            last: "epoch-fenced on every attempt".to_owned(),
        })
    }

    /// Submit fault batch `batch_id` until the daemon acknowledges it.
    /// Returns `true` if this submission applied the batch, `false` if
    /// the daemon had already ingested it (an earlier attempt's ack was
    /// lost — at-least-once delivery doing its job). Feed-sequencing
    /// rejections surface as [`ClientError::Rejected`].
    ///
    /// Writes carry the newest generation lease this client has seen
    /// (none before the first reply), so a promotion mid-flight shows
    /// up as a typed `gen-fenced` rejection rather than a silent
    /// double-apply: a rejection from a **newer** generation is adopted
    /// and the same `batch_id` resubmitted (the promoted controller's
    /// dedup keeps it idempotent); one from an **older** generation
    /// proves the endpoint is a deposed primary, and the client fails
    /// away from it before retrying.
    pub fn submit_fault(
        &mut self,
        batch_id: u64,
        changes: &[crate::wire::ChangeSpec],
    ) -> Result<bool, ClientError> {
        let max = self.cfg.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=max {
            if attempt > 1 {
                self.stats.resubmissions += 1;
            }
            self.backoff(attempt);
            // Rebuilt per attempt: a gen-fenced retry must carry the
            // adopted (newer) lease, not the one it was rejected with.
            let req = Request::Fault {
                batch_id,
                gen: (self.last_gen > 0).then_some(self.last_gen),
                changes: changes.to_vec(),
            };
            match self.exchange(&req) {
                Ok((_, Response::Fault { applied, .. })) => return Ok(applied),
                Ok((
                    _,
                    Response::Error {
                        code: ErrorCode::Overload,
                        message,
                        ..
                    },
                )) => {
                    self.stats.overload_retries += 1;
                    last = format!("overload: {message}");
                }
                Ok((
                    _,
                    Response::Error {
                        code: ErrorCode::GenFenced,
                        gen: server_gen,
                        message,
                        ..
                    },
                )) => {
                    // `exchange` already adopted a newer lease; all
                    // that is left to decide is whether this endpoint
                    // is worth retrying. A server still on an older
                    // generation never is — it lost a promotion race.
                    self.stats.gen_retries += 1;
                    if server_gen < self.last_gen {
                        self.fail_away_from_current();
                    }
                    last = format!("gen-fenced: {message}");
                }
                Ok((_, other)) => return Err(reject_or_unexpected(other, "fault")),
                Err(e) => {
                    // The exchange failed with the ack possibly lost in
                    // flight; resubmit the same batch_id and let the
                    // daemon's dedup sort it out.
                    self.stats.reconnects += 1;
                    last = e.to_string();
                }
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: max,
            last,
        })
    }

    /// Toggle the daemon's injected-certificate-failure chaos hook.
    pub fn chaos(&mut self, fail_certs: bool) -> Result<(), ClientError> {
        let (_, resp) = self.request(&Request::Chaos { fail_certs })?;
        match resp {
            Response::Chaos { .. } => Ok(()),
            other => Err(reject_or_unexpected(other, "chaos")),
        }
    }

    /// Orderly daemon shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let (_, resp) = self.request(&Request::Shutdown)?;
        match resp {
            Response::Shutdown { .. } => Ok(()),
            other => Err(reject_or_unexpected(other, "shutdown")),
        }
    }
}

/// Fold a non-matching response into the right client error.
fn reject_or_unexpected(resp: Response, expected: &'static str) -> ClientError {
    match resp {
        Response::Error {
            code,
            epoch,
            mode,
            message,
            ..
        } => ClientError::Rejected {
            code,
            epoch,
            mode,
            message,
        },
        _ => ClientError::UnexpectedResponse(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::RetryPolicy;

    #[test]
    fn delay_doubles_then_caps() {
        let p = RetryPolicy {
            base_ms: 10,
            cap_ms: 1000,
            max_attempts: 8,
        };
        assert_eq!(p.delay_ms(1), 0);
        assert_eq!(p.delay_ms(2), 10);
        assert_eq!(p.delay_ms(3), 20);
        assert_eq!(p.delay_ms(4), 40);
        assert_eq!(p.delay_ms(9), 1000);
    }

    #[test]
    fn delay_saturates_at_cap_for_huge_attempt_counts() {
        // Shifts past 63 and products past u64::MAX must saturate to
        // the cap, not wrap to a tiny (or panicking) delay.
        let p = RetryPolicy {
            base_ms: u64::MAX / 2,
            cap_ms: 1234,
            max_attempts: u32::MAX,
        };
        assert_eq!(p.delay_ms(u32::MAX), 1234);
        assert_eq!(p.delay_ms(66), 1234);
        assert_eq!(p.delay_ms(2), 1234);
        let default = RetryPolicy::default();
        assert_eq!(default.delay_ms(u32::MAX), default.cap_ms);
    }
}
