//! Unix-domain-socket front end: bounded queue, deadlines, typed
//! rejections.
//!
//! One thread — the caller of [`serve`] — owns the [`Controller`] and
//! drains a bounded work queue. Connection threads only parse frames
//! and enqueue; when the queue is full they answer the typed
//! `overload` rejection **themselves**, so backpressure costs the
//! controller nothing. A request carrying `deadline_ms` that is still
//! queued when the budget lapses is answered with the typed `deadline`
//! rejection at dequeue instead of being served late.
//!
//! Shutdown is orderly: the `shutdown` op is acknowledged, the queue
//! is closed, the acceptor is unblocked with a self-connection, and
//! the socket file is removed.

use crate::controller::{Controller, CtlError, Mode};
use crate::failpoint::{FailPlan, FaultCounters, FaultyStream};
use crate::wire::{read_frame, write_frame, ErrorCode, Request, Response, MAX_FRAME};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the Unix domain socket to bind.
    pub socket_path: PathBuf,
    /// Bound on queued requests; overflow is rejected as `overload`.
    pub queue_cap: usize,
    /// When set, every accepted connection is wrapped in a
    /// [`FaultyStream`] driven by a per-connection child of this plan
    /// (`plan.derive(connection_index)`), so the server's own read and
    /// write paths run under injected wire faults.
    pub wire_faults: Option<FailPlan>,
}

impl ServerConfig {
    /// A server on `socket_path` with a 64-request queue.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket_path: socket_path.into(),
            queue_cap: 64,
            wire_faults: None,
        }
    }
}

/// One queued request with its reply channel and enqueue time.
struct Job {
    req: Request,
    enqueued: Instant,
    reply: SyncSender<Response>,
}

fn degraded_attempts(mode: Mode) -> u64 {
    match mode {
        Mode::Serving => 0,
        Mode::Degraded { attempts, .. } => attempts as u64,
    }
}

/// Map a controller-level rejection onto the wire.
fn error_response(ctl: &Controller, e: &CtlError) -> Response {
    let code = match e {
        CtlError::EpochFenced { .. } => ErrorCode::EpochFenced,
        CtlError::FeedGap { .. } | CtlError::BadPair(..) => ErrorCode::BadRequest,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        epoch: ctl.epoch(),
        gen: ctl.generation(),
        mode: ctl.mode().tag().to_owned(),
        message: e.to_string(),
    }
}

/// The typed `gen-fenced` rejection, always reporting the server's own
/// lease so the client can adopt it — or recognize a deposed primary.
fn gen_fenced(ctl: &Controller, client_gen: u64, what: &str) -> Response {
    Response::Error {
        code: ErrorCode::GenFenced,
        epoch: ctl.epoch(),
        gen: ctl.generation(),
        mode: ctl.mode().tag().to_owned(),
        message: format!(
            "generation fence: {what} at generation {client_gen}, \
             server lease is {}",
            ctl.generation()
        ),
    }
}

/// Execute one request against the controller. Storage failures are
/// returned as `Err` to stop the server (a controller that cannot
/// checkpoint must not keep publishing epochs); everything
/// client-provoked is a typed in-band response.
fn dispatch(ctl: &mut Controller, req: &Request) -> Result<Response, CtlError> {
    let mode = ctl.mode().tag().to_owned();
    match req {
        Request::Hello | Request::Status => {
            let s = ctl.status();
            Ok(Response::Status {
                epoch: s.epoch,
                mode,
                gen: s.generation,
                now: s.now,
                pending: s.pending,
                committed_batch_id: s.committed_batch_id,
                reconv_count: s.reconv_count,
                reconv_total_us: s.reconv_total_us,
                reconv_max_us: s.reconv_max_us,
                degraded_attempts: degraded_attempts(s.mode),
            })
        }
        Request::Digest => {
            let digest = ctl.digest();
            Ok(Response::Digest {
                epoch: ctl.epoch(),
                mode,
                digest: format!("{digest:016x}"),
            })
        }
        Request::Paths { epoch, pairs, .. } => match ctl.paths(*epoch, pairs) {
            Ok(paths) => Ok(Response::Paths {
                epoch: ctl.epoch(),
                mode,
                paths,
            }),
            Err(e @ (CtlError::EpochFenced { .. } | CtlError::BadPair(..))) => {
                Ok(error_response(ctl, &e))
            }
            Err(e) => Err(e),
        },
        Request::Fault {
            batch_id,
            gen,
            changes,
        } => {
            // The generation fence runs before ingest: a fenced write
            // must not stage changes, advance the feed cursor, or
            // trigger a reconvergence on a deposed primary.
            if let Some(g) = gen {
                if *g != ctl.generation() {
                    return Ok(gen_fenced(
                        ctl,
                        *g,
                        format!("fault batch {batch_id}").as_str(),
                    ));
                }
            }
            match ctl.ingest(*batch_id, changes) {
                Ok(applied) => Ok(Response::Fault {
                    epoch: ctl.epoch(),
                    mode: ctl.mode().tag().to_owned(),
                    gen: ctl.generation(),
                    batch_id: *batch_id,
                    applied,
                }),
                Err(e @ CtlError::FeedGap { .. }) => Ok(error_response(ctl, &e)),
                Err(e) => Err(e),
            }
        }
        Request::Subscribe { gen, .. } => {
            // A standby that has followed a promotion outranks this
            // primary: refusing to feed it is what keeps a deposed
            // primary from rolling a newer-generation standby back.
            if *gen > ctl.generation() {
                return Ok(gen_fenced(ctl, *gen, "subscription"));
            }
            let (cp, _) = ctl.last_commit();
            Ok(Response::Replicate {
                mode,
                cp,
                changes: Vec::new(),
            })
        }
        Request::Tick { to } => {
            ctl.tick(*to)?;
            Ok(Response::Tick {
                epoch: ctl.epoch(),
                mode: ctl.mode().tag().to_owned(),
                now: ctl.now(),
            })
        }
        Request::Chaos { fail_certs } => {
            ctl.set_chaos_fail_certs(*fail_certs);
            Ok(Response::Chaos {
                epoch: ctl.epoch(),
                mode,
                fail_certs: *fail_certs,
            })
        }
        Request::Shutdown => Ok(Response::Shutdown {
            epoch: ctl.epoch(),
            mode,
        }),
    }
}

/// Replies a subscriber's channel can buffer before the controller
/// starts dropping it: a subscriber that cannot drain this many pushes
/// is too far behind to be worth blocking the control plane for, and
/// will resync through its store on redial.
const SUBSCRIBER_BUFFER: usize = 32;

/// Handle one connection: read frames, enqueue jobs, relay replies.
/// Runs until the peer closes, a frame is unreadable, or the server
/// shuts down. `shutdown_ack` fires once a `shutdown` acknowledgement
/// has actually been written to the peer, so [`serve`] can let the
/// process exit without racing the reply onto the wire.
///
/// A `subscribe` request flips the connection into replication mode:
/// after the initial snapshot reply, the controller keeps the reply
/// sender and pushes a `replicate` frame per committed epoch, which
/// this thread relays until either side drops.
fn handle_connection<S: Read + Write>(
    mut stream: S,
    queue: SyncSender<Job>,
    shutdown_ack: SyncSender<()>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // EOF or broken peer; nothing to answer
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    epoch: 0,
                    gen: 0,
                    mode: "unknown".to_owned(),
                    message: e.to_string(),
                };
                if write_frame(&mut stream, resp.to_json().as_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown);
        let is_subscribe = matches!(req, Request::Subscribe { .. });
        let (rtx, rrx) = sync_channel(if is_subscribe { SUBSCRIBER_BUFFER } else { 1 });
        let job = Job {
            req,
            enqueued: Instant::now(),
            reply: rtx,
        };
        // Once the controller is gone the answer below is the last one
        // this connection can give: close afterwards so the peer's next
        // attempt fails at the stream layer and redials instead of
        // conversing with a zombie connection thread forever.
        let mut dying = false;
        let resp = match queue.try_send(job) {
            Ok(()) => match rrx.recv() {
                Ok(resp) => resp,
                Err(_) => {
                    dying = true;
                    Response::Error {
                        code: ErrorCode::Overload,
                        epoch: 0,
                        gen: 0,
                        mode: "unknown".to_owned(),
                        message: "server shutting down".to_owned(),
                    }
                }
            },
            Err(TrySendError::Full(_)) => Response::Error {
                code: ErrorCode::Overload,
                epoch: 0,
                gen: 0,
                mode: "unknown".to_owned(),
                message: "work queue full; retry later".to_owned(),
            },
            Err(TrySendError::Disconnected(_)) => {
                dying = true;
                Response::Error {
                    code: ErrorCode::Overload,
                    epoch: 0,
                    gen: 0,
                    mode: "unknown".to_owned(),
                    message: "server shutting down".to_owned(),
                }
            }
        };
        let accepted_subscription = is_subscribe && matches!(resp, Response::Replicate { .. });
        // A legal request can still produce a reply too large for the
        // frame bound (a big paths batch fans out to several path ids
        // per pair). Letting `write_frame` trip on it would close the
        // connection with no reply; the wire contract is that every
        // client-provoked error is answered in band, so substitute a
        // typed rejection that tells the client to split the batch.
        let mut payload = resp.to_json();
        if payload.len() as u64 > MAX_FRAME as u64 {
            let (epoch, mode) = resp.epoch_mode();
            payload = Response::Error {
                code: ErrorCode::BadRequest,
                epoch,
                gen: 0,
                mode: mode.to_owned(),
                message: format!(
                    "reply of {} bytes exceeds the {MAX_FRAME}-byte frame bound; \
                     split the batch into smaller requests",
                    payload.len()
                ),
            }
            .to_json();
        }
        let written = write_frame(&mut stream, payload.as_bytes()).is_ok();
        if is_shutdown && !matches!(resp, Response::Error { .. }) {
            let _ = shutdown_ack.try_send(());
        }
        if !written || dying {
            return;
        }
        if accepted_subscription {
            // Replication relay: block on controller pushes and stream
            // them out until the controller drops the sender (subscriber
            // fell behind or server shut down) or the write fails (peer
            // gone). Either way the connection is done — a standby that
            // lost its stream resyncs from its own store on redial.
            while let Ok(push) = rrx.recv() {
                if write_frame(&mut stream, push.to_json().as_bytes()).is_err() {
                    return;
                }
            }
            return;
        }
    }
}

/// Drain the queue against the controller until a `shutdown` request.
/// Returns `true` when a shutdown was served (as opposed to every
/// sender dropping).
///
/// Accepted `subscribe` connections are retained here as push targets:
/// after any request that advanced the `(generation, epoch)` lease, the
/// last committed checkpoint and its fault batch are fanned out with
/// `try_send`. A subscriber whose buffer is full (or whose relay thread
/// died) is dropped on the spot — replication must never apply
/// backpressure to the control plane.
fn controller_loop(ctl: &mut Controller, rx: Receiver<Job>) -> Result<bool, CtlError> {
    let mut subscribers: Vec<SyncSender<Response>> = Vec::new();
    while let Ok(job) = rx.recv() {
        // Deadline check happens at dequeue: a request that waited past
        // its budget is rejected, not served late.
        if let Request::Paths {
            deadline_ms: Some(ms),
            ..
        } = &job.req
        {
            let elapsed = job.enqueued.elapsed().as_millis() as u64;
            // A zero budget means "answer only if dequeued instantly"
            // and is always expired by the time we look.
            if *ms == 0 || elapsed > *ms {
                let _ = job.reply.send(Response::Error {
                    code: ErrorCode::Deadline,
                    epoch: ctl.epoch(),
                    gen: ctl.generation(),
                    mode: ctl.mode().tag().to_owned(),
                    message: format!("queued past the {ms} ms deadline"),
                });
                continue;
            }
        }
        let shutdown = matches!(job.req, Request::Shutdown);
        let is_subscribe = matches!(job.req, Request::Subscribe { .. });
        let lease_before = (ctl.generation(), ctl.epoch());
        let resp = dispatch(ctl, &job.req)?;
        let accepted_subscription = is_subscribe && matches!(resp, Response::Replicate { .. });
        let subscriber = accepted_subscription.then(|| job.reply.clone());
        let _ = job.reply.send(resp);
        if let Some(s) = subscriber {
            subscribers.push(s);
        }
        if (ctl.generation(), ctl.epoch()) != lease_before && !subscribers.is_empty() {
            let (cp, changes) = ctl.last_commit();
            let push = Response::Replicate {
                mode: ctl.mode().tag().to_owned(),
                cp,
                changes,
            };
            subscribers.retain(|s| s.try_send(push.clone()).is_ok());
        }
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Run the server until a `shutdown` request (or a fatal storage
/// error). Owns the controller for the duration; the acceptor and
/// per-connection threads are detached workers feeding the bounded
/// queue this thread drains.
pub fn serve(mut ctl: Controller, cfg: ServerConfig) -> Result<(), io::Error> {
    // The controller itself runs on logical ticks only (DET-TIME); the
    // server is the approved wall-clock module and injects the
    // monotonic clock behind the reconvergence latency stats.
    let clock_zero = Instant::now();
    ctl.set_micros_clock(Box::new(move || {
        u64::try_from(clock_zero.elapsed().as_micros()).unwrap_or(u64::MAX)
    }));
    let _ = std::fs::remove_file(&cfg.socket_path);
    let listener = UnixListener::bind(&cfg.socket_path)?;
    let (tx, rx) = sync_channel::<Job>(cfg.queue_cap.max(1));
    let (ack_tx, ack_rx) = sync_channel::<()>(1);
    let shutting_down = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let shutting_down = Arc::clone(&shutting_down);
        let wire_faults = cfg.wire_faults;
        let counters = FaultCounters::new();
        std::thread::spawn(move || {
            let mut conn_index = 0u64;
            for stream in listener.incoming() {
                if shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let queue = tx.clone();
                let ack = ack_tx.clone();
                match wire_faults {
                    Some(plan) if plan.armed() => {
                        // Each connection gets its own derived plan so its
                        // fault sequence depends only on the seed and its
                        // accept order, not on frame interleaving.
                        let faulty =
                            FaultyStream::new(stream, plan.derive(conn_index), counters.clone());
                        std::thread::spawn(move || handle_connection(faulty, queue, ack));
                    }
                    _ => {
                        std::thread::spawn(move || handle_connection(stream, queue, ack));
                    }
                }
                conn_index += 1;
            }
        })
    };

    let result = controller_loop(&mut ctl, rx);

    // The shutdown acknowledgement is written by a detached connection
    // thread; wait for it so a process exit right after this return
    // cannot cut the reply off mid-frame.
    if let Ok(true) = result {
        let _ = ack_rx.recv_timeout(std::time::Duration::from_secs(5));
    }

    // Unblock the acceptor: flag first, then a throwaway self-connect.
    shutting_down.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&cfg.socket_path);
    let _ = acceptor.join();
    let _ = std::fs::remove_file(&cfg.socket_path);

    result
        .map(|_| ())
        .map_err(|e| io::Error::other(e.to_string()))
}
