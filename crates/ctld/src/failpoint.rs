//! Seeded, deterministic failpoint injection for every ctld I/O site.
//!
//! The daemon's own failure surface is storage and socket I/O. This
//! module abstracts both behind injectable seams — [`StoreIo`] for the
//! checkpoint store's filesystem calls, [`FaultyStream`] for the wire
//! layer's stream reads and writes — and drives fault decisions from a
//! [`FailPlan`] that is a **pure function of a seed**: fault number `n`
//! at site `s` either fires or not depending only on
//! `(seed, s, n)`. Any failure interleaving the soak harness provokes
//! is therefore replayable from the plan's one-line repro string (the
//! [`fmt::Display`] form, parsed back by [`FailPlan::parse`]).
//!
//! Storage fault kinds (the checkpoint commit path):
//!
//! * **short write** — only a prefix of the payload reaches the file,
//!   then a typed error (torn checkpoint prefix on disk);
//! * **ENOSPC** — the write fails before any byte lands;
//! * **EINTR** — a transient interruption ([`crate::store::Store`]
//!   retries these once, so a single EINTR is survivable);
//! * **fsync-then-crash** — the data is durably synced, then the
//!   process is asked to crash (the commit is recoverable but never
//!   acknowledged);
//! * **torn rename** — the destination materializes holding only a
//!   prefix of the source bytes and the process crashes (a rename whose
//!   data never hit disk before power loss).
//!
//! Wire fault kinds (any [`Read`]`+`[`Write`] stream): partial
//! reads/writes that split frames, dropped frames (claimed written,
//! never sent), injected garbage bytes that desynchronize the framing,
//! and mid-frame disconnects. The peer must answer each with a typed
//! [`crate::wire::WireError`] or a typed in-band rejection — never a
//! panic, and never a hang when the other side times out or reconnects.
//!
//! A "crash" in-process is a typed [`io::Error`] whose payload is
//! [`InjectedCrash`]; it propagates through
//! [`crate::store::StoreError::Io`] and stops the server loop exactly
//! like a fatal storage error. The soak harness recognizes it (by
//! [`is_injected_crash`] on the error chain, or by the
//! `"injected failpoint crash"` marker once the chain has been
//! stringified) and restarts the daemon from the state directory, which
//! is precisely what a supervisor would do.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Permille denominator for fault probabilities.
const PERMILLE: u64 = 1000;

/// SplitMix64 — the one-step seeded mixer used for every decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a site name, so distinct sites draw independent streams.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in site.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic fault plan: rates per I/O category, all driven by
/// one seed. The [`fmt::Display`] form is the one-line repro string —
/// `fp1:<seed>:s<storage>:w<wire>:c<crash>[:nodrop]` — and
/// [`FailPlan::parse`] inverts it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPlan {
    /// Master seed; every decision hashes it with the site and op index.
    pub seed: u64,
    /// Probability (permille) that a storage op faults.
    pub storage_permille: u16,
    /// Probability (permille) that a stream read/write faults.
    pub wire_permille: u16,
    /// Probability (permille) that a *faulting* storage op escalates to
    /// a crash kind (fsync-then-crash, torn rename) instead of a
    /// survivable error.
    pub crash_permille: u16,
    /// Exclude the frame-drop wire kind. Dropped frames are only
    /// detectable by timeout, so connections that must stay
    /// deterministic under wall-clock load (the soak feeder) disable
    /// them while stress connections keep them.
    pub no_drop: bool,
}

impl FailPlan {
    /// A plan that never fires — the zero-cost default.
    pub fn off() -> Self {
        FailPlan {
            seed: 0,
            storage_permille: 0,
            wire_permille: 0,
            crash_permille: 0,
            no_drop: false,
        }
    }

    /// A plan with the given rates.
    pub fn new(seed: u64, storage_permille: u16, wire_permille: u16, crash_permille: u16) -> Self {
        FailPlan {
            seed,
            storage_permille,
            wire_permille,
            crash_permille,
            no_drop: false,
        }
    }

    /// Whether any fault can ever fire.
    pub fn armed(&self) -> bool {
        self.storage_permille > 0 || self.wire_permille > 0
    }

    /// Derive an independent child plan (per incarnation, per
    /// connection) with the same rates: child `i` of the same parent is
    /// always the same plan, children of different indices are
    /// decorrelated.
    pub fn derive(&self, index: u64) -> Self {
        FailPlan {
            seed: splitmix64(self.seed ^ splitmix64(index.wrapping_add(1))),
            ..*self
        }
    }

    /// The raw decision draw for op `n` at `site`.
    fn draw(&self, site: &str, n: u64) -> u64 {
        splitmix64(self.seed ^ site_hash(site) ^ splitmix64(n.wrapping_add(0x5151)))
    }

    /// Decide the fate of storage op `n` at `site`.
    pub fn storage_fault(&self, site: &str, n: u64) -> Option<StorageFault> {
        let h = self.draw(site, n);
        if h % PERMILLE >= u64::from(self.storage_permille) {
            return None;
        }
        let crash = splitmix64(h) % PERMILLE < u64::from(self.crash_permille);
        // The kind is drawn from the upper bits so rate changes do not
        // reshuffle kinds at unchanged sites.
        let kind = (h >> 32) % 4;
        Some(match (site, crash) {
            // Sync faults: a plain failure, or sync-then-crash.
            (SITE_SYNC, true) => StorageFault::SyncThenCrash,
            (SITE_SYNC, false) => StorageFault::Error(ErrorModel::Input),
            // Rename faults: torn (always a crash — rename durability is
            // only lost at power loss) or a plain failure. About a
            // quarter of torn renames keep *all* the bytes: the rename
            // completed durably but the ack was lost, which is the case
            // that forces clients into duplicate resubmission.
            (SITE_RENAME, true) => {
                let r = splitmix64(h >> 16);
                StorageFault::TornRename {
                    keep_permille: if r.is_multiple_of(4) {
                        1000
                    } else {
                        u16::try_from((r >> 8) % 1000).unwrap_or(0)
                    },
                }
            }
            (SITE_RENAME, false) => StorageFault::Error(ErrorModel::Input),
            // Write faults: short write, ENOSPC, or EINTR.
            _ => match kind {
                0 => StorageFault::ShortWrite {
                    keep_permille: u16::try_from(splitmix64(h >> 8) % 900).unwrap_or(0),
                },
                1 => StorageFault::Error(ErrorModel::NoSpace),
                _ => StorageFault::Error(ErrorModel::Interrupted),
            },
        })
    }

    /// Decide the fate of stream op `n` at `site` (`wire.read` or
    /// `wire.write`).
    pub fn wire_fault(&self, site: &str, n: u64) -> Option<WireFault> {
        let h = self.draw(site, n);
        if h % PERMILLE >= u64::from(self.wire_permille) {
            return None;
        }
        let kind = (h >> 32) % 5;
        Some(match kind {
            0 | 1 => WireFault::Partial,
            2 => WireFault::Disconnect,
            // Read-side garbage desynchronizes *our own* framing: the
            // next length prefix is bogus and only a read timeout would
            // ever notice. Timeout-free connections (`no_drop`) take the
            // immediately-visible disconnect instead.
            3 if self.no_drop && site == SITE_STREAM_READ => WireFault::Disconnect,
            3 => WireFault::Garbage,
            _ if self.no_drop => WireFault::Partial,
            _ => WireFault::Drop,
        })
    }

    /// Parse the one-line repro string produced by [`fmt::Display`].
    ///
    /// Total over arbitrary input: every malformation — wrong header,
    /// missing or non-numeric seed, empty segment (`"fp1:1:"`), a rate
    /// that overflows its integer type or reaches 1000 permille,
    /// multi-byte tag characters, trailing garbage — comes back as a
    /// typed [`PlanParseError`]; no input panics.
    pub fn parse(s: &str) -> Result<Self, PlanParseError> {
        let mut parts = s.split(':');
        if parts.next() != Some("fp1") {
            return Err(PlanParseError::BadHeader {
                input: s.to_owned(),
            });
        }
        let seed_text = parts.next().ok_or_else(|| PlanParseError::MissingSeed {
            input: s.to_owned(),
        })?;
        let seed = seed_text
            .parse::<u64>()
            .map_err(|_| PlanParseError::BadSeed {
                segment: seed_text.to_owned(),
            })?;
        let mut plan = FailPlan::new(seed, 0, 0, 0);
        for part in parts {
            if part == "nodrop" {
                plan.no_drop = true;
                continue;
            }
            // `chars().next()`, not `split_at(1)`: the latter panics on
            // an empty segment and slices mid-codepoint on a multi-byte
            // first character.
            let Some(tag) = part.chars().next() else {
                return Err(PlanParseError::EmptySegment {
                    input: s.to_owned(),
                });
            };
            let value_text = &part[tag.len_utf8()..];
            let value: u16 = value_text.parse().map_err(|_| PlanParseError::BadRate {
                segment: part.to_owned(),
            })?;
            if u64::from(value) >= PERMILLE {
                return Err(PlanParseError::RateOutOfRange {
                    segment: part.to_owned(),
                });
            }
            match tag {
                's' => plan.storage_permille = value,
                'w' => plan.wire_permille = value,
                'c' => plan.crash_permille = value,
                _ => {
                    return Err(PlanParseError::UnknownTag {
                        tag,
                        segment: part.to_owned(),
                    })
                }
            }
        }
        Ok(plan)
    }
}

/// Why a failpoint repro string failed to parse. Every variant keeps
/// enough of the offending input to reconstruct what went wrong from a
/// log line alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanParseError {
    /// The string does not start with the `fp1` version header.
    BadHeader {
        /// The full rejected input.
        input: String,
    },
    /// The header was present but no seed segment followed.
    MissingSeed {
        /// The full rejected input.
        input: String,
    },
    /// The seed segment is not a `u64`.
    BadSeed {
        /// The rejected seed segment.
        segment: String,
    },
    /// A trailing `:` (or `::`) produced an empty segment.
    EmptySegment {
        /// The full rejected input.
        input: String,
    },
    /// A rate segment's value is not a `u16` (empty, non-numeric, or
    /// overflowing).
    BadRate {
        /// The rejected segment.
        segment: String,
    },
    /// A rate segment parsed but reaches 1000 permille or more.
    RateOutOfRange {
        /// The rejected segment.
        segment: String,
    },
    /// A rate segment starts with a tag other than `s`, `w`, or `c`.
    UnknownTag {
        /// The unrecognized tag character.
        tag: char,
        /// The full segment it led.
        segment: String,
    },
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanParseError::BadHeader { input } => {
                write!(f, "bad failpoint plan {input:?}: expected fp1:...")
            }
            PlanParseError::MissingSeed { input } => {
                write!(f, "bad failpoint plan {input:?}: missing seed")
            }
            PlanParseError::BadSeed { segment } => {
                write!(f, "bad failpoint seed {segment:?}: not a u64")
            }
            PlanParseError::EmptySegment { input } => {
                write!(f, "bad failpoint plan {input:?}: empty segment")
            }
            PlanParseError::BadRate { segment } => {
                write!(f, "bad rate {segment:?}: not a u16 value")
            }
            PlanParseError::RateOutOfRange { segment } => {
                write!(f, "rate {segment:?} must be < 1000 permille")
            }
            PlanParseError::UnknownTag { tag, segment } => {
                write!(f, "unknown rate tag {tag:?} in segment {segment:?}")
            }
        }
    }
}

impl std::error::Error for PlanParseError {}

impl fmt::Display for FailPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fp1:{}:s{}:w{}:c{}{}",
            self.seed,
            self.storage_permille,
            self.wire_permille,
            self.crash_permille,
            if self.no_drop { ":nodrop" } else { "" }
        )
    }
}

/// How a storage op fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Write only `keep_permille`/1000 of the payload, then error.
    ShortWrite {
        /// Fraction of the payload (permille) that reaches the file.
        keep_permille: u16,
    },
    /// Fail with the given error model without touching the file.
    Error(ErrorModel),
    /// Sync the data for real, then request a crash — the commit is on
    /// disk but never acknowledged.
    SyncThenCrash,
    /// The rename destination materializes holding only a prefix of the
    /// source bytes, then the process crashes.
    TornRename {
        /// Fraction of the source bytes (permille) that survive.
        keep_permille: u16,
    },
}

/// The io error a survivable storage fault surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// Device full (ENOSPC).
    NoSpace,
    /// Interrupted system call (EINTR) — retryable.
    Interrupted,
    /// Generic input/output failure (EIO).
    Input,
}

impl ErrorModel {
    fn to_error(self, site: &str, n: u64) -> io::Error {
        let kind = match self {
            ErrorModel::NoSpace => io::ErrorKind::StorageFull,
            ErrorModel::Interrupted => io::ErrorKind::Interrupted,
            ErrorModel::Input => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected failpoint fault at {site}#{n}"))
    }
}

/// How a stream op fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Move at most one byte this call (splits frames; delayed/partial
    /// delivery as seen by the peer's read loop).
    Partial,
    /// Claim the bytes were written but send nothing (a dropped frame —
    /// the peer only notices by timeout).
    Drop,
    /// Inject a garbage byte that desynchronizes the length-prefixed
    /// framing (on the write side the frame is additionally torn and
    /// the op surfaces a reset, so the sender reconnects rather than
    /// awaiting a reply that can never parse).
    Garbage,
    /// Fail the op with a connection reset (reads additionally model
    /// mid-frame EOF by returning end-of-stream).
    Disconnect,
}

/// The payload of a crash-requesting [`io::Error`].
#[derive(Debug)]
pub struct InjectedCrash {
    /// The I/O site that crashed.
    pub site: String,
    /// The op index at that site.
    pub op: u64,
}

impl fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected failpoint crash at {}#{}", self.site, self.op)
    }
}

impl std::error::Error for InjectedCrash {}

/// Build the typed crash error for `site`/`op`.
pub fn crash_error(site: &str, op: u64) -> io::Error {
    io::Error::other(InjectedCrash {
        site: site.to_owned(),
        op,
    })
}

/// Whether an io error is an injected crash request (directly or via
/// its stringified form, which survives error-chain flattening).
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<InjectedCrash>())
        || e.to_string().contains("injected failpoint crash")
}

// ---------------------------------------------------------------------
// Storage seam.
// ---------------------------------------------------------------------

/// Site names used by the storage failpoints (stable — they feed the
/// decision hash, so renaming one reshuffles every repro).
pub const SITE_CREATE: &str = "store.create";
/// Per-chunk payload write.
pub const SITE_WRITE: &str = "store.write";
/// File data sync.
pub const SITE_SYNC: &str = "store.sync";
/// Atomic rename into place.
pub const SITE_RENAME: &str = "store.rename";
/// Checkpoint read-back.
pub const SITE_READ: &str = "store.read";
/// Retention pruning unlink.
pub const SITE_REMOVE: &str = "store.remove";

/// An open checkpoint file mid-write. Mirrors the two [`fs::File`]
/// calls the store makes between create and rename.
pub trait StoreFile {
    /// Append the whole buffer.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file data and metadata to the device.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The checkpoint store's filesystem calls, injectable as one seam.
/// [`OsStoreIo`] is the passthrough; [`FailpointIo`] wraps any
/// implementation with a [`FailPlan`].
pub trait StoreIo: Send {
    /// `fs::create_dir_all`.
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()>;
    /// `fs::File::create`, returning the open file seam.
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn StoreFile + '_>>;
    /// `fs::rename`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Open `dir` and `sync_all` it (directory-entry durability).
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
    /// `fs::read`.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// `fs::remove_file`.
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
    /// Directory entry names (`fs::read_dir`), unsorted.
    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct OsStoreIo;

/// A real open file behind the [`StoreFile`] seam.
pub struct OsStoreFile(fs::File);

impl StoreFile for OsStoreFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl StoreIo for OsStoreIo {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn create(&mut self, path: &Path) -> io::Result<Box<dyn StoreFile + '_>> {
        Ok(Box::new(OsStoreFile(fs::File::create(path)?)))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
}

/// Shared fault counters, readable after the daemon thread has consumed
/// the store (the soak harness keeps a clone).
#[derive(Debug, Clone, Default)]
pub struct FaultCounters {
    /// Survivable injected faults.
    pub injected: Arc<AtomicU64>,
    /// Crash-requesting injected faults.
    pub crashes: Arc<AtomicU64>,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Survivable faults so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Crash requests so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes.load(Ordering::SeqCst)
    }
}

/// A [`StoreIo`] that injects [`FailPlan`]-driven faults in front of an
/// inner implementation. Each site keeps its own op counter, so the
/// decision sequence is independent of how other sites interleave.
pub struct FailpointIo<I> {
    inner: I,
    plan: FailPlan,
    counters: FaultCounters,
    ops: [u64; 6],
}

impl<I: StoreIo> FailpointIo<I> {
    /// Wrap `inner` with `plan`, reporting into `counters`.
    pub fn new(inner: I, plan: FailPlan, counters: FaultCounters) -> Self {
        FailpointIo {
            inner,
            plan,
            counters,
            ops: [0; 6],
        }
    }

    fn site_index(site: &str) -> usize {
        match site {
            SITE_CREATE => 0,
            SITE_WRITE => 1,
            SITE_SYNC => 2,
            SITE_RENAME => 3,
            SITE_READ => 4,
            _ => 5,
        }
    }

    /// Take the next op number for `site` and its fault decision.
    fn decide(&mut self, site: &str) -> (u64, Option<StorageFault>) {
        let ix = Self::site_index(site);
        let n = self.ops[ix];
        self.ops[ix] += 1;
        (n, self.plan.storage_fault(site, n))
    }

    fn survivable(&self) {
        self.counters.injected.fetch_add(1, Ordering::SeqCst);
    }

    fn crashing(&self) {
        self.counters.crashes.fetch_add(1, Ordering::SeqCst);
    }
}

impl<I: StoreIo> StoreIo for FailpointIo<I> {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        // Directory creation happens once at open; not a fault site.
        self.inner.create_dir_all(dir)
    }

    fn create(&mut self, path: &Path) -> io::Result<Box<dyn StoreFile + '_>> {
        let (n, fault) = self.decide(SITE_CREATE);
        if let Some(f) = fault {
            self.survivable();
            return Err(match f {
                StorageFault::Error(m) => m.to_error(SITE_CREATE, n),
                _ => ErrorModel::NoSpace.to_error(SITE_CREATE, n),
            });
        }
        // Split the borrow by field: the inner file and the op counters
        // live side by side inside the returned wrapper.
        let FailpointIo {
            inner,
            plan,
            counters,
            ops,
        } = self;
        let file = inner.create(path)?;
        Ok(Box::new(RawFailpointFile {
            file,
            plan: *plan,
            ops,
            counters: counters.clone(),
        }))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let (n, fault) = self.decide(SITE_RENAME);
        match fault {
            None => self.inner.rename(from, to),
            Some(StorageFault::TornRename { keep_permille }) => {
                self.crashing();
                // Materialize the torn destination: a prefix of the
                // source bytes, as power loss before data writeback
                // would leave it. The source is consumed.
                let bytes = self.inner.read(from)?;
                let keep = usize::try_from(
                    (bytes.len() as u64).saturating_mul(u64::from(keep_permille)) / PERMILLE,
                )
                .unwrap_or(0);
                let mut f = self.inner.create(to)?;
                f.write_all(&bytes[..keep])?;
                let _ = f.sync_all();
                drop(f);
                let _ = self.inner.remove_file(from);
                Err(crash_error(SITE_RENAME, n))
            }
            Some(StorageFault::Error(m)) => {
                self.survivable();
                Err(m.to_error(SITE_RENAME, n))
            }
            Some(_) => {
                self.survivable();
                Err(ErrorModel::Input.to_error(SITE_RENAME, n))
            }
        }
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        // Directory sync faults would only delay durability; modeled as
        // passthrough (the rename site already covers the torn case).
        self.inner.sync_dir(dir)
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads are deliberately not a fault site: recovery must judge
        // the *bytes on disk* (materialized by the write/rename faults
        // above). A transient read fault would make "newest valid
        // checkpoint" unobservable and the soak invariants unsound.
        self.inner.read(path)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        let (n, fault) = self.decide(SITE_REMOVE);
        if fault.is_some() {
            self.survivable();
            return Err(ErrorModel::Input.to_error(SITE_REMOVE, n));
        }
        self.inner.remove_file(path)
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }
}

/// The borrow-splitting file wrapper returned by
/// [`FailpointIo::create`]: holds the inner file plus just the decision
/// state it needs.
struct RawFailpointFile<'a> {
    file: Box<dyn StoreFile + 'a>,
    plan: FailPlan,
    ops: &'a mut [u64; 6],
    counters: FaultCounters,
}

impl StoreFile for RawFailpointFile<'_> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let ix = 1; // SITE_WRITE
        let n = self.ops[ix];
        self.ops[ix] += 1;
        match self.plan.storage_fault(SITE_WRITE, n) {
            None => self.file.write_all(buf),
            Some(StorageFault::ShortWrite { keep_permille }) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                let keep = usize::try_from(
                    (buf.len() as u64).saturating_mul(u64::from(keep_permille)) / PERMILLE,
                )
                .unwrap_or(0);
                self.file.write_all(&buf[..keep])?;
                let _ = self.file.sync_all();
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("injected short write at {SITE_WRITE}#{n}"),
                ))
            }
            Some(StorageFault::Error(m)) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(m.to_error(SITE_WRITE, n))
            }
            Some(_) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(ErrorModel::Input.to_error(SITE_WRITE, n))
            }
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let ix = 2; // SITE_SYNC
        let n = self.ops[ix];
        self.ops[ix] += 1;
        match self.plan.storage_fault(SITE_SYNC, n) {
            None => self.file.sync_all(),
            Some(StorageFault::SyncThenCrash) => {
                self.counters.crashes.fetch_add(1, Ordering::SeqCst);
                self.file.sync_all()?;
                Err(crash_error(SITE_SYNC, n))
            }
            Some(StorageFault::Error(m)) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(m.to_error(SITE_SYNC, n))
            }
            Some(_) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(ErrorModel::Input.to_error(SITE_SYNC, n))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire seam.
// ---------------------------------------------------------------------

/// Stream-op site names.
pub const SITE_STREAM_READ: &str = "wire.read";
/// Stream write site.
pub const SITE_STREAM_WRITE: &str = "wire.write";

/// A [`Read`]`+`[`Write`] wrapper that injects [`FailPlan`]-driven wire
/// faults. Reads fill the whole buffer (read-exact semantics) so the op
/// count — and with it the fault sequence — is independent of kernel
/// buffering; each outer call is exactly one decision.
pub struct FaultyStream<S> {
    inner: S,
    plan: FailPlan,
    counters: FaultCounters,
    reads: u64,
    writes: u64,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` with `plan`, reporting into `counters`.
    pub fn new(inner: S, plan: FailPlan, counters: FaultCounters) -> Self {
        FaultyStream {
            inner,
            plan,
            counters,
            reads: 0,
            writes: 0,
        }
    }

    /// The wrapped stream (to shut it down, inspect it, etc.).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> FaultyStream<S> {
    /// Fill `buf` completely (or to EOF), hiding kernel short reads.
    fn fill(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut done = 0;
        while done < buf.len() {
            match self.inner.read(&mut buf[done..]) {
                Ok(0) => break,
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(done)
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = self.reads;
        self.reads += 1;
        match self.plan.wire_fault(SITE_STREAM_READ, n) {
            None => self.fill(buf),
            Some(WireFault::Partial) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                self.fill(&mut buf[..1])
            }
            Some(WireFault::Garbage) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                buf[0] = 0xFF;
                Ok(1)
            }
            Some(WireFault::Drop) => {
                // Dropping on the read side is indistinguishable from a
                // mid-frame EOF for the caller.
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Ok(0)
            }
            Some(WireFault::Disconnect) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected wire disconnect at {SITE_STREAM_READ}#{n}"),
                ))
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = self.writes;
        self.writes += 1;
        match self.plan.wire_fault(SITE_STREAM_WRITE, n) {
            None => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            Some(WireFault::Partial) => {
                // Send a prefix, then report a reset: the peer sees a
                // torn frame followed by our reconnect's EOF.
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                let _ = self.inner.flush();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected torn write at {SITE_STREAM_WRITE}#{n}"),
                ))
            }
            Some(WireFault::Drop) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Ok(buf.len())
            }
            Some(WireFault::Garbage) => {
                // Poison byte plus a torn prefix, then a visible reset:
                // the peer's framing is desynchronized and must recover
                // with a typed error, while our caller reconnects
                // immediately instead of awaiting a reply that can never
                // parse.
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                self.inner.write_all(&[0xFF])?;
                self.inner.write_all(&buf[..buf.len() / 2])?;
                let _ = self.inner.flush();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected garbage write at {SITE_STREAM_WRITE}#{n}"),
                ))
            }
            Some(WireFault::Disconnect) => {
                self.counters.injected.fetch_add(1, Ordering::SeqCst);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected wire disconnect at {SITE_STREAM_WRITE}#{n}"),
                ))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_the_repro_string() {
        for plan in [
            FailPlan::off(),
            FailPlan::new(42, 80, 60, 25),
            FailPlan {
                no_drop: true,
                ..FailPlan::new(7, 1, 999, 0)
            },
        ] {
            let s = plan.to_string();
            assert_eq!(FailPlan::parse(&s).expect("parse"), plan, "for {s}");
        }
        for bad in ["", "fp2:1", "fp1:x", "fp1:1:s1000", "fp1:1:q5", "fp1:1:s"] {
            assert!(FailPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_degenerate_inputs_without_panicking() {
        // Regressions the old `split_at(1)` parser panicked on: a
        // trailing colon (empty segment) and a multi-byte first
        // character in a rate segment.
        for bad in [
            "fp1:1:",
            "fp1:1::s5",
            "fp1:1:é5",
            "fp1:1:s5:",
            "fp1",
            "fp1:18446744073709551616",     // seed overflows u64
            "fp1:1:s65536",                 // rate overflows u16
            "fp1:1:s999999999999999999999", // rate overflows everything
            "fp1:1:s5:nodrop:x",
            "fp1:-1",
            "fp1:1:s-5",
        ] {
            assert!(FailPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(512))]

        #[test]
        fn every_plan_round_trips_through_its_repro_string(
            seed in 0u64..u64::MAX,
            s in 0u16..1000,
            w in 0u16..1000,
            c in 0u16..1000,
            nd in 0u8..2,
        ) {
            let plan = FailPlan {
                no_drop: nd == 1,
                ..FailPlan::new(seed, s, w, c)
            };
            let text = plan.to_string();
            proptest::prop_assert_eq!(FailPlan::parse(&text), Ok(plan));
        }

        #[test]
        fn parse_is_total_over_arbitrary_byte_soup(
            bytes in proptest::collection::vec(0u8..=255, 16),
            cut in 0usize..=16,
        ) {
            // Raw bytes, lossily decoded, at every prefix length: the
            // parser must return (Ok or Err), never panic or slice
            // mid-codepoint.
            let soup = String::from_utf8_lossy(&bytes[..cut]).into_owned();
            let _ = FailPlan::parse(&soup);
            let _ = FailPlan::parse(&format!("fp1:{soup}"));
            let _ = FailPlan::parse(&format!("fp1:7:{soup}"));
        }

        #[test]
        fn oversized_rates_error_instead_of_wrapping(
            seed in 0u64..u64::MAX,
            rate in 0u64..u64::MAX,
        ) {
            let text = format!("fp1:{seed}:s{rate}");
            match FailPlan::parse(&text) {
                Ok(plan) => {
                    proptest::prop_assert!(rate < 1000, "accepted rate {rate}");
                    proptest::prop_assert_eq!(u64::from(plan.storage_permille), rate);
                }
                Err(_) => proptest::prop_assert!(rate >= 1000, "rejected rate {rate}"),
            }
        }
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_site_and_index() {
        let plan = FailPlan::new(42, 500, 500, 300);
        for n in 0..200 {
            assert_eq!(
                plan.storage_fault(SITE_WRITE, n),
                plan.storage_fault(SITE_WRITE, n)
            );
            assert_eq!(
                plan.wire_fault(SITE_STREAM_READ, n),
                plan.wire_fault(SITE_STREAM_READ, n)
            );
        }
        // Distinct sites and seeds draw different streams.
        let other = FailPlan::new(43, 500, 500, 300);
        let a: Vec<_> = (0..64).map(|n| plan.storage_fault(SITE_WRITE, n)).collect();
        let b: Vec<_> = (0..64).map(|n| plan.storage_fault(SITE_SYNC, n)).collect();
        let c: Vec<_> = (0..64)
            .map(|n| other.storage_fault(SITE_WRITE, n))
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Derivation is deterministic and decorrelating.
        assert_eq!(plan.derive(3), plan.derive(3));
        assert_ne!(plan.derive(3).seed, plan.derive(4).seed);
    }

    #[test]
    fn rates_bound_the_fault_frequency() {
        let plan = FailPlan::new(9, 100, 100, 0);
        let fired = (0..10_000)
            .filter(|&n| plan.storage_fault(SITE_WRITE, n).is_some())
            .count();
        // 10% nominal; allow wide slack, reject order-of-magnitude drift.
        assert!((500..2000).contains(&fired), "fired {fired}/10000");
        let off = FailPlan::off();
        assert!((0..64).all(|n| off.storage_fault(SITE_WRITE, n).is_none()));
        assert!((0..64).all(|n| off.wire_fault(SITE_STREAM_READ, n).is_none()));
    }

    #[test]
    fn faulty_streams_inject_deterministically_over_buffers() {
        let plan = FailPlan::new(5, 0, 400, 0);
        let run = || {
            let counters = FaultCounters::new();
            let mut sink = Vec::new();
            let mut kinds = Vec::new();
            {
                let mut s = FaultyStream::new(&mut sink, plan, counters.clone());
                for i in 0..32u8 {
                    kinds.push(s.write(&[i; 8]).map_err(|e| e.kind()));
                }
            }
            (sink, kinds, counters.injected_count())
        };
        let (a_bytes, a_kinds, a_count) = run();
        let (b_bytes, b_kinds, b_count) = run();
        assert_eq!(a_bytes, b_bytes);
        assert_eq!(a_kinds, b_kinds);
        assert_eq!(a_count, b_count);
        assert!(a_count > 0, "plan at 40% never fired over 32 writes");
    }

    #[test]
    fn injected_crashes_are_recognizable() {
        let e = crash_error(SITE_SYNC, 12);
        assert!(is_injected_crash(&e));
        assert!(e.to_string().contains("injected failpoint crash"));
        assert!(!is_injected_crash(&io::Error::other("disk on fire")));
        // The marker survives stringification (the server flattens the
        // error chain into a new io::Error on its exit path).
        let flattened = io::Error::other(e.to_string());
        assert!(is_injected_crash(&flattened));
    }
}
