//! Crash-consistent checkpoint store for the controller.
//!
//! Each committed epoch is serialized into a checksummed envelope
//! (magic · version · payload length · FNV-1a-64 · payload, all
//! little-endian — the same shape as the flit-sim snapshot format) and
//! written atomically and durably: the bytes go to a temp file in the
//! same directory, are fsynced, are renamed over the final
//! `epoch-<n>.snap` name, and the directory itself is fsynced so the
//! rename survives power loss, not just process death. A crash
//! therefore leaves either the old checkpoint set or the new one,
//! never a torn file; a torn *temp* file is ignored by recovery
//! entirely.
//!
//! Recovery scans the directory for the highest-numbered checkpoint
//! that decodes and passes its checksum and **view digest** (a second
//! FNV over the semantic fields, catching an envelope that was
//! swapped in from another state directory). Corrupt or truncated
//! checkpoints are skipped with a typed reason, falling back to the
//! next-newest — the daemon degrades to an older committed epoch
//! rather than refusing to start, unless no checkpoint survives.
//!
//! The checkpoint deliberately stores only *root* state: epoch, logical
//! clock, feed cursor, and the committed fault view. Cached selections
//! are derived state and are recomputed on demand; this is what makes
//! the restart-equivalence guarantee a pure function of the fault feed.

use crate::failpoint::{OsStoreIo, StoreIo};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use xgft::{DirectedLinkId, FaultSet, NodeId, Topology};

/// Envelope magic; 8 bytes.
const MAGIC: &[u8; 8] = b"LMPRCTLS";
/// Envelope version; bump when the payload layout changes.
/// Version 2 added the generation lease (HA failover fencing).
const VERSION: u32 = 2;
/// Sanity bound on a payload (a view can't plausibly exceed this).
const MAX_PAYLOAD: u64 = 64 << 20;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(StoreError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32le(&mut self) -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64le(&mut self) -> Result<u64, StoreError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the ctld envelope magic.
    BadMagic,
    /// The envelope version is from a different build.
    BadVersion(u32),
    /// The file ends before the envelope says it should.
    Truncated,
    /// The payload bytes do not match the envelope checksum.
    ChecksumMismatch,
    /// The payload decoded but its fields are inconsistent.
    Corrupt(&'static str),
    /// No checkpoint in the directory survived validation.
    NoCheckpoint,
    /// The checkpoint's generation is older than one already on disk —
    /// a deposed primary tried to write after a standby was promoted.
    StaleGeneration {
        /// The generation the rejected checkpoint carried.
        committed: u64,
        /// The newest generation already durable in the directory.
        newest: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a ctld checkpoint (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            StoreError::Truncated => write!(f, "checkpoint truncated"),
            StoreError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            StoreError::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
            StoreError::NoCheckpoint => write!(f, "no valid checkpoint found"),
            StoreError::StaleGeneration { committed, newest } => write!(
                f,
                "stale generation: checkpoint at generation {committed} \
                 rejected, directory already holds generation {newest}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The root state of one committed epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The primary's generation lease. Genesis starts at 1; every
    /// standby promotion bumps it by exactly 1, and [`Store::commit`]
    /// refuses any checkpoint older than the newest generation already
    /// on disk — the durable half of split-brain fencing.
    pub generation: u64,
    /// The committed epoch number.
    pub epoch: u64,
    /// Logical clock at commit.
    pub now: u64,
    /// Replayed-schedule events at or before this tick are part of the
    /// committed state; a restart re-drains strictly after it.
    pub drained_through: u64,
    /// Highest committed fault-feed batch id.
    pub committed_batch_id: u64,
    /// Failed directed links of the committed view, sorted.
    pub failed_links: Vec<u32>,
    /// Failed switches of the committed view, sorted by (level, rank).
    pub failed_switches: Vec<(u8, u32)>,
}

impl Checkpoint {
    /// Capture the committed view into checkpoint form.
    pub fn from_view(
        generation: u64,
        epoch: u64,
        now: u64,
        drained_through: u64,
        committed_batch_id: u64,
        view: &FaultSet,
    ) -> Self {
        let mut failed_links: Vec<u32> = view.failed_links().map(|l| l.0).collect();
        failed_links.sort_unstable();
        let mut failed_switches: Vec<(u8, u32)> = view
            .failed_switches()
            .iter()
            .map(|n| (n.level, n.rank))
            .collect();
        failed_switches.sort_unstable();
        Checkpoint {
            generation,
            epoch,
            now,
            drained_through,
            committed_batch_id,
            failed_links,
            failed_switches,
        }
    }

    /// Rebuild the committed fault view against a topology.
    pub fn view(&self, topo: &Topology) -> FaultSet {
        let mut set = FaultSet::new();
        for &l in &self.failed_links {
            set.fail_link(DirectedLinkId(l));
        }
        for &(level, rank) in &self.failed_switches {
            set.fail_switch(topo, NodeId { level, rank });
        }
        set
    }

    /// Digest over the semantic fields — stored in the payload and
    /// re-verified on load as a self-audit (rule `CTL-RESUME`): a
    /// checkpoint whose envelope checksum passes but whose recorded
    /// digest disagrees with its own fields was assembled from mixed
    /// state and is rejected.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64 + 4 * self.failed_links.len());
        bytes.extend_from_slice(&self.generation.to_le_bytes());
        bytes.extend_from_slice(&self.epoch.to_le_bytes());
        bytes.extend_from_slice(&self.now.to_le_bytes());
        bytes.extend_from_slice(&self.drained_through.to_le_bytes());
        bytes.extend_from_slice(&self.committed_batch_id.to_le_bytes());
        bytes.extend_from_slice(&(self.failed_links.len() as u64).to_le_bytes());
        for &l in &self.failed_links {
            bytes.extend_from_slice(&l.to_le_bytes());
        }
        bytes.extend_from_slice(&(self.failed_switches.len() as u64).to_le_bytes());
        for &(level, rank) in &self.failed_switches {
            bytes.push(level);
            bytes.extend_from_slice(&rank.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(88 + 4 * self.failed_links.len());
        p.extend_from_slice(&self.generation.to_le_bytes());
        p.extend_from_slice(&self.epoch.to_le_bytes());
        p.extend_from_slice(&self.now.to_le_bytes());
        p.extend_from_slice(&self.drained_through.to_le_bytes());
        p.extend_from_slice(&self.committed_batch_id.to_le_bytes());
        p.extend_from_slice(&self.digest().to_le_bytes());
        p.extend_from_slice(&(self.failed_links.len() as u32).to_le_bytes());
        for &l in &self.failed_links {
            p.extend_from_slice(&l.to_le_bytes());
        }
        p.extend_from_slice(&(self.failed_switches.len() as u32).to_le_bytes());
        for &(level, rank) in &self.failed_switches {
            p.push(level);
            p.extend_from_slice(&rank.to_le_bytes());
        }
        p
    }

    fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let generation = cur.u64le()?;
        let epoch = cur.u64le()?;
        let now = cur.u64le()?;
        let drained_through = cur.u64le()?;
        let committed_batch_id = cur.u64le()?;
        let recorded_digest = cur.u64le()?;
        let n_links = cur.u32le()? as usize;
        if n_links > payload.len() {
            return Err(StoreError::Corrupt("link count exceeds payload"));
        }
        let mut failed_links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            failed_links.push(cur.u32le()?);
        }
        let n_switches = cur.u32le()? as usize;
        if n_switches > payload.len() {
            return Err(StoreError::Corrupt("switch count exceeds payload"));
        }
        let mut failed_switches = Vec::with_capacity(n_switches);
        for _ in 0..n_switches {
            let level = cur.u8()?;
            failed_switches.push((level, cur.u32le()?));
        }
        if cur.pos != payload.len() {
            return Err(StoreError::Corrupt("trailing bytes after payload"));
        }
        let cp = Checkpoint {
            generation,
            epoch,
            now,
            drained_through,
            committed_batch_id,
            failed_links,
            failed_switches,
        };
        if cp.digest() != recorded_digest {
            return Err(StoreError::Corrupt("view digest mismatch (CTL-RESUME)"));
        }
        Ok(cp)
    }

    /// Wrap the payload in the checksummed envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Validate the envelope and decode the payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 28 {
            return Err(StoreError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut v = [0u8; 4];
        v.copy_from_slice(&bytes[8..12]);
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let mut l = [0u8; 8];
        l.copy_from_slice(&bytes[12..20]);
        let len = u64::from_le_bytes(l);
        if len > MAX_PAYLOAD {
            return Err(StoreError::Corrupt("payload length out of range"));
        }
        let mut c = [0u8; 8];
        c.copy_from_slice(&bytes[20..28]);
        let checksum = u64::from_le_bytes(c);
        let payload = bytes
            .get(28..28 + len as usize)
            .ok_or(StoreError::Truncated)?;
        if bytes.len() != 28 + len as usize {
            return Err(StoreError::Corrupt("trailing bytes after envelope"));
        }
        if fnv1a(payload) != checksum {
            return Err(StoreError::ChecksumMismatch);
        }
        Self::decode(payload)
    }
}

/// Directory of per-epoch checkpoints with atomic commit and bounded
/// retention. All filesystem traffic goes through the injectable
/// [`StoreIo`] seam, so the failpoint layer can drive any write, sync,
/// or rename into a seeded fault.
pub struct Store {
    dir: PathBuf,
    /// Checkpoints retained on disk (newest first); older ones are
    /// pruned after each commit.
    retain: usize,
    io: Box<dyn StoreIo>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("retain", &self.retain)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Open (creating if needed) a checkpoint directory on the real
    /// filesystem.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, StoreError> {
        Self::open_with_io(dir, retain, Box::new(OsStoreIo))
    }

    /// Open a checkpoint directory through an injected I/O seam (the
    /// failpoint layer, or a test double).
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        retain: usize,
        mut io: Box<dyn StoreIo>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        Ok(Store {
            dir,
            retain: retain.max(1),
            io,
        })
    }

    /// The directory the store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch-{epoch:016}.snap"))
    }

    /// Atomically commit a checkpoint: write to a temp file, fsync,
    /// rename to `epoch-<n>.snap`, fsync the checkpoint directory, then
    /// prune beyond the retention bound. Only after the *directory*
    /// fsync is the rename itself durable — without it a power loss
    /// can forget the new directory entry even though the file data
    /// reached disk — so a crash at any point leaves this epoch (or an
    /// older committed one) recoverable.
    ///
    /// A single `EINTR` is retried once from scratch (the temp file is
    /// recreated, so a torn first attempt cannot leak into the retry);
    /// every other failure propagates.
    ///
    /// The commit is **generation-fenced**: a checkpoint whose
    /// `generation` is below the newest valid generation already on
    /// disk is rejected with [`StoreError::StaleGeneration`] before any
    /// byte is written. The fence is re-derived from the directory on
    /// every commit (not cached in memory), so a deposed primary that
    /// shares a state directory with its promoted successor is stopped
    /// even across crash-recovery replay.
    pub fn commit(&mut self, cp: &Checkpoint) -> Result<(), StoreError> {
        if let Some((newest, _)) = self.best_valid() {
            if cp.generation < newest {
                return Err(StoreError::StaleGeneration {
                    committed: cp.generation,
                    newest,
                });
            }
        }
        match self.commit_once(cp) {
            Err(StoreError::Io(e)) if e.kind() == io::ErrorKind::Interrupted => {
                self.commit_once(cp)
            }
            other => other,
        }
    }

    fn commit_once(&mut self, cp: &Checkpoint) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(".epoch-{:016}.tmp", cp.epoch));
        let snap = self.snap_path(cp.epoch);
        let bytes = cp.to_bytes();
        {
            let mut f = self.io.create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        self.io.rename(&tmp, &snap)?;
        // Make the rename durable before prune may delete predecessors:
        // pruning first could leave, after power loss, neither the old
        // checkpoints nor the (forgotten) new one.
        self.io.sync_dir(&self.dir)?;
        self.prune();
        Ok(())
    }

    /// The `(generation, epoch)` key of the checkpoint recovery would
    /// choose: the maximum over every file that decodes and validates.
    /// Generation dominates epoch so a promoted standby's lower-epoch
    /// checkpoint outranks a deposed primary's higher-epoch leftovers.
    /// Read failures and corrupt files are silently skipped here; the
    /// loud, typed skip reporting lives in [`Store::load_latest`].
    fn best_valid(&mut self) -> Option<(u64, u64)> {
        let epochs = self.list_epochs().ok()?;
        let mut best: Option<(u64, u64)> = None;
        for epoch in epochs {
            if let Ok(bytes) = self.io.read(&self.snap_path(epoch)) {
                if let Ok(cp) = Checkpoint::from_bytes(&bytes) {
                    let key = (cp.generation, cp.epoch);
                    if best.is_none_or(|b| key > b) {
                        best = Some(key);
                    }
                }
            }
        }
        best
    }

    /// Best-effort retention: keep the newest `retain` checkpoints.
    /// Pruning failures are ignored — retention is hygiene, not
    /// correctness — but the checkpoint recovery would choose (the best
    /// valid `(generation, epoch)`) is never deleted, even when
    /// newer-but-corrupt files occupy the whole retention window.
    /// Deleting it would leave recovery with nothing but garbage.
    fn prune(&mut self) {
        let Ok(mut epochs) = self.list_epochs() else {
            return;
        };
        if epochs.len() <= self.retain {
            return;
        }
        epochs.sort_unstable();
        let keep = self.best_valid().map(|(_, epoch)| epoch);
        let cut = epochs.len() - self.retain;
        for &old in &epochs[..cut] {
            if Some(old) == keep {
                continue;
            }
            let _ = self.io.remove_file(&self.snap_path(old));
        }
    }

    /// Epoch numbers with a checkpoint file present (unvalidated). A
    /// directory that cannot be listed is an **error**, not an empty
    /// store — treating it as empty would let a transient I/O failure
    /// silently bootstrap a fresh genesis over existing state.
    pub fn list_epochs(&mut self) -> Result<Vec<u64>, StoreError> {
        let mut epochs = Vec::new();
        for name in self.io.list(&self.dir)? {
            let Some(rest) = name.strip_prefix("epoch-") else {
                continue;
            };
            let Some(num) = rest.strip_suffix(".snap") else {
                continue;
            };
            if let Ok(epoch) = num.parse::<u64>() {
                epochs.push(epoch);
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Load the best checkpoint that validates — newest `(generation,
    /// epoch)` wins, so a promoted standby's state outranks a deposed
    /// primary's higher-numbered leftovers — skipping corrupt or
    /// truncated files (each skip is reported on stderr with its typed
    /// reason). [`StoreError::NoCheckpoint`] when nothing survives;
    /// a directory that cannot even be listed propagates as
    /// [`StoreError::Io`] so the caller cannot mistake it for a fresh
    /// state directory.
    pub fn load_latest(&mut self) -> Result<Checkpoint, StoreError> {
        let mut epochs = self.list_epochs()?;
        epochs.reverse();
        if epochs.is_empty() {
            return Err(StoreError::NoCheckpoint);
        }
        let mut best: Option<Checkpoint> = None;
        for epoch in epochs {
            let path = self.snap_path(epoch);
            let bytes = match self.io.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("ctld: skipping {}: {e}", path.display());
                    continue;
                }
            };
            match Checkpoint::from_bytes(&bytes) {
                Ok(cp) => {
                    let key = (cp.generation, cp.epoch);
                    if best.as_ref().is_none_or(|b| key > (b.generation, b.epoch)) {
                        best = Some(cp);
                    }
                }
                Err(e) => eprintln!("ctld: skipping {}: {e}", path.display()),
            }
        }
        best.ok_or(StoreError::NoCheckpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    fn topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4], &[1, 2]).expect("valid spec"))
    }

    fn sample(epoch: u64) -> Checkpoint {
        sample_gen(1, epoch)
    }

    fn sample_gen(generation: u64, epoch: u64) -> Checkpoint {
        Checkpoint {
            generation,
            epoch,
            now: 500 + epoch,
            drained_through: 480,
            committed_batch_id: 3,
            failed_links: vec![2, 9, 40],
            failed_switches: vec![(2, 1)],
        }
    }

    #[test]
    fn checkpoints_round_trip_through_the_envelope() {
        let cp = sample(7);
        let bytes = cp.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).expect("round trip"), cp);

        // The rebuilt view matches a hand-built one.
        let topo = topo();
        let view = cp.view(&topo);
        assert!(view.is_link_failed(DirectedLinkId(9)));
        assert!(view.is_switch_failed(NodeId { level: 2, rank: 1 }));
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let cp = sample(1);
        let good = cp.to_bytes();

        // Truncation at every length.
        for cut in 0..good.len() {
            assert!(
                Checkpoint::from_bytes(&good[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
        // A flip in any byte must be caught (magic, version, length,
        // checksum, or payload digest).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "accepted bit flip at byte {i}"
            );
        }
        // Wrong magic and version get their own codes.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(StoreError::BadMagic)
        ));
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(StoreError::BadVersion(99))
        ));
    }

    #[test]
    fn store_commits_atomically_and_recovers_the_newest_valid() {
        let dir = std::env::temp_dir().join(format!("ctld-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir, 3).expect("open");
        assert!(matches!(store.load_latest(), Err(StoreError::NoCheckpoint)));

        for epoch in 1..=5 {
            store.commit(&sample(epoch)).expect("commit");
        }
        // Retention kept the last 3.
        assert_eq!(store.list_epochs().expect("list"), vec![3, 4, 5]);
        assert_eq!(store.load_latest().expect("latest").epoch, 5);

        // Corrupt the newest: recovery falls back to epoch 4.
        let newest = dir.join("epoch-0000000000000005.snap");
        let mut bytes = std::fs::read(&newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).expect("write corrupt");
        assert_eq!(store.load_latest().expect("fallback").epoch, 4);

        // A stray temp file (torn pre-rename write) is invisible.
        std::fs::write(dir.join(".epoch-0000000000000009.tmp"), b"torn").expect("write tmp");
        assert_eq!(store.load_latest().expect("still 4").epoch, 4);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_never_deletes_the_newest_valid_checkpoint() {
        let dir = std::env::temp_dir().join(format!("ctld-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir, 2).expect("open");
        store.commit(&sample(1)).expect("commit 1");

        // A burst of torn commits left corrupt high-numbered checkpoint
        // files; the daemon recovered to epoch 1 beneath them and now
        // commits epoch 2. Count-based retention sorts [1,2,7,8,9] and
        // deletes everything below the cut — including the *just
        // committed* epoch 2, the only valid checkpoint on disk.
        for epoch in [7u64, 8, 9] {
            std::fs::write(dir.join(format!("epoch-{epoch:016}.snap")), b"garbage")
                .expect("write corrupt");
        }
        store.commit(&sample(2)).expect("commit 2");
        let epochs = store.list_epochs().expect("list");
        assert!(
            epochs.contains(&2),
            "prune deleted the only valid checkpoint: {epochs:?}"
        );
        assert_eq!(store.load_latest().expect("recovery").epoch, 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_commit_is_rejected_live() {
        let dir = std::env::temp_dir().join(format!("ctld-genfence-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A deposed primary and its promoted successor sharing the
        // directory: each holds its own Store handle, so the fence must
        // come from disk, not from either handle's memory.
        let mut primary = Store::open(&dir, 4).expect("open primary");
        primary.commit(&sample_gen(1, 1)).expect("gen-1 commit");
        let mut promoted = Store::open(&dir, 4).expect("open promoted");
        promoted.commit(&sample_gen(2, 1)).expect("promotion lease");

        // The deposed primary keeps going at generation 1 — even at a
        // *higher* epoch — and must be refused without writing a byte.
        let err = primary.commit(&sample_gen(1, 9)).expect_err("fenced");
        assert!(
            matches!(
                err,
                StoreError::StaleGeneration {
                    committed: 1,
                    newest: 2
                }
            ),
            "wrong error: {err}"
        );
        assert!(
            !dir.join("epoch-0000000000000009.snap").exists(),
            "fenced commit left a file behind"
        );
        // Equal and newer generations still commit.
        promoted.commit(&sample_gen(2, 2)).expect("same gen ok");
        promoted.commit(&sample_gen(3, 2)).expect("newer gen ok");

        // Recovery prefers generation over epoch: the promoted gen-3
        // epoch-2 state outranks nothing here, but the gen-1 epoch-1
        // file is still around and must lose.
        let latest = promoted.load_latest().expect("latest");
        assert_eq!((latest.generation, latest.epoch), (3, 2));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_is_rejected_after_recovery_replay() {
        let dir = std::env::temp_dir().join(format!("ctld-genfence-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = Store::open(&dir, 4).expect("open");
            store.commit(&sample_gen(1, 1)).expect("commit");
            store.commit(&sample_gen(2, 1)).expect("promotion lease");
        }
        // Fresh process, fresh Store: the fence must be re-derived from
        // the directory during crash-recovery replay.
        let mut store = Store::open(&dir, 4).expect("reopen");
        assert!(matches!(
            store.commit(&sample_gen(1, 2)),
            Err(StoreError::StaleGeneration {
                committed: 1,
                newest: 2
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_kept_prefix_still_fences_generations() {
        let dir = std::env::temp_dir().join(format!("ctld-genfence-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir, 4).expect("open");
        store.commit(&sample_gen(1, 1)).expect("commit");

        // A torn rename that kept the whole byte prefix (the
        // keep_permille == 1000 failpoint case): the promotion lease
        // file is complete and valid on disk, but the committer that
        // wrote it crashed before learning the rename succeeded.
        let lease = sample_gen(2, 2);
        std::fs::write(dir.join("epoch-0000000000000002.snap"), lease.to_bytes())
            .expect("torn-but-complete lease");

        // The old generation must still be fenced by those bytes...
        assert!(matches!(
            store.commit(&sample_gen(1, 3)),
            Err(StoreError::StaleGeneration {
                committed: 1,
                newest: 2
            })
        ));
        // ...while a torn rename that kept only a prefix (invalid
        // bytes) does NOT raise the fence: recovery would skip it, so
        // the fence must too — otherwise garbage could brick commits.
        let mut torn = sample_gen(9, 3).to_bytes();
        torn.truncate(torn.len() / 2);
        std::fs::write(dir.join("epoch-0000000000000003.snap"), &torn).expect("torn prefix");
        store
            .commit(&sample_gen(2, 3))
            .expect("gen 2 still commits");
        let latest = store.load_latest().expect("latest");
        assert_eq!((latest.generation, latest.epoch), (2, 3));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
