//! Hot-standby replication: a [`Standby`] follows a primary daemon's
//! committed epochs over the wire and persists them locally.
//!
//! The standby dials the primary's socket, sends the `subscribe`
//! request with the newest `(generation, epoch)` it already holds on
//! disk, and then applies the stream of `replicate` frames — the
//! initial snapshot, then one push per committed epoch — through its
//! own [`Store`]. Because every applied checkpoint goes through the
//! same atomic-rename commit path the primary uses, standby recovery
//! *is* primary recovery: [`Store::load_latest`]'s newest-valid-wins
//! scan needs no replication-specific cases, and promotion is nothing
//! more than starting a [`crate::Controller`] on the standby's
//! directory and bumping the generation lease.
//!
//! Fencing works in both directions:
//!
//! * the standby skips (and counts) any streamed checkpoint whose
//!   `(generation, epoch)` does not advance what it already has, and
//!   its store refuses stale-generation commits outright;
//! * a primary whose generation is *older* than the standby's answers
//!   the subscription with `gen-fenced` — a deposed primary cannot
//!   roll a promoted standby back.
//!
//! The follower runs on one background thread. Every transport or
//! framing failure tears the connection down and redials under capped
//! exponential backoff, resyncing from the snapshot — a lost stream
//! costs duplicate frames (skipped by the fence above), never a gap,
//! because the snapshot always carries the primary's newest state.

use crate::client::RetryPolicy;
use crate::failpoint::{FailPlan, FaultCounters, FaultyStream};
use crate::store::{Store, StoreError};
use crate::wire::{read_frame, write_frame, ErrorCode, Request, Response};
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for one standby replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The primary daemon's Unix socket.
    pub primary_socket: PathBuf,
    /// The standby's own checkpoint directory (must not be the
    /// primary's).
    pub state_dir: PathBuf,
    /// Checkpoints retained in `state_dir` (same meaning as
    /// [`Store::open`]'s `retain`).
    pub retain: usize,
    /// Delay before the second redial attempt, in milliseconds.
    pub redial_base_ms: u64,
    /// Upper bound on any single redial delay, in milliseconds.
    pub redial_cap_ms: u64,
    /// When set, every dialed connection is wrapped in a
    /// [`FaultyStream`] driven by `plan.derive(connection_index)`.
    pub wire_faults: Option<FailPlan>,
    /// When set, the follower thread exits after this many
    /// *consecutive* failed dials — the hook the `ctld` binary's
    /// `--promote-after` flow uses to detect a dead primary.
    pub max_redial_failures: Option<u64>,
}

impl ReplicaConfig {
    /// A standby of the primary at `primary_socket`, persisting into
    /// `state_dir`, with default pacing and no fault injection.
    pub fn new(primary_socket: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> Self {
        ReplicaConfig {
            primary_socket: primary_socket.into(),
            state_dir: state_dir.into(),
            retain: 8,
            redial_base_ms: 10,
            redial_cap_ms: 500,
            wire_faults: None,
            max_redial_failures: None,
        }
    }
}

/// Counters describing what a standby did, for harness accounting and
/// operator logs. Snapshot values; the follower may advance them the
/// instant after a read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandbyStats {
    /// Successful subscriptions established (including the first).
    pub connects: u64,
    /// Connections lost and re-established (stream error, unexpected
    /// frame, or fenced subscription).
    pub resyncs: u64,
    /// Checkpoints applied through the local store.
    pub epochs_applied: u64,
    /// Streamed checkpoints skipped or refused because they did not
    /// advance the local `(generation, epoch)`.
    pub stale_skipped: u64,
    /// Newest generation durable in the standby's store.
    pub generation: u64,
    /// Newest epoch durable in the standby's store.
    pub epoch: u64,
}

/// Shared between the handle and the follower thread.
struct Shared {
    stop: AtomicBool,
    connects: AtomicU64,
    resyncs: AtomicU64,
    epochs_applied: AtomicU64,
    stale_skipped: AtomicU64,
    generation: AtomicU64,
    epoch: AtomicU64,
    /// An unwrapped clone of the live connection, kept so `stop()` can
    /// `shutdown()` it and unblock a read that would otherwise wait for
    /// the primary's next commit indefinitely (the follower uses no
    /// read timeouts — a timeout mid-frame would desynchronize the
    /// length-prefixed framing).
    live: Mutex<Option<UnixStream>>,
}

/// Handle to a running standby follower thread.
pub struct Standby {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Standby {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Standby {
    /// Open the standby's store (creating `state_dir` if needed), read
    /// back whatever `(generation, epoch)` is already durable, and
    /// start the follower thread.
    pub fn spawn(cfg: ReplicaConfig) -> Result<Standby, StoreError> {
        let mut store = Store::open(&cfg.state_dir, cfg.retain)?;
        let (generation, epoch) = match store.load_latest() {
            Ok(cp) => (cp.generation, cp.epoch),
            Err(StoreError::NoCheckpoint) => (0, 0),
            Err(e) => return Err(e),
        };
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            connects: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            epochs_applied: AtomicU64::new(0),
            stale_skipped: AtomicU64::new(0),
            generation: AtomicU64::new(generation),
            epoch: AtomicU64::new(epoch),
            live: Mutex::new(None),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || follow(cfg, store, &shared))
        };
        Ok(Standby {
            shared,
            thread: Some(thread),
        })
    }

    /// Current counters (the follower keeps running).
    pub fn stats(&self) -> StandbyStats {
        StandbyStats {
            connects: self.shared.connects.load(Ordering::SeqCst),
            resyncs: self.shared.resyncs.load(Ordering::SeqCst),
            epochs_applied: self.shared.epochs_applied.load(Ordering::SeqCst),
            stale_skipped: self.shared.stale_skipped.load(Ordering::SeqCst),
            generation: self.shared.generation.load(Ordering::SeqCst),
            epoch: self.shared.epoch.load(Ordering::SeqCst),
        }
    }

    /// Stop the follower: raise the flag, shut the live connection to
    /// unblock any read in flight, join the thread, return the final
    /// counters.
    pub fn stop(mut self) -> StandbyStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Ok(guard) = self.shared.live.lock() {
            if let Some(stream) = guard.as_ref() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.stats()
    }

    /// Block until the follower exits on its own — which it only does
    /// with `max_redial_failures` set, once that many consecutive dials
    /// have failed. Returns the final counters.
    pub fn wait(mut self) -> StandbyStats {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.stats()
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Ok(guard) = self.shared.live.lock() {
            if let Some(stream) = guard.as_ref() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Sleep `ms` in small chunks so a `stop()` during backoff is honored
/// promptly.
fn interruptible_sleep(shared: &Shared, ms: u64) {
    let mut left = ms;
    while left > 0 && !shared.stop.load(Ordering::SeqCst) {
        let chunk = left.min(20);
        std::thread::sleep(Duration::from_millis(chunk));
        left -= chunk;
    }
}

/// The follower loop: dial, subscribe, apply, resync until stopped.
fn follow(cfg: ReplicaConfig, mut store: Store, shared: &Shared) {
    let backoff = RetryPolicy {
        base_ms: cfg.redial_base_ms,
        cap_ms: cfg.redial_cap_ms,
        max_attempts: u32::MAX,
    };
    let counters = FaultCounters::new();
    let mut conn_index = 0u64;
    let mut failed_dials = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match UnixStream::connect(&cfg.primary_socket) {
            Ok(s) => s,
            Err(_) => {
                failed_dials += 1;
                if cfg
                    .max_redial_failures
                    .is_some_and(|max| failed_dials >= max)
                {
                    return;
                }
                let attempt = u32::try_from(failed_dials.saturating_add(1)).unwrap_or(u32::MAX);
                interruptible_sleep(shared, backoff.delay_ms(attempt));
                continue;
            }
        };
        failed_dials = 0;
        if let Ok(mut guard) = shared.live.lock() {
            *guard = stream.try_clone().ok();
        }
        let index = conn_index;
        conn_index += 1;
        let mut conn: Box<dyn Duplex> = match cfg.wire_faults {
            Some(plan) if plan.armed() => Box::new(FaultyStream::new(
                stream,
                plan.derive(index),
                counters.clone(),
            )),
            _ => Box::new(stream),
        };
        if feed(&cfg, &mut store, shared, &mut conn) {
            shared.resyncs.fetch_add(1, Ordering::SeqCst);
        }
        if let Ok(mut guard) = shared.live.lock() {
            *guard = None;
        }
    }
}

/// Both halves of a stream, boxable.
trait Duplex: Read + Write {}
impl<S: Read + Write> Duplex for S {}

/// Subscribe on an established connection and apply pushes until the
/// stream dies. Returns `true` when the loss should count as a resync
/// (a subscription had been established).
fn feed(
    cfg: &ReplicaConfig,
    store: &mut Store,
    shared: &Shared,
    conn: &mut Box<dyn Duplex>,
) -> bool {
    let sub = Request::Subscribe {
        from_epoch: shared.epoch.load(Ordering::SeqCst),
        gen: shared.generation.load(Ordering::SeqCst),
    };
    if write_frame(conn, sub.to_json().as_bytes()).is_err() {
        return false;
    }
    let mut subscribed = false;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let payload = match read_frame(conn) {
            Ok(p) => p,
            Err(_) => return subscribed,
        };
        let resp = match Response::decode(&payload) {
            Ok(r) => r,
            Err(_) => return subscribed,
        };
        match resp {
            Response::Replicate { cp, .. } => {
                if !subscribed {
                    subscribed = true;
                    shared.connects.fetch_add(1, Ordering::SeqCst);
                }
                let have = (
                    shared.generation.load(Ordering::SeqCst),
                    shared.epoch.load(Ordering::SeqCst),
                );
                if (cp.generation, cp.epoch) <= have {
                    shared.stale_skipped.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                match store.commit(&cp) {
                    Ok(()) => {
                        shared.generation.store(cp.generation, Ordering::SeqCst);
                        shared.epoch.store(cp.epoch, Ordering::SeqCst);
                        shared.epochs_applied.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(StoreError::StaleGeneration { .. }) => {
                        // The in-memory fence above should make this
                        // unreachable, but the store's durable fence is
                        // the authority — count it and drop the stream.
                        shared.stale_skipped.fetch_add(1, Ordering::SeqCst);
                        return subscribed;
                    }
                    Err(e) => {
                        eprintln!(
                            "standby {}: checkpoint commit failed: {e}",
                            cfg.state_dir.display()
                        );
                        return subscribed;
                    }
                }
            }
            Response::Error {
                code: ErrorCode::GenFenced,
                ..
            } => {
                // The primary is behind this standby's generation — it
                // is deposed and has nothing to offer. Drop and redial;
                // with `max_redial_failures` unset the operator decides
                // when to stop us.
                return subscribed;
            }
            _ => return subscribed,
        }
    }
}
