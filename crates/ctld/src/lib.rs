//! `lmpr-ctld`: a fault-tolerant routing-controller daemon for limited
//! multi-path routing on extended generalized fat-trees.
//!
//! The paper's LFTs are computed once and assumed static; a real fabric
//! manager must keep answering path queries while links fail and
//! recover around it. This crate is that control plane, built so that
//! **robustness is the headline property** at every layer:
//!
//! * **Epochs** ([`controller`]): every routing state the controller
//!   serves is a monotonically numbered epoch. An epoch is activated
//!   only after an `lmpr-verify` certificate (CDG acyclicity inherited
//!   from the full-scope genesis proof, coverage re-proven on the
//!   change batch's topology-derived blast radius) passes — see
//!   [`lmpr_verify::certify_epoch`] and
//!   [`lmpr_verify::change_blast_radius`].
//! * **Crash consistency** ([`store`]): each committed epoch is
//!   checkpointed with an atomic write-then-rename in a checksummed
//!   envelope. A SIGKILL at any instant restarts the daemon into the
//!   last committed epoch, and replaying the same fault feed reproduces
//!   the interrupted run's epochs and answers byte-identically.
//! * **Graceful degradation** ([`controller`]): a failed certificate
//!   flips the controller into a degraded mode that keeps serving the
//!   last-good epoch (typed `degraded` status in every reply) and
//!   retries reconvergence under capped exponential backoff on the
//!   logical clock.
//! * **Bounded queues, deadlines, fencing** ([`server`], [`wire`]):
//!   queries travel over a length-prefixed socket protocol, carry the
//!   client's epoch (cross-epoch batches are rejected with a typed
//!   `epoch-fenced` error so readers never mix two generations of
//!   LFTs) and an optional deadline; the server's work queue is
//!   bounded, with overflow rejected as a typed `overload` error
//!   instead of unbounded latency.
//!
//! * **Deterministic failure injection** ([`failpoint`]): every
//!   filesystem call the checkpoint store makes and every stream
//!   read/write of the wire layer runs behind an injectable seam whose
//!   fault decisions are a pure function of a seed, so any failure
//!   interleaving — short writes, ENOSPC, fsync-then-crash, torn
//!   renames, torn frames, mid-frame disconnects — replays from a
//!   one-line repro string.
//! * **A retrying client** ([`client`]): reconnect-on-error, capped
//!   exponential backoff on `overload`, refetch-and-retry on
//!   `epoch-fenced`, idempotent fault-batch resubmission keyed by
//!   `batch_id` (the controller's at-least-once dedup makes resends
//!   safe), ordered multi-endpoint failover, and generation-fence
//!   retry after a promotion.
//! * **Hot-standby replication** ([`replication`]): a standby daemon
//!   subscribes to the primary's committed epochs over the wire and
//!   persists them through its own checkpoint store; fencing is
//!   widened from `epoch` to `(generation, epoch)` so a promoted
//!   standby's generation bump durably rejects a deposed primary's
//!   writes and acks (split-brain prevention).
//!
//! The `ctld` binary runs the daemon, `ctlc` is the matching client,
//! `ctl_bench` drives a Poisson fault feed against a 1024-end-host
//! 3-level XGFT measuring queries/sec and reconvergence latency, and
//! `ctl_soak` is the seeded chaos harness that checks the recovery
//! invariants under an escalating failpoint schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod failpoint;
pub mod replication;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientConfig, ClientError, ClientStats, RetryPolicy};
pub use controller::{Controller, CtlConfig, CtlError, Mode, StatusInfo};
pub use failpoint::{
    crash_error, is_injected_crash, FailPlan, FailpointIo, FaultCounters, FaultyStream, OsStoreIo,
    PlanParseError, StorageFault, StoreFile, StoreIo, WireFault,
};
pub use replication::{ReplicaConfig, Standby, StandbyStats};
pub use server::{serve, ServerConfig};
pub use store::{Checkpoint, Store, StoreError};
pub use wire::{
    read_frame, write_frame, ChangeSpec, ErrorCode, Request, Response, WireError, MAX_FRAME,
};
