//! Controller benchmark: queries/sec and reconvergence latency under a
//! Poisson fault feed on a 1024-end-host 3-level XGFT.
//!
//! ```text
//! ctl_bench [--out BENCH_ctld.json] [--quick]
//! ```
//!
//! Starts a real daemon (socket and all) on `16port3tree` with
//! `disjoint(4)`, replays a Poisson link fail/repair schedule through
//! `tick`, and hammers epoch-fenced `paths` batches from client
//! threads while the controller reconverges around the churn. Fenced
//! rejections (a commit landing mid-batch) are counted, refetched and
//! retried — exactly the protocol a real reader follows. The JSON
//! document records genesis-certificate cost, committed epochs,
//! reconvergence latency and end-to-end query throughput.

#![forbid(unsafe_code)]

use lmpr_bench::{json_f64, json_string};
use lmpr_core::{Router, RouterKind};
use lmpr_ctld::{read_frame, write_frame, Controller, CtlConfig, Request, Response, ServerConfig};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::time::Instant;
use xgft::FaultSchedule;

const TOPO: &str = "16port3tree";
const KIND: RouterKind = RouterKind::Disjoint(4);
const FAIL_RATE: f64 = 2e-6;
const MEAN_REPAIR: f64 = 3_000.0;
const SEED: u64 = 7;

struct BenchArgs {
    out: String,
    quick: bool,
}

fn parse_args() -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        out: "BENCH_ctld.json".to_owned(),
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = it.next().ok_or("--out requires a value")?,
            "--quick" => args.quick = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn roundtrip(stream: &mut UnixStream, req: &Request) -> Result<Response, String> {
    write_frame(stream, req.to_json().as_bytes()).map_err(|e| e.to_string())?;
    let payload = read_frame(stream).map_err(|e| e.to_string())?;
    Response::decode(&payload).map_err(|e| e.to_string())
}

fn fetch_epoch(stream: &mut UnixStream) -> Result<u64, String> {
    match roundtrip(stream, &Request::Status)? {
        Response::Status { epoch, .. } => Ok(epoch),
        other => Err(format!("unexpected status reply: {other:?}")),
    }
}

/// One query worker: epoch-fenced batches of `batch` pairs walked
/// deterministically over the pair space, refetching the epoch on a
/// fence. Returns (answered pairs, fenced batches).
fn query_worker(
    socket: &str,
    pns: u32,
    stride: u32,
    batch: usize,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(u64, u64), String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| e.to_string())?;
    let mut epoch = fetch_epoch(&mut stream)?;
    let (mut answered, mut fenced) = (0u64, 0u64);
    let mut cursor = stride;
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        let mut pairs = Vec::with_capacity(batch);
        for _ in 0..batch {
            let s = cursor % pns;
            let d = (cursor.wrapping_mul(2654435761) >> 7) % pns;
            cursor = cursor.wrapping_add(stride | 1);
            if s != d {
                pairs.push((s, d));
            }
        }
        let n = pairs.len() as u64;
        match roundtrip(
            &mut stream,
            &Request::Paths {
                epoch,
                deadline_ms: Some(5_000),
                pairs,
            },
        )? {
            Response::Paths { .. } => answered += n,
            Response::Error { epoch: server, .. } => {
                fenced += 1;
                epoch = if server > 0 {
                    server
                } else {
                    fetch_epoch(&mut stream)?
                };
            }
            other => return Err(format!("unexpected paths reply: {other:?}")),
        }
    }
    Ok((answered, fenced))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let (horizon, tick_step, workers) = if args.quick {
        (20_000u64, 1_000u64, 2usize)
    } else {
        (100_000u64, 1_000u64, 4usize)
    };

    let scratch = std::env::temp_dir().join(format!("ctl-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
    let state_dir = scratch.join("state");
    let socket = scratch.join("ctld.sock");
    let socket_str = socket.to_str().ok_or("non-utf8 temp path")?.to_owned();

    let (_, topo) = lmpr_bench::topology_by_name(TOPO).ok_or("bench topology missing")?;
    let pns = topo.num_pns();
    let schedule = FaultSchedule::poisson(&topo, FAIL_RATE, MEAN_REPAIR, horizon, SEED);
    let fault_events = schedule.events().len();

    let mut cfg = CtlConfig::new(TOPO, KIND, &state_dir);
    cfg.schedule = schedule;

    let genesis_started = Instant::now();
    let (ctl, report) = Controller::start(cfg).map_err(|e| e.to_string())?;
    let genesis_ms = genesis_started.elapsed().as_millis() as u64;
    if !report.certified() {
        return Err("genesis certificate failed".to_owned());
    }

    let server_cfg = ServerConfig::new(&socket);
    let server = std::thread::spawn(move || serve_quiet(ctl, server_cfg));

    // Wait for the socket to come up.
    let mut probe = None;
    for _ in 0..200 {
        match UnixStream::connect(&socket) {
            Ok(s) => {
                probe = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut driver = probe.ok_or("server did not come up")?;

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..workers {
        let socket = socket_str.clone();
        let stop = std::sync::Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            query_worker(&socket, pns, 17 + w as u32 * 101, 64, &stop)
        }));
    }

    // Drive the fault timeline while the workers hammer queries.
    let measure_started = Instant::now();
    let mut t = 0;
    while t < horizon {
        t += tick_step;
        match roundtrip(&mut driver, &Request::Tick { to: t })? {
            Response::Tick { .. } => {}
            other => return Err(format!("unexpected tick reply: {other:?}")),
        }
    }
    // Let the workers hammer the settled fabric for a steady-state
    // window, so queries/sec is not dominated by the churn phase.
    std::thread::sleep(std::time::Duration::from_millis(if args.quick {
        200
    } else {
        1_000
    }));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (mut answered, mut fenced) = (0u64, 0u64);
    for h in handles {
        let (a, f) = h.join().map_err(|_| "worker panicked".to_owned())??;
        answered += a;
        fenced += f;
    }
    let seconds = measure_started.elapsed().as_secs_f64();

    let status = match roundtrip(&mut driver, &Request::Status)? {
        Response::Status {
            epoch,
            reconv_count,
            reconv_total_us,
            reconv_max_us,
            ..
        } => (epoch, reconv_count, reconv_total_us, reconv_max_us),
        other => return Err(format!("unexpected status reply: {other:?}")),
    };
    roundtrip(&mut driver, &Request::Shutdown)?;
    let _ = server.join();
    let _ = std::fs::remove_dir_all(&scratch);

    let (epoch, reconv_count, reconv_total_us, reconv_max_us) = status;
    let mean_us = if reconv_count > 0 {
        reconv_total_us as f64 / reconv_count as f64
    } else {
        0.0
    };
    let per_sec = if seconds > 0.0 {
        answered as f64 / seconds
    } else {
        0.0
    };

    let doc = format!(
        "{{\n  \"experiment\": \"ctl_bench\",\n  \"topology\": {},\n  \"scheme\": {},\n  \
         \"pns\": {pns},\n  \"quick\": {},\n  \"schedule\": {{\"kind\": \"poisson\", \
         \"fail_rate\": {}, \"mean_repair\": {}, \"horizon\": {horizon}, \"seed\": {SEED}, \
         \"events\": {fault_events}}},\n  \"genesis_cert_ms\": {genesis_ms},\n  \
         \"epochs_committed\": {epoch},\n  \"reconvergence\": {{\"count\": {reconv_count}, \
         \"mean_us\": {}, \"max_us\": {reconv_max_us}}},\n  \"queries\": {{\"answered\": \
         {answered}, \"fenced_batches\": {fenced}, \"seconds\": {}, \"per_sec\": {}}}\n}}\n",
        json_string(TOPO),
        json_string(&KIND.name()),
        args.quick,
        json_f64(FAIL_RATE),
        json_f64(MEAN_REPAIR),
        json_f64(mean_us),
        json_f64(seconds),
        json_f64(per_sec),
    );
    let mut f = std::fs::File::create(&args.out).map_err(|e| e.to_string())?;
    f.write_all(doc.as_bytes()).map_err(|e| e.to_string())?;
    eprintln!(
        "ctl_bench: {epoch} epochs, {reconv_count} reconvergences \
         (mean {mean_us:.0} us, max {reconv_max_us} us), {per_sec:.0} queries/sec -> {}",
        args.out
    );
    Ok(())
}

/// Run the server, discarding its result (the bench shuts it down).
fn serve_quiet(ctl: Controller, cfg: ServerConfig) {
    if let Err(e) = lmpr_ctld::serve(ctl, cfg) {
        eprintln!("ctl_bench server: {e}");
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ctl_bench: {e}");
        std::process::exit(1);
    }
}
