//! Command-line client for the routing-controller daemon.
//!
//! ```text
//! ctlc --socket /run/ctld.sock status
//! ctlc --endpoints /run/a.sock,/run/b.sock status
//! ctlc --socket S digest
//! ctlc --socket S tick 5000
//! ctlc --socket S fault 3 link-down:17 switch-down:2:1
//! ctlc --socket S paths [--epoch N] [--deadline-ms N] 0:63 12:3
//! ctlc --socket S chaos on|off
//! ctlc --socket S shutdown
//! ```
//!
//! Prints the server's JSON reply on stdout. Exit status: 0 for an
//! `ok` reply, 2 for a typed rejection, 1 for transport or usage
//! errors. `paths` without `--epoch` first fetches the current epoch
//! with a `status` round trip (the fenced-read idiom).
//!
//! All socket handling — framing, reconnect, overload backoff — lives
//! in [`lmpr_ctld::Client`]; this binary only parses arguments and
//! formats output.

#![forbid(unsafe_code)]

use lmpr_ctld::{ChangeSpec, Client, ClientConfig, Request, Response};

fn parse_change(spec: &str) -> Result<ChangeSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let u32of = |s: &str| {
        s.parse::<u32>()
            .map_err(|e| format!("bad id in {spec:?}: {e}"))
    };
    let u8of = |s: &str| {
        s.parse::<u8>()
            .map_err(|e| format!("bad level in {spec:?}: {e}"))
    };
    match parts.as_slice() {
        ["link-down", l] => Ok(ChangeSpec::LinkDown(u32of(l)?)),
        ["link-up", l] => Ok(ChangeSpec::LinkUp(u32of(l)?)),
        ["switch-down", lvl, r] => Ok(ChangeSpec::SwitchDown(u8of(lvl)?, u32of(r)?)),
        ["switch-up", lvl, r] => Ok(ChangeSpec::SwitchUp(u8of(lvl)?, u32of(r)?)),
        _ => Err(format!(
            "bad change {spec:?}; expected link-down:ID, link-up:ID, \
             switch-down:LEVEL:RANK or switch-up:LEVEL:RANK"
        )),
    }
}

fn parse_pair(spec: &str) -> Result<(u32, u32), String> {
    match spec.split_once(':') {
        Some((s, d)) => {
            let s = s.parse().map_err(|e| format!("bad pair {spec:?}: {e}"))?;
            let d = d.parse().map_err(|e| format!("bad pair {spec:?}: {e}"))?;
            Ok((s, d))
        }
        None => Err(format!("bad pair {spec:?}; expected SRC:DST")),
    }
}

fn run() -> Result<i32, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoints: Vec<std::path::PathBuf> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--socket" {
            let socket = argv
                .get(i + 1)
                .cloned()
                .ok_or("--socket requires a value")?;
            endpoints = vec![socket.into()];
            i += 2;
        } else if argv[i] == "--endpoints" {
            let spec = argv
                .get(i + 1)
                .cloned()
                .ok_or("--endpoints requires a value")?;
            endpoints = spec
                .split(',')
                .filter(|p| !p.is_empty())
                .map(std::path::PathBuf::from)
                .collect();
            if endpoints.is_empty() {
                return Err("--endpoints requires at least one path".to_owned());
            }
            i += 2;
        } else {
            rest.push(argv[i].clone());
            i += 1;
        }
    }
    if endpoints.is_empty() || rest.is_empty() {
        return Err("usage: ctlc (--socket PATH | --endpoints A,B,...) \
             <status|digest|tick|fault|paths|chaos|shutdown> ..."
            .to_owned());
    }
    let mut client = Client::with_config(ClientConfig::with_endpoints(endpoints));

    let cmd = rest[0].as_str();
    let tail = &rest[1..];
    let req = match cmd {
        "status" => Request::Status,
        "digest" => Request::Digest,
        "shutdown" => Request::Shutdown,
        "tick" => {
            let to = tail
                .first()
                .ok_or("tick requires a target time")?
                .parse()
                .map_err(|e| format!("bad tick target: {e}"))?;
            Request::Tick { to }
        }
        "chaos" => {
            let on = match tail.first().map(String::as_str) {
                Some("on") => true,
                Some("off") => false,
                _ => return Err("chaos requires on|off".to_owned()),
            };
            Request::Chaos { fail_certs: on }
        }
        "fault" => {
            let batch_id = tail
                .first()
                .ok_or("fault requires a batch id")?
                .parse()
                .map_err(|e| format!("bad batch id: {e}"))?;
            let mut changes = Vec::new();
            for spec in &tail[1..] {
                changes.push(parse_change(spec)?);
            }
            Request::Fault {
                batch_id,
                gen: None,
                changes,
            }
        }
        "paths" => {
            let mut epoch: Option<u64> = None;
            let mut deadline_ms = None;
            let mut pairs = Vec::new();
            let mut j = 0;
            while j < tail.len() {
                match tail[j].as_str() {
                    "--epoch" => {
                        epoch = Some(
                            tail.get(j + 1)
                                .ok_or("--epoch requires a value")?
                                .parse()
                                .map_err(|e| format!("bad epoch: {e}"))?,
                        );
                        j += 2;
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(
                            tail.get(j + 1)
                                .ok_or("--deadline-ms requires a value")?
                                .parse()
                                .map_err(|e| format!("bad deadline: {e}"))?,
                        );
                        j += 2;
                    }
                    spec => {
                        pairs.push(parse_pair(spec)?);
                        j += 1;
                    }
                }
            }
            let epoch = match epoch {
                Some(e) => e,
                // Fenced-read idiom: learn the current epoch first.
                None => client.current_epoch().map_err(|e| e.to_string())?,
            };
            Request::Paths {
                epoch,
                deadline_ms,
                pairs,
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    };

    let (text, resp) = client.request(&req).map_err(|e| e.to_string())?;
    println!("{text}");
    Ok(match resp {
        Response::Error { .. } => 2,
        _ => 0,
    })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("ctlc: {e}");
            std::process::exit(1);
        }
    }
}
