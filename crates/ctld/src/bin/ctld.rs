//! The routing-controller daemon.
//!
//! ```text
//! ctld --topo 8port2tree --kind disjoint:4 --state-dir /var/lib/ctld \
//!      --socket /run/ctld.sock [--schedule poisson:RATE:REPAIR:HORIZON:SEED]
//!      [--queue-cap N] [--reconverge-delay-ms N] [--full-certs]
//!      [--backoff-base TICKS] [--backoff-cap TICKS]
//!      [--standby-of /run/primary.sock [--promote-after N]]
//! ```
//!
//! Loads the topology, resumes from the newest valid checkpoint in the
//! state directory (or bootstraps and fully verifies epoch 0), then
//! serves the wire protocol on the socket until a `shutdown` request.
//!
//! With `--standby-of SOCKET` the daemon starts as a hot standby
//! instead: it subscribes to the primary at `SOCKET`, streams every
//! committed `(generation, epoch)` into its own state directory, and
//! keeps redialing while the primary is down. With `--promote-after N`
//! the standby gives up after `N` consecutive failed redials, promotes
//! itself (bumping the generation lease so the deposed primary's
//! writes are fenced off), and serves the promoted state on
//! `--socket`. Without `--promote-after` the standby replicates until
//! interrupted and never serves.

#![forbid(unsafe_code)]

use lmpr_core::{Router, RouterKind};
use lmpr_ctld::{serve, Controller, CtlConfig, ReplicaConfig, ServerConfig, Standby};
use xgft::FaultSchedule;

struct Args {
    topo: String,
    kind: RouterKind,
    state_dir: String,
    socket: String,
    schedule_spec: Option<String>,
    queue_cap: usize,
    reconverge_delay_ms: u64,
    full_certs: bool,
    backoff_base: u64,
    backoff_cap: u64,
    standby_of: Option<String>,
    promote_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        topo: String::new(),
        kind: RouterKind::DModK,
        state_dir: String::new(),
        socket: String::new(),
        schedule_spec: None,
        queue_cap: 64,
        reconverge_delay_ms: 0,
        full_certs: false,
        backoff_base: 100,
        backoff_cap: 10_000,
        standby_of: None,
        promote_after: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--topo" => args.topo = value("--topo")?,
            "--kind" => {
                let spec = value("--kind")?;
                args.kind =
                    RouterKind::parse(&spec).map_err(|e| format!("bad --kind {spec:?}: {e}"))?;
            }
            "--state-dir" => args.state_dir = value("--state-dir")?,
            "--socket" => args.socket = value("--socket")?,
            "--schedule" => args.schedule_spec = Some(value("--schedule")?),
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("bad --queue-cap: {e}"))?;
            }
            "--reconverge-delay-ms" => {
                args.reconverge_delay_ms = value("--reconverge-delay-ms")?
                    .parse()
                    .map_err(|e| format!("bad --reconverge-delay-ms: {e}"))?;
            }
            "--full-certs" => args.full_certs = true,
            "--backoff-base" => {
                args.backoff_base = value("--backoff-base")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-base: {e}"))?;
            }
            "--backoff-cap" => {
                args.backoff_cap = value("--backoff-cap")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-cap: {e}"))?;
            }
            "--standby-of" => args.standby_of = Some(value("--standby-of")?),
            "--promote-after" => {
                args.promote_after = Some(
                    value("--promote-after")?
                        .parse()
                        .map_err(|e| format!("bad --promote-after: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.topo.is_empty() || args.state_dir.is_empty() || args.socket.is_empty() {
        return Err("--topo, --state-dir and --socket are required".to_owned());
    }
    if args.promote_after.is_some() && args.standby_of.is_none() {
        return Err("--promote-after requires --standby-of".to_owned());
    }
    Ok(args)
}

/// Parse `poisson:RATE:REPAIR:HORIZON:SEED` against a topology.
fn parse_schedule(spec: &str, topo: &xgft::Topology) -> Result<FaultSchedule, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["poisson", rate, repair, horizon, seed] => {
            let rate: f64 = rate.parse().map_err(|e| format!("bad rate: {e}"))?;
            let repair: f64 = repair.parse().map_err(|e| format!("bad repair: {e}"))?;
            let horizon: u64 = horizon.parse().map_err(|e| format!("bad horizon: {e}"))?;
            let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err("rate must be in [0, 1]".to_owned());
            }
            if !(repair > 0.0 && repair.is_finite()) {
                return Err("repair must be positive and finite".to_owned());
            }
            Ok(FaultSchedule::poisson(topo, rate, repair, horizon, seed))
        }
        ["none"] => Ok(FaultSchedule::new()),
        _ => Err(format!(
            "bad schedule {spec:?}; expected poisson:RATE:REPAIR:HORIZON:SEED or none"
        )),
    }
}

/// Run as a hot standby: replicate the primary into the state
/// directory, and (with `--promote-after`) take over once the primary
/// stays unreachable for that many consecutive redials.
fn run_standby(args: &Args, primary: &str) -> Result<(), String> {
    let mut rep = ReplicaConfig::new(primary, &args.state_dir);
    rep.max_redial_failures = args.promote_after;
    let standby = Standby::spawn(rep).map_err(|e| format!("standby start failed: {e}"))?;
    eprintln!(
        "ctld: standby of {primary}, replicating into {}",
        args.state_dir
    );
    let stats = standby.wait();
    eprintln!(
        "ctld: standby feed ended at generation {} epoch {} \
         ({} connects, {} epochs applied)",
        stats.generation, stats.epoch, stats.connects, stats.epochs_applied
    );
    if args.promote_after.is_none() {
        return Ok(());
    }
    let cfg = CtlConfig::new(&args.topo, args.kind, &args.state_dir);
    let (mut ctl, _) = Controller::start(cfg).map_err(|e| e.to_string())?;
    let gen = ctl.promote().map_err(|e| e.to_string())?;
    eprintln!(
        "ctld: promoted to generation {gen} at epoch {}, serving on {}",
        ctl.epoch(),
        args.socket
    );
    let mut server_cfg = ServerConfig::new(&args.socket);
    server_cfg.queue_cap = args.queue_cap;
    serve(ctl, server_cfg).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(primary) = args.standby_of.clone() {
        return run_standby(&args, &primary);
    }
    let (_, topo) = lmpr_bench::topology_by_name(&args.topo)
        .ok_or_else(|| format!("unknown topology {:?}", args.topo))?;
    let schedule = match &args.schedule_spec {
        Some(spec) => parse_schedule(spec, &topo)?,
        None => FaultSchedule::new(),
    };
    let mut cfg = CtlConfig::new(&args.topo, args.kind, &args.state_dir);
    cfg.schedule = schedule;
    cfg.scoped_certs = !args.full_certs;
    cfg.reconverge_delay_ms = args.reconverge_delay_ms;
    cfg.backoff_base_ticks = args.backoff_base;
    cfg.backoff_cap_ticks = args.backoff_cap;

    let (ctl, report) = Controller::start(cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "ctld: serving {} / {} at epoch {} ({} certificate checks)",
        args.topo,
        args.kind.name(),
        ctl.epoch(),
        report.checks.len()
    );
    let mut server_cfg = ServerConfig::new(&args.socket);
    server_cfg.queue_cap = args.queue_cap;
    serve(ctl, server_cfg).map_err(|e| e.to_string())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ctld: {e}");
        std::process::exit(1);
    }
}
