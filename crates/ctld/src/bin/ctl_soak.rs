//! Seeded chaos soak for the routing-controller daemon.
//!
//! ```text
//! ctl_soak [--seed N] [--out CTL_SOAK.json] [--queries N]
//!          [--min-faults N] [--min-crashes N] [--max-batches N]
//!          [--min-promotions N]
//! ```
//!
//! Runs a real daemon (socket and all) on `8port2tree` with
//! `disjoint(4)`, its checkpoint store behind a [`FailpointIo`] and its
//! feeder connections behind client-side `FaultyStream`s, under the
//! escalating failpoint schedule of [`lmpr_bench::soak::escalation`].
//! A Poisson fault timeline supplies the batch contents; the feeder
//! submits one batch per epoch while query threads hammer `paths`.
//! Every injected crash or fatal storage fault fail-stops the daemon;
//! the harness then scans the state directory with an *unfaulted*
//! store, restarts the daemon, and records what recovery was entitled
//! to against what it produced.
//!
//! After the escalation, a **failover phase**: a hot standby
//! subscribes to the primary and replicates its committed epochs into
//! its own directory; each time the primary fail-stops under the
//! failover rates, the harness *promotes* the standby — generation
//! bump, in-process catch-up on the full submitted feed, stale-write
//! probe at the deposed generation — and spawns the next daemon
//! incarnation on the promoted state at the *other* socket. The feeder
//! (which holds both endpoints) must cross each failover with an
//! endpoint switch and a generation-fence retry, losing no acked batch.
//!
//! The transcript is judged by [`SoakLedger::report`] into a
//! verify-style certificate (`CTL-SOAK-EPOCH/SERVE/RECOVER/BATCH`
//! plus `CTL-SOAK-FAILOVER/GEN`), cross-checked against an offline
//! replay of the same batches on a fresh controller.
//!
//! Everything that reaches the JSON document is a pure function of
//! `--seed`: storage faults fire on deterministic per-incarnation op
//! counts, the feeder is the only writer and is strictly serial, and
//! the wall-clock-dependent query threads and the standby's follower
//! report only to stderr (their sound epoch checks feed a violation
//! counter that is zero on a correct daemon). Running twice with the
//! same seed must produce byte-identical output — CI asserts exactly
//! that.
//!
//! Exit status: 0 when the certificate is clean *and* the
//! fault/crash/promotion quotas were met; 1 on harness errors; 2 when
//! the run completed but the certificate has findings or the quotas
//! were missed.

#![forbid(unsafe_code)]

use lmpr_bench::soak::{
    escalation, BatchAck, PromotionRecord, RestartCause, RestartRecord, SoakLedger, SoakPhase,
};
use lmpr_bench::{json_string, topology_by_name};
use lmpr_core::{Router, RouterKind};
use lmpr_ctld::{
    serve, ChangeSpec, Checkpoint, Client, ClientConfig, Controller, CtlConfig, FailPlan,
    FailpointIo, FaultCounters, OsStoreIo, ReplicaConfig, Response, RetryPolicy, ServerConfig,
    Standby, Store, StoreError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xgft::FaultSchedule;

const TOPO: &str = "8port2tree";
const KIND: RouterKind = RouterKind::Disjoint(4);
/// Poisson feed shape: only the *contents* of the fault batches come
/// from this timeline; the daemon's own schedule stays empty (the feed
/// arrives over the socket).
const FAIL_RATE: f64 = 2e-5;
const MEAN_REPAIR: f64 = 2_000.0;
const HORIZON: u64 = 200_000;
const SCHEDULE_SEED: u64 = 11;
const RETAIN: usize = 8;

/// The failover rung: crash-heavy storage faults so the primary dies
/// fast, plus feeder wire chaos across the promotions.
const FAILOVER_PHASE: SoakPhase = SoakPhase {
    name: "failover",
    batches: 0,
    storage_permille: 260,
    wire_permille: 100,
    crash_permille: 700,
};
/// Bound on batches driven inside the failover phase before the
/// harness gives up on meeting the promotion quota.
const FAILOVER_BATCH_BUDGET: u64 = 80;
/// Batches the promoted lineage must survive after the last promotion
/// so the certificate always covers post-failover serving.
const SETTLE_BATCHES: u64 = 3;

struct Args {
    seed: u64,
    out: String,
    queries: usize,
    min_faults: u64,
    min_crashes: u64,
    max_batches: u64,
    min_promotions: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        out: "CTL_SOAK.json".to_owned(),
        queries: 2,
        min_faults: 100,
        min_crashes: 10,
        max_batches: 400,
        min_promotions: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |what: &str| it.next().ok_or(format!("{what} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--out" => args.out = val("--out")?,
            "--queries" => {
                args.queries = val("--queries")?
                    .parse()
                    .map_err(|e| format!("bad query count: {e}"))?;
            }
            "--min-faults" => {
                args.min_faults = val("--min-faults")?
                    .parse()
                    .map_err(|e| format!("bad fault quota: {e}"))?;
            }
            "--min-crashes" => {
                args.min_crashes = val("--min-crashes")?
                    .parse()
                    .map_err(|e| format!("bad crash quota: {e}"))?;
            }
            "--max-batches" => {
                args.max_batches = val("--max-batches")?
                    .parse()
                    .map_err(|e| format!("bad batch cap: {e}"))?;
            }
            "--min-promotions" => {
                args.min_promotions = val("--min-promotions")?
                    .parse()
                    .map_err(|e| format!("bad promotion quota: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Map a dead daemon's stringified exit error onto a restart cause;
/// `None` means the death was not one we injected — a real bug.
fn classify(err: &str) -> Option<RestartCause> {
    if err.contains("injected failpoint crash") {
        Some(RestartCause::InjectedCrash)
    } else if err.contains("injected") {
        Some(RestartCause::FatalFault)
    } else {
        None
    }
}

/// Whether a feeder-side failure means the daemon itself is going (or
/// has gone) down, as opposed to the feeder's own injected wire chaos.
fn daemon_down_signature(err: &str) -> bool {
    err.contains("shutting down")
        || err.contains("Connection refused")
        || err.contains("No such file")
}

/// One query worker: read-only `paths` batches with client-side wire
/// faults and a read timeout. Sound epoch checks only — a reply's epoch
/// must never regress below one this worker has already seen (commits
/// are serial, and this worker pipelines nothing) and must never exceed
/// the feeder's submitted watermark (commits only follow submissions).
/// Returns `(answered, errors)` for stderr accounting.
fn query_worker(
    endpoints: Vec<PathBuf>,
    plan: FailPlan,
    stop: Arc<AtomicBool>,
    batches_sent: Arc<AtomicU64>,
    violations: Arc<AtomicU64>,
) -> (u64, u64) {
    let mut client = Client::with_config(ClientConfig {
        endpoints,
        retry: RetryPolicy {
            base_ms: 5,
            cap_ms: 40,
            max_attempts: 3,
        },
        read_timeout_ms: Some(200),
        wire_faults: Some(plan),
    });
    let pairs = [(0u32, 9u32), (3, 17), (8, 30)];
    let (mut answered, mut errors) = (0u64, 0u64);
    let mut newest_seen = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match client.paths(&pairs, Some(2_000)) {
            Ok((epoch, _)) => {
                answered += 1;
                let sent = batches_sent.load(Ordering::SeqCst);
                if epoch < newest_seen || epoch > sent {
                    violations.fetch_add(1, Ordering::SeqCst);
                    eprintln!(
                        "ctl_soak: query epoch {epoch} outside committed set \
                         (seen {newest_seen}, sent {sent})"
                    );
                }
                newest_seen = newest_seen.max(epoch);
            }
            Err(_) => {
                // Daemon mid-restart or our own chaos; pace and retry.
                errors += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    (answered, errors)
}

/// The harness state: the daemon thread, the serial feeder, the
/// standby (in the failover phase), and the transcript.
struct Harness {
    args: Args,
    /// Scratch root; standby directories are created under it.
    root: PathBuf,
    /// The *current primary's* state directory (reassigned to the
    /// promoted standby's directory at each failover).
    state_dir: PathBuf,
    /// Both daemon sockets; the live primary listens on
    /// `sockets[primary_slot]` and each promotion flips the slot.
    sockets: [PathBuf; 2],
    primary_slot: usize,
    feed: Vec<ChangeSpec>,
    storage_counters: FaultCounters,
    /// Next daemon incarnation index (0 is the initial boot).
    incarnations: u64,
    daemon: Option<JoinHandle<Result<(), String>>>,
    feeder: Option<Client>,
    /// Feeder client generation; each gets an independent wire plan.
    feeder_gen: u64,
    /// Feeder reconnect/resubmit totals folded in at replacement.
    feeder_reconnects: u64,
    feeder_resubmissions: u64,
    batches_atomic: Arc<AtomicU64>,
    last_acked: u64,
    /// The hot standby, present only during the failover phase.
    standby: Option<Standby>,
    /// Standby replica generation; each gets its own directory and an
    /// independent wire plan.
    standby_gen: u64,
    /// The current standby's state directory.
    standby_dir: PathBuf,
    ledger: SoakLedger,
}

impl Harness {
    /// The live primary's socket.
    fn socket(&self) -> PathBuf {
        self.sockets[self.primary_slot].clone()
    }

    /// Both sockets, primary first — the ordered endpoint list every
    /// client runs with so a promotion costs it one failover dial.
    fn endpoints(&self) -> Vec<PathBuf> {
        vec![
            self.sockets[self.primary_slot].clone(),
            self.sockets[1 - self.primary_slot].clone(),
        ]
    }

    /// Spawn the next daemon incarnation under `phase`'s storage rates.
    fn spawn(&mut self, phase: &SoakPhase) {
        let plan = FailPlan::new(
            self.args.seed,
            phase.storage_permille,
            0,
            phase.crash_permille,
        )
        .derive(self.incarnations);
        self.incarnations += 1;
        let state_dir = self.state_dir.clone();
        let socket = self.socket();
        let counters = self.storage_counters.clone();
        self.daemon = Some(std::thread::spawn(move || {
            let cfg = CtlConfig::new(TOPO, KIND, &state_dir);
            let io = FailpointIo::new(OsStoreIo, plan, counters);
            let (ctl, report) =
                Controller::start_with_io(cfg, Box::new(io)).map_err(|e| e.to_string())?;
            if !report.certified() {
                return Err("genesis certificate failed".to_owned());
            }
            serve(ctl, ServerConfig::new(&socket)).map_err(|e| e.to_string())
        }));
    }

    /// Replace the feeder client: fold the old one's fault counters
    /// into the ledger, then dial a fresh generation under `phase`'s
    /// wire rate. A fresh client after every restart also guarantees no
    /// half-dead connection's kernel buffering can shift op counts.
    fn new_feeder(&mut self, phase: &SoakPhase) {
        self.retire_feeder();
        let plan = FailPlan {
            no_drop: true,
            ..FailPlan::new(self.args.seed, 0, phase.wire_permille, 0)
        }
        .derive(1_000_000 + self.feeder_gen);
        self.feeder_gen += 1;
        self.feeder = Some(Client::with_config(ClientConfig {
            endpoints: self.endpoints(),
            retry: RetryPolicy {
                base_ms: 2,
                cap_ms: 50,
                max_attempts: 4,
            },
            // No read timeout: the feeder's fault plan never drops or
            // desynchronizes its own frames (`no_drop`), so every
            // failure is an in-band error or a visible disconnect.
            read_timeout_ms: None,
            wire_faults: Some(plan),
        }));
    }

    /// Fold the current feeder's injected-fault and recovery counters
    /// into the transcript.
    fn retire_feeder(&mut self) {
        if let Some(old) = self.feeder.take() {
            self.ledger.feeder_wire_faults += old.fault_counters().injected_count();
            let stats = old.stats();
            self.feeder_reconnects += stats.reconnects;
            self.feeder_resubmissions += stats.resubmissions;
            self.ledger.feeder_failovers += stats.failovers;
            self.ledger.feeder_gen_retries += stats.gen_retries;
            self.ledger.feeder_final_lease = old.last_gen();
        }
    }

    /// A plain, unfaulted, short-timeout client for control actions
    /// whose traffic must not perturb the deterministic transcript.
    fn plain_client(&self) -> Client {
        Client::with_config(ClientConfig {
            endpoints: self.endpoints(),
            retry: RetryPolicy {
                base_ms: 5,
                cap_ms: 20,
                max_attempts: 2,
            },
            read_timeout_ms: Some(2_000),
            wire_faults: None,
        })
    }

    /// Poll until the daemon answers `status`; the serving epoch is the
    /// recovery result. The daemon dying here is unreachable by design
    /// (post-genesis startups only read), so it surfaces as a harness
    /// error rather than another restart.
    fn wait_up(&mut self) -> Result<u64, String> {
        for _ in 0..1_000 {
            if self.daemon.as_ref().is_some_and(JoinHandle::is_finished) {
                let err = self.join_daemon()?;
                return Err(format!("daemon died during startup: {err}"));
            }
            if let Ok(Response::Status { epoch, .. }) = self.plain_client().status() {
                return Ok(epoch);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err("daemon did not come up within 10s".to_owned())
    }

    /// Join the daemon thread, returning its exit error string (`"ok"`
    /// for a clean shutdown).
    fn join_daemon(&mut self) -> Result<String, String> {
        let handle = self.daemon.take().ok_or("no daemon to join")?;
        match handle.join() {
            Ok(Ok(())) => Ok("ok".to_owned()),
            Ok(Err(e)) => Ok(e),
            Err(_) => Err("daemon thread panicked".to_owned()),
        }
    }

    /// The newest checkpoint that validates right now, judged by a
    /// plain unfaulted store — what recovery is entitled to.
    fn scan_newest_valid(&self) -> Option<u64> {
        let mut store = Store::open(&self.state_dir, RETAIN).ok()?;
        store.load_latest().ok().map(|cp| cp.epoch)
    }

    /// Restart the (already dead and joined) daemon under `phase` and
    /// record the recovery against the pre-restart disk scan.
    fn restart_cycle(&mut self, phase: &SoakPhase, cause: RestartCause) -> Result<(), String> {
        let newest_valid = self.scan_newest_valid();
        self.spawn(phase);
        self.new_feeder(phase);
        let recovered = self.wait_up()?;
        let record = RestartRecord {
            incarnation: self.incarnations - 1,
            cause,
            last_acked_epoch: self.last_acked,
            newest_valid_on_disk: newest_valid,
            recovered_epoch: recovered,
        };
        eprintln!(
            "ctl_soak: restart #{} ({}) acked={} on-disk={:?} recovered={}",
            record.incarnation,
            cause.tag(),
            record.last_acked_epoch,
            newest_valid,
            recovered
        );
        self.ledger.restarts.push(record);
        Ok(())
    }

    /// Start a fresh standby replica of the current primary in its own
    /// directory, and wait until it has applied the primary's snapshot
    /// — a promotion before the first sync would (correctly, but
    /// noisily) trip the generation-chain rule.
    fn start_standby(&mut self) -> Result<(), String> {
        self.standby_gen += 1;
        self.standby_dir = self.root.join(format!("standby-{}", self.standby_gen));
        let plan = FailPlan {
            no_drop: true,
            ..FailPlan::new(self.args.seed, 0, FAILOVER_PHASE.wire_permille, 0)
        }
        .derive(2_000_000 + self.standby_gen);
        let standby = Standby::spawn(ReplicaConfig {
            primary_socket: self.socket(),
            state_dir: self.standby_dir.clone(),
            retain: RETAIN,
            redial_base_ms: 5,
            redial_cap_ms: 100,
            wire_faults: Some(plan),
            max_redial_failures: None,
        })
        .map_err(|e| format!("standby spawn failed: {e}"))?;
        for _ in 0..1_000 {
            if standby.stats().epochs_applied >= 1 {
                self.standby = Some(standby);
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = standby.stop();
        Err("standby did not sync within 10s".to_owned())
    }

    /// Stop the standby (if any) and report its counters to stderr —
    /// its progress is wall-clock-dependent and must stay out of the
    /// deterministic JSON.
    fn stop_standby(&mut self) {
        if let Some(s) = self.standby.take() {
            let st = s.stop();
            eprintln!(
                "ctl_soak: standby-{} stopped: connects={} resyncs={} applied={} \
                 stale={} at gen={} epoch={}",
                self.standby_gen,
                st.connects,
                st.resyncs,
                st.epochs_applied,
                st.stale_skipped,
                st.generation,
                st.epoch
            );
        }
    }

    /// The primary just fail-stopped mid-failover-phase: promote the
    /// standby and fail the fabric over to it.
    ///
    /// Promotion is deliberately an *offline, unfaulted* sequence —
    /// exactly what a failover controller script would run — so that
    /// everything the certificate judges is deterministic:
    ///
    /// 1. stop the standby's follower;
    /// 2. start a controller on its directory, bump the generation
    ///    lease (durable before anything is served);
    /// 3. catch up in-process on the full submitted feed — replication
    ///    is asynchronous, so the standby may be an epoch or two
    ///    behind; re-ingesting from its committed cursor through
    ///    `batches_sent` closes the gap idempotently (`epoch ==
    ///    batch_id` holds throughout, so the caught-up epoch *is* the
    ///    batch watermark);
    /// 4. probe the store with a checkpoint at the *deposed*
    ///    generation and record that the fence rejects it;
    /// 5. flip the primary slot and spawn the next (faulted) daemon
    ///    incarnation on the promoted directory at the other socket;
    /// 6. start a fresh standby for the new primary.
    fn promote_cycle(&mut self, phase: &SoakPhase) -> Result<(), String> {
        self.stop_standby();
        let index = self.ledger.promotions.len() as u64 + 1;
        let (mut ctl, _) = Controller::start(CtlConfig::new(TOPO, KIND, &self.standby_dir))
            .map_err(|e| format!("promotion {index}: controller start failed: {e}"))?;
        let gen_before = ctl.generation();
        let gen_after = ctl
            .promote()
            .map_err(|e| format!("promotion {index}: generation bump failed: {e}"))?;
        let caught_up_from = ctl.status().committed_batch_id;
        for batch in caught_up_from + 1..=self.ledger.batches_sent {
            let changes =
                vec![self.feed[usize::try_from(batch - 1).unwrap_or(0) % self.feed.len()]];
            ctl.ingest(batch, &changes)
                .map_err(|e| format!("promotion {index}: catch-up of batch {batch}: {e}"))?;
        }
        let promoted_epoch = ctl.epoch();
        drop(ctl);
        // The split-brain probe: a write at the deposed generation must
        // be refused by the durable fence, not just by server logic.
        let probe = Checkpoint {
            generation: gen_before,
            epoch: promoted_epoch + 1,
            now: 0,
            drained_through: 0,
            committed_batch_id: 0,
            failed_links: Vec::new(),
            failed_switches: Vec::new(),
        };
        let stale_write_rejected = match Store::open(&self.standby_dir, RETAIN) {
            Ok(mut store) => matches!(
                store.commit(&probe),
                Err(StoreError::StaleGeneration { .. })
            ),
            Err(_) => false,
        };
        // Fail the fabric over: the promoted directory becomes the
        // primary state, served from the other socket. The feeder is
        // NOT replaced — crossing the failover with one client is the
        // point.
        self.primary_slot = 1 - self.primary_slot;
        self.state_dir = self.standby_dir.clone();
        self.spawn(phase);
        let recovered_epoch = self.wait_up()?;
        self.start_standby()?;
        let record = PromotionRecord {
            index,
            gen_before,
            gen_after,
            last_acked_epoch: self.last_acked,
            promoted_epoch,
            resubmitted_through: self.ledger.batches_sent,
            recovered_epoch,
            stale_write_rejected,
            feeder_lease: self.feeder.as_ref().map_or(0, Client::last_gen),
        };
        eprintln!(
            "ctl_soak: promotion #{index} gen {gen_before}->{gen_after} acked={} \
             promoted={promoted_epoch} recovered={recovered_epoch} fence={}",
            record.last_acked_epoch,
            if stale_write_rejected {
                "held"
            } else {
                "BROKEN"
            }
        );
        self.ledger.promotions.push(record);
        Ok(())
    }

    /// Submit the next fault batch, riding out feeder chaos and driving
    /// the crash/restart cycle whenever the daemon fail-stops under it.
    fn drive_batch(&mut self, phase: &SoakPhase) -> Result<(), String> {
        let batch_id = self.ledger.batches_sent + 1;
        let changes = vec![self.feed[usize::try_from(batch_id - 1).unwrap_or(0) % self.feed.len()]];
        self.ledger.batches_sent = batch_id;
        self.batches_atomic.store(batch_id, Ordering::SeqCst);
        let mut stuck = 0u32;
        loop {
            let feeder = self.feeder.as_mut().ok_or("no feeder client")?;
            match feeder.submit_fault(batch_id, &changes) {
                Ok(applied) => {
                    let epoch = feeder.last_epoch();
                    self.last_acked = self.last_acked.max(epoch);
                    self.ledger.acks.push(BatchAck {
                        batch_id,
                        epoch,
                        applied,
                    });
                    return Ok(());
                }
                Err(e) => {
                    let msg = e.to_string();
                    let dead = self.daemon.as_ref().is_some_and(JoinHandle::is_finished);
                    if dead || daemon_down_signature(&msg) {
                        // join blocks through the server's bounded
                        // teardown when the death signature raced ahead
                        // of thread exit.
                        let err = self.join_daemon()?;
                        let cause = classify(&err)
                            .ok_or_else(|| format!("daemon died unexpectedly: {err}"))?;
                        if self.standby.is_some() {
                            // Failover phase: the standby takes over
                            // instead of restarting in place.
                            self.promote_cycle(phase)?;
                        } else {
                            self.restart_cycle(phase, cause)?;
                        }
                    } else {
                        // The feeder's own wire chaos outlasted one
                        // retry budget; the daemon is fine. Try again —
                        // the daemon's dedup absorbs any duplicate.
                        stuck += 1;
                        if stuck > 50 {
                            return Err(format!("feeder stuck on batch {batch_id}: {msg}"));
                        }
                    }
                }
            }
        }
    }

    /// Graceful shutdown + respawn at a phase boundary (rates are baked
    /// into the daemon's failpoint plan at spawn).
    fn phase_restart(&mut self, next: &SoakPhase) -> Result<(), String> {
        self.plain_client()
            .shutdown()
            .map_err(|e| format!("graceful shutdown failed: {e}"))?;
        let err = self.join_daemon()?;
        if err != "ok" {
            return Err(format!("daemon failed during graceful shutdown: {err}"));
        }
        self.restart_cycle(next, RestartCause::PhaseChange)
    }

    /// Deterministic injected-fault total so far (storage + feeder
    /// wire; the live feeder's counters are added on top of the folded
    /// ones).
    fn faults_so_far(&self) -> u64 {
        self.storage_counters.injected_count()
            + self.storage_counters.crash_count()
            + self.ledger.feeder_wire_faults
            + self
                .feeder
                .as_ref()
                .map_or(0, |f| f.fault_counters().injected_count())
    }
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let scratch = std::env::temp_dir().join(format!("ctl-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;

    let (label, topo) = topology_by_name(TOPO).ok_or("soak topology missing")?;
    let schedule = FaultSchedule::poisson(&topo, FAIL_RATE, MEAN_REPAIR, HORIZON, SCHEDULE_SEED);
    let feed: Vec<ChangeSpec> = schedule
        .events()
        .iter()
        .map(|e| ChangeSpec::from_change(e.change))
        .collect();
    if feed.is_empty() {
        return Err("empty fault timeline".to_owned());
    }

    let mut h = Harness {
        args,
        root: scratch.clone(),
        state_dir: scratch.join("state"),
        sockets: [scratch.join("ctld-a.sock"), scratch.join("ctld-b.sock")],
        primary_slot: 0,
        feed,
        storage_counters: FaultCounters::new(),
        incarnations: 0,
        daemon: None,
        feeder: None,
        feeder_gen: 0,
        feeder_reconnects: 0,
        feeder_resubmissions: 0,
        batches_atomic: Arc::new(AtomicU64::new(0)),
        last_acked: 0,
        standby: None,
        standby_gen: 0,
        standby_dir: scratch.join("standby-0"),
        ledger: SoakLedger::new(),
    };

    let phases = escalation();
    h.spawn(&phases[0]);
    h.new_feeder(&phases[0]);
    let genesis_epoch = h.wait_up()?;
    if genesis_epoch != 0 {
        return Err(format!(
            "fresh daemon serving epoch {genesis_epoch}, want 0"
        ));
    }

    // Read-only query pressure, reporting to stderr only. Workers get
    // both endpoints up front so they ride the failover phase too.
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for i in 0..h.args.queries {
        let endpoints = h.endpoints();
        let plan = FailPlan::new(h.args.seed, 0, 100, 0).derive(10_000 + i as u64);
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&h.batches_atomic);
        let violations = Arc::clone(&violations);
        workers.push(std::thread::spawn(move || {
            query_worker(endpoints, plan, stop, sent, violations)
        }));
    }

    // Walk the escalation, then cycle its last rung until the fault and
    // crash quotas are met (or the batch cap bounds the run).
    let mut phase_ix = 0usize;
    let capped = loop {
        let phase = &phases[phase_ix];
        let mut capped = false;
        for _ in 0..phase.batches {
            if h.ledger.batches_sent >= h.args.max_batches {
                capped = true;
                break;
            }
            h.drive_batch(phase)?;
        }
        let quotas_met = h.faults_so_far() >= h.args.min_faults
            && h.ledger.induced_restarts() >= h.args.min_crashes;
        let last = phases.len() - 1;
        if capped || (quotas_met && phase_ix == last) {
            break capped;
        }
        let next_ix = (phase_ix + 1).min(last);
        eprintln!(
            "ctl_soak: phase {} done: {} batches, {} faults, {} induced restarts",
            phase.name,
            h.ledger.batches_sent,
            h.faults_so_far(),
            h.ledger.induced_restarts()
        );
        let next = phases[next_ix];
        h.phase_restart(&next)?;
        phase_ix = next_ix;
    };

    // Failover phase: replicate to a hot standby and keep feeding until
    // enough primaries have died and been failed over — then a few more
    // batches so the certificate always covers post-failover serving.
    let mut failover_budget_exhausted = false;
    if !capped && h.args.min_promotions > 0 {
        eprintln!(
            "ctl_soak: entering failover phase after {} batches",
            h.ledger.batches_sent
        );
        h.phase_restart(&FAILOVER_PHASE)?;
        h.start_standby()?;
        let budget = h.ledger.batches_sent + FAILOVER_BATCH_BUDGET;
        loop {
            let promotions = h.ledger.promotions.len() as u64;
            let settled = h.ledger.batches_sent
                - h.ledger
                    .promotions
                    .last()
                    .map_or(h.ledger.batches_sent, |p| p.resubmitted_through);
            if promotions >= h.args.min_promotions && settled >= SETTLE_BATCHES {
                break;
            }
            if h.ledger.batches_sent >= budget {
                failover_budget_exhausted = true;
                eprintln!(
                    "ctl_soak: failover batch budget exhausted at {} promotions",
                    promotions
                );
                break;
            }
            h.drive_batch(&FAILOVER_PHASE)?;
        }
        h.stop_standby();
    }

    // Final accounting through a plain client, then orderly shutdown.
    let mut fin = h.plain_client();
    let (final_epoch, final_committed, final_gen) = match fin.status().map_err(|e| e.to_string())? {
        Response::Status {
            epoch,
            committed_batch_id,
            gen,
            ..
        } => (epoch, committed_batch_id, gen),
        other => return Err(format!("unexpected final status: {other:?}")),
    };
    let (_, final_digest) = fin.digest().map_err(|e| e.to_string())?;
    fin.shutdown().map_err(|e| e.to_string())?;
    let exit = h.join_daemon()?;
    if exit != "ok" {
        return Err(format!("daemon failed during final shutdown: {exit}"));
    }
    stop.store(true, Ordering::SeqCst);
    let (mut answered, mut query_errors) = (0u64, 0u64);
    for w in workers {
        let (a, e) = w.join().map_err(|_| "query worker panicked")?;
        answered += a;
        query_errors += e;
    }
    h.retire_feeder();

    // Offline replay: the same batches on a fresh controller, no
    // daemon, no faults. Epoch and digest must agree exactly.
    let mirror_dir = scratch.join("mirror");
    let (mut mirror, _) =
        Controller::start(CtlConfig::new(TOPO, KIND, &mirror_dir)).map_err(|e| e.to_string())?;
    for batch in 1..=h.ledger.batches_sent {
        let changes = vec![h.feed[usize::try_from(batch - 1).unwrap_or(0) % h.feed.len()]];
        mirror
            .ingest(batch, &changes)
            .map_err(|e| format!("mirror replay of batch {batch}: {e}"))?;
    }

    h.ledger.storage_faults = h.storage_counters.injected_count();
    h.ledger.storage_crashes = h.storage_counters.crash_count();
    h.ledger.query_epoch_violations = violations.load(Ordering::SeqCst);
    h.ledger.final_epoch = final_epoch;
    h.ledger.final_committed_batch_id = final_committed;
    h.ledger.final_digest = final_digest;
    h.ledger.mirror_epoch = mirror.epoch();
    h.ledger.mirror_digest = format!("{:016x}", mirror.digest());

    let report = h.ledger.report(&label, &KIND.name());
    let quotas_met = h.ledger.total_faults() >= h.args.min_faults
        && h.ledger.induced_restarts() >= h.args.min_crashes
        && h.ledger.promotions.len() as u64 >= h.args.min_promotions
        && !failover_budget_exhausted;
    let plan_repr = FailPlan::new(h.args.seed, 0, 0, 0).to_string();
    let doc = format!(
        "{{\n  \"experiment\": \"ctl_soak\",\n  \"seed\": {},\n  \"plan\": {},\n  \
         \"batches\": {},\n  \"faults\": {{\"storage\": {}, \"storage_crashes\": {}, \
         \"feeder_wire\": {}, \"total\": {}}},\n  \"restarts\": {{\"total\": {}, \
         \"induced\": {}}},\n  \"failover\": {{\"promotions\": {}, \"final_gen\": {}, \
         \"feeder_failovers\": {}, \"feeder_gen_retries\": {}}},\n  \
         \"quotas_met\": {quotas_met},\n  \"capped\": {capped},\n  \
         \"certificate\": {}\n}}\n",
        h.args.seed,
        json_string(&plan_repr),
        h.ledger.batches_sent,
        h.ledger.storage_faults,
        h.ledger.storage_crashes,
        h.ledger.feeder_wire_faults,
        h.ledger.total_faults(),
        h.ledger.restarts.len(),
        h.ledger.induced_restarts(),
        h.ledger.promotions.len(),
        final_gen,
        h.ledger.feeder_failovers,
        h.ledger.feeder_gen_retries,
        report.to_json(),
    );
    std::fs::write(&h.args.out, &doc).map_err(|e| e.to_string())?;
    print!("{doc}");
    eprintln!(
        "ctl_soak: {} batches, {} faults ({} crashes), {} restarts ({} induced), \
         {} promotions (final gen {}), feeder reconnects {} resubmissions {} \
         failovers {} gen-retries {}, queries answered {answered} \
         errors {query_errors} -> {}",
        h.ledger.batches_sent,
        h.ledger.total_faults(),
        h.ledger.storage_crashes,
        h.ledger.restarts.len(),
        h.ledger.induced_restarts(),
        h.ledger.promotions.len(),
        final_gen,
        h.feeder_reconnects,
        h.feeder_resubmissions,
        h.ledger.feeder_failovers,
        h.ledger.feeder_gen_retries,
        h.args.out,
    );
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(if report.certified() && quotas_met {
        0
    } else {
        2
    })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("ctl_soak: {e}");
            std::process::exit(1);
        }
    }
}
