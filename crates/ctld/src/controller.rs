//! The epoch-fenced reconvergence state machine.
//!
//! A [`Controller`] owns one routing state at a time — the **committed
//! epoch** — and moves between exactly two modes:
//!
//! ```text
//!            certificate passes: epoch += 1, checkpoint
//!   Serving ──────────────────────────────────────────▶ Serving
//!      │                                                   ▲
//!      │ certificate fails                                 │ retry passes
//!      ▼                                                   │
//!   Degraded { attempts, next_retry_at } ──────────────────┘
//!      │   ▲
//!      └───┘ retry fails: attempts += 1, backoff doubles (capped)
//! ```
//!
//! Fault changes (live feed batches or replayed schedule events) are
//! staged in `pending`; a reconvergence derives the certification scope
//! from the topology ([`lmpr_verify::change_blast_radius`] — every pair
//! whose canonical path space touches a changed element), applies the
//! changes to the selection engine, and asks `lmpr-verify` for the
//! epoch certificate *before* activation. The scope never comes from
//! cache contents: flushed cache keys under-approximate the blast
//! radius whenever an affected pair was not cached (cold start,
//! post-rollback rebuild, never queried), and an under-scoped audit
//! certifies trivially. Only a certified state is committed: the epoch
//! number advances, the root state is checkpointed atomically, and the
//! changes leave `pending`. A failed certificate rolls the engine back
//! to the committed view and keeps serving it — degraded, but correct;
//! retries recompute the scope from the same staged changes, so a
//! failed attempt is re-audited at full strength, never rubber-stamped.
//!
//! All timing is a **logical clock** (`now`, advanced by `tick`), so
//! the whole machine — epochs, backoff, schedule replay — is a pure
//! function of the fault feed. That purity is what the kill-and-resume
//! byte-identity test exploits: crash anywhere, restart from the last
//! checkpoint, replay the same ticks, and every subsequent answer is
//! identical to the uninterrupted run's.

use crate::failpoint::StoreIo;
use crate::store::{Checkpoint, Store, StoreError};
use crate::wire::ChangeSpec;
use lmpr_core::{Router, RouterKind, SelectionEngine};
use lmpr_verify::{certify_epoch, change_blast_radius, EpochScope, Report, RuleId, Severity};
use std::fmt;
use std::path::PathBuf;
use xgft::{FaultChange, FaultSchedule, FaultSet, PnId, Topology};

/// Monotonic microsecond clock injected by the hosting front end. The
/// controller's own logic runs entirely on the feed's logical ticks;
/// wall time exists only to report reconvergence latency stats, and
/// only the server front end (the approved wall-clock module) may
/// supply it.
pub type MicrosClock = Box<dyn FnMut() -> u64 + Send>;

/// Configuration of one controller instance.
#[derive(Debug, Clone)]
pub struct CtlConfig {
    /// Topology name resolved via [`lmpr_bench::topology_by_name`].
    pub topo_name: String,
    /// Routing scheme.
    pub kind: RouterKind,
    /// Checkpoint directory.
    pub state_dir: PathBuf,
    /// Replayed fault timeline (empty when the feed is socket-only).
    pub schedule: FaultSchedule,
    /// First degraded-mode retry delay, in logical ticks.
    pub backoff_base_ticks: u64,
    /// Upper bound on the retry delay, in logical ticks.
    pub backoff_cap_ticks: u64,
    /// Checkpoints retained on disk.
    pub retain_checkpoints: usize,
    /// Certify each epoch on the change batch's topology-derived blast
    /// radius (true, the default) or re-run the full analysis every
    /// time. An empty blast radius always falls back to the full
    /// analysis — nothing certifies on zero evidence.
    pub scoped_certs: bool,
    /// Test hook: sleep this long inside each reconvergence, so a
    /// SIGKILL can land mid-reconvergence deterministically.
    pub reconverge_delay_ms: u64,
}

impl CtlConfig {
    /// Defaults for a topology/scheme pair: scoped certificates,
    /// 100-tick → 10 000-tick backoff, 8 retained checkpoints.
    pub fn new(
        topo_name: impl Into<String>,
        kind: RouterKind,
        state_dir: impl Into<PathBuf>,
    ) -> Self {
        CtlConfig {
            topo_name: topo_name.into(),
            kind,
            state_dir: state_dir.into(),
            schedule: FaultSchedule::new(),
            backoff_base_ticks: 100,
            backoff_cap_ticks: 10_000,
            retain_checkpoints: 8,
            scoped_certs: true,
            reconverge_delay_ms: 0,
        }
    }
}

/// The controller's serving mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The committed epoch is certified and current.
    Serving,
    /// The last reconvergence's certificate failed; the last-good epoch
    /// is still served while retries back off.
    Degraded {
        /// Failed certification attempts so far.
        attempts: u32,
        /// Logical tick at or after which the next retry runs.
        next_retry_at: u64,
    },
}

impl Mode {
    /// Stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Mode::Serving => "serving",
            Mode::Degraded { .. } => "degraded",
        }
    }
}

/// Errors the controller can surface to its caller.
#[derive(Debug)]
pub enum CtlError {
    /// The configured topology name is unknown.
    UnknownTopology(String),
    /// Checkpoint store failure.
    Store(StoreError),
    /// The genesis (epoch 0) state failed full verification — there is
    /// no last-good epoch to degrade to, so startup is refused.
    GenesisCertificate(String),
    /// A query batch carried a stale or future epoch.
    EpochFenced {
        /// The epoch the client sent.
        client: u64,
        /// The server's current epoch.
        server: u64,
    },
    /// A fault batch skipped ahead of the feed cursor.
    FeedGap {
        /// The id the batch carried.
        got: u64,
        /// The id the controller expected next.
        expected: u64,
    },
    /// A queried processing-node id is out of range.
    BadPair(u32, u32),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::UnknownTopology(name) => write!(f, "unknown topology {name:?}"),
            CtlError::Store(e) => write!(f, "{e}"),
            CtlError::GenesisCertificate(m) => {
                write!(f, "genesis state failed verification: {m}")
            }
            CtlError::EpochFenced { client, server } => write!(
                f,
                "epoch fence: client batch at epoch {client}, server at epoch {server}"
            ),
            CtlError::FeedGap { got, expected } => {
                write!(f, "fault feed gap: got batch {got}, expected {expected}")
            }
            CtlError::BadPair(s, d) => write!(f, "pair ({s}, {d}) is out of range"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<StoreError> for CtlError {
    fn from(e: StoreError) -> Self {
        CtlError::Store(e)
    }
}

/// Snapshot of the controller's observable state for `status` replies.
#[derive(Debug, Clone)]
pub struct StatusInfo {
    /// Current committed epoch.
    pub epoch: u64,
    /// Generation lease (1 at genesis, +1 per standby promotion).
    pub generation: u64,
    /// Serving mode.
    pub mode: Mode,
    /// Logical clock.
    pub now: u64,
    /// Staged, uncommitted fault changes.
    pub pending: u64,
    /// Highest committed feed batch id.
    pub committed_batch_id: u64,
    /// Committed reconvergences since this process started.
    pub reconv_count: u64,
    /// Their total wall-clock latency, microseconds.
    pub reconv_total_us: u64,
    /// The single worst latency, microseconds.
    pub reconv_max_us: u64,
}

/// The routing-controller state machine. See the module docs for the
/// epoch/degraded lifecycle.
pub struct Controller {
    cfg: CtlConfig,
    topo: Topology,
    label: String,
    engine: SelectionEngine<RouterKind>,
    /// The committed fault view — what `engine` is rolled back to when
    /// a certificate fails.
    committed_view: FaultSet,
    epoch: u64,
    /// Generation lease: 1 at genesis, resumed from the checkpoint on
    /// restart, bumped by [`Controller::promote`]. Persisted with every
    /// checkpoint so the store can fence a deposed primary's writes.
    generation: u64,
    now: u64,
    /// Schedule events at or before this tick are committed state.
    drained_through: u64,
    /// In-memory high-water mark of drained schedule events (resets to
    /// `drained_through` on restart, which is exactly what makes a
    /// crashed drain re-run).
    drained_inflight: u64,
    committed_batch_id: u64,
    /// In-memory high-water mark of ingested feed batches.
    highest_ingested: u64,
    pending: Vec<FaultChange>,
    mode: Mode,
    chaos_fail_certs: bool,
    store: Store,
    reconv_count: u64,
    reconv_total_us: u64,
    reconv_max_us: u64,
    /// Ordered pairs audited by the most recent certificate attempt.
    last_cert_pairs: u64,
    /// The most recent durable commit (checkpoint plus the fault batch
    /// that produced it) — what the server streams to subscribers.
    /// Always `Some` after start; the snapshot frame's batch is empty.
    last_commit: Option<(Checkpoint, Vec<ChangeSpec>)>,
    /// Latency clock injected via [`Controller::set_micros_clock`];
    /// without one the reconvergence latency stats stay zero.
    clock: Option<MicrosClock>,
}

impl Controller {
    /// Start a controller: resume from the newest valid checkpoint in
    /// `state_dir`, or bootstrap epoch 0 by fully verifying the
    /// fault-free state and committing the genesis checkpoint.
    pub fn start(cfg: CtlConfig) -> Result<(Self, Report), CtlError> {
        let store = Store::open(&cfg.state_dir, cfg.retain_checkpoints)?;
        Self::start_with_store(cfg, store)
    }

    /// Start a controller whose checkpoint store runs through an
    /// injected I/O seam — the failpoint layer, or a test double. The
    /// lifecycle is identical to [`Controller::start`].
    pub fn start_with_io(cfg: CtlConfig, io: Box<dyn StoreIo>) -> Result<(Self, Report), CtlError> {
        let store = Store::open_with_io(&cfg.state_dir, cfg.retain_checkpoints, io)?;
        Self::start_with_store(cfg, store)
    }

    fn start_with_store(cfg: CtlConfig, mut store: Store) -> Result<(Self, Report), CtlError> {
        let (label, topo) = lmpr_bench::topology_by_name(&cfg.topo_name)
            .ok_or_else(|| CtlError::UnknownTopology(cfg.topo_name.clone()))?;
        match store.load_latest() {
            Ok(cp) => {
                let view = cp.view(&topo);
                let engine = SelectionEngine::cached(cfg.kind, view.clone());
                let ctl = Controller {
                    topo,
                    label,
                    engine,
                    committed_view: view,
                    epoch: cp.epoch,
                    generation: cp.generation,
                    now: cp.now,
                    drained_through: cp.drained_through,
                    drained_inflight: cp.drained_through,
                    committed_batch_id: cp.committed_batch_id,
                    highest_ingested: cp.committed_batch_id,
                    pending: Vec::new(),
                    mode: Mode::Serving,
                    chaos_fail_certs: false,
                    store,
                    reconv_count: 0,
                    reconv_total_us: 0,
                    reconv_max_us: 0,
                    last_cert_pairs: 0,
                    last_commit: Some((cp, Vec::new())),
                    clock: None,
                    cfg,
                };
                // The resumed epoch was certified when it was committed;
                // the empty report records the clean resume.
                let report = Report::new(&ctl.label, ctl.cfg.kind.name());
                Ok((ctl, report))
            }
            Err(StoreError::NoCheckpoint) => {
                // Genesis: epoch 0 is the fault-free state, certified at
                // full scope (CDG + coverage over every pair). Later
                // scoped certificates inherit this CDG proof.
                let faults = FaultSet::new();
                let report = certify_epoch(&topo, &label, cfg.kind, &faults, EpochScope::Full);
                if !report.certified() {
                    let first = report
                        .findings
                        .iter()
                        .find(|d| d.severity == Severity::Error)
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "unknown finding".to_owned());
                    return Err(CtlError::GenesisCertificate(first));
                }
                let engine = SelectionEngine::cached(cfg.kind, faults.clone());
                let mut ctl = Controller {
                    topo,
                    label,
                    engine,
                    committed_view: faults,
                    epoch: 0,
                    generation: 1,
                    now: 0,
                    drained_through: 0,
                    drained_inflight: 0,
                    committed_batch_id: 0,
                    highest_ingested: 0,
                    pending: Vec::new(),
                    mode: Mode::Serving,
                    chaos_fail_certs: false,
                    store,
                    reconv_count: 0,
                    reconv_total_us: 0,
                    reconv_max_us: 0,
                    last_cert_pairs: 0,
                    last_commit: None,
                    clock: None,
                    cfg,
                };
                ctl.checkpoint(Vec::new())?;
                Ok((ctl, report))
            }
            Err(e) => Err(CtlError::Store(e)),
        }
    }

    /// The topology being routed.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Install the monotonic microsecond clock behind the reconvergence
    /// latency stats. The server front end calls this once before the
    /// controller loop; a controller without a clock is fully
    /// functional and simply reports zero latencies, which keeps every
    /// other embedding (tests, replay) a pure function of the feed.
    pub fn set_micros_clock(&mut self, clock: MicrosClock) {
        self.clock = Some(clock);
    }

    /// Current committed epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current generation lease.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Take over as primary: bump the generation lease and persist it
    /// immediately (same epoch, new generation), so the claim is
    /// durable before any client is answered under it. From this commit
    /// on, the store fences the deposed generation's writes and every
    /// ack carries the new lease. Returns the new generation.
    pub fn promote(&mut self) -> Result<u64, CtlError> {
        self.generation += 1;
        self.checkpoint(Vec::new())?;
        Ok(self.generation)
    }

    /// The most recent durable commit: the checkpoint plus the fault
    /// batch whose certification produced it (empty right after start
    /// or promotion). This is the frame the server replicates to
    /// standby subscribers.
    pub fn last_commit(&self) -> (Checkpoint, Vec<ChangeSpec>) {
        self.last_commit.clone().unwrap_or_else(|| {
            (
                Checkpoint::from_view(0, 0, 0, 0, 0, &FaultSet::new()),
                Vec::new(),
            )
        })
    }

    /// Current serving mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Logical clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Ordered pairs audited by the most recent epoch-certificate
    /// attempt: the topology-derived blast radius for a scoped
    /// certificate, the full `n·(n−1)` pair matrix otherwise. Zero only
    /// before the first reconvergence attempt — a committed epoch is
    /// never backed by an empty audit.
    pub fn last_cert_pairs(&self) -> u64 {
        self.last_cert_pairs
    }

    /// Toggle injected certificate failure (the chaos hook the degraded
    /// smoke uses).
    pub fn set_chaos_fail_certs(&mut self, on: bool) {
        self.chaos_fail_certs = on;
    }

    /// Observable state for `status` replies.
    pub fn status(&self) -> StatusInfo {
        StatusInfo {
            epoch: self.epoch,
            generation: self.generation,
            mode: self.mode,
            now: self.now,
            pending: self.pending.len() as u64,
            committed_batch_id: self.committed_batch_id,
            reconv_count: self.reconv_count,
            reconv_total_us: self.reconv_total_us,
            reconv_max_us: self.reconv_max_us,
        }
    }

    /// Advance the logical clock to `to` (monotone; earlier targets are
    /// no-ops): drain schedule events newly visible in
    /// `(drained_inflight, to]` into the pending set, then reconverge
    /// if there is staged work — or, in degraded mode, if the backoff
    /// has elapsed.
    pub fn tick(&mut self, to: u64) -> Result<(), CtlError> {
        if to > self.now {
            self.now = to;
        }
        if self.now > self.drained_inflight {
            let events = self
                .cfg
                .schedule
                .events_between(self.drained_inflight + 1, self.now);
            self.pending.extend(events.iter().map(|e| e.change));
            self.drained_inflight = self.now;
        }
        let retry_due = match self.mode {
            Mode::Serving => true,
            Mode::Degraded { next_retry_at, .. } => self.now >= next_retry_at,
        };
        if !self.pending.is_empty() && retry_due {
            self.try_reconverge()?;
        }
        Ok(())
    }

    /// Ingest a fault-feed batch (at-least-once delivery). Returns
    /// `Ok(false)` for an already-ingested duplicate, `Ok(true)` when
    /// the batch was staged (and a reconvergence attempted).
    pub fn ingest(&mut self, batch_id: u64, changes: &[ChangeSpec]) -> Result<bool, CtlError> {
        if batch_id <= self.highest_ingested {
            return Ok(false);
        }
        if batch_id != self.highest_ingested + 1 {
            return Err(CtlError::FeedGap {
                got: batch_id,
                expected: self.highest_ingested + 1,
            });
        }
        self.pending.extend(changes.iter().map(|c| c.to_change()));
        self.highest_ingested = batch_id;
        // New facts may clear a failing certificate, so degraded mode
        // retries immediately on ingest rather than waiting out the
        // backoff (the backoff only paces retries with *no* new
        // information).
        self.try_reconverge()?;
        Ok(true)
    }

    /// Answer an epoch-fenced query batch. `client_epoch` must equal
    /// the current epoch — otherwise the batch spans two routing
    /// generations and is rejected so the reader can refetch.
    pub fn paths(
        &mut self,
        client_epoch: u64,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<Vec<u64>>, CtlError> {
        if client_epoch != self.epoch {
            return Err(CtlError::EpochFenced {
                client: client_epoch,
                server: self.epoch,
            });
        }
        let n = self.topo.num_pns();
        let mut out = Vec::with_capacity(pairs.len());
        let mut scratch = Vec::new();
        for &(s, d) in pairs {
            if s >= n || d >= n {
                return Err(CtlError::BadPair(s, d));
            }
            // Disconnected pairs answer with an empty list (the typed
            // signal); `select` leaves scratch empty for them.
            self.engine
                .select(&self.topo, PnId(s), PnId(d), &mut scratch);
            out.push(scratch.iter().map(|p| p.0).collect());
        }
        Ok(out)
    }

    /// Semantic digest of the complete routing state at the current
    /// epoch: FNV-1a over every ordered pair's selected path ids. Two
    /// controllers with equal digests answer every query identically —
    /// the equivalence the kill-and-resume smoke asserts.
    pub fn digest(&mut self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.epoch);
        let n = self.topo.num_pns();
        let mut scratch = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                self.engine
                    .select(&self.topo, PnId(s), PnId(d), &mut scratch);
                mix(((s as u64) << 32) | d as u64);
                mix(scratch.len() as u64);
                for p in &scratch {
                    mix(p.0);
                }
            }
        }
        h
    }

    /// Attempt to certify and commit the staged changes as a new epoch.
    fn try_reconverge(&mut self) -> Result<(), CtlError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let started = self.clock.as_mut().map(|c| c());
        // The certification scope is derived from the topology — every
        // pair whose canonical path space touches a changed element —
        // never from cache contents. Flushed cache keys under-scope the
        // audit whenever an affected pair was not cached (cold start,
        // the engine rebuild after a failed certificate, or simply
        // never queried), and an empty scope would certify trivially.
        // `pending` survives a failed attempt untouched, so a degraded
        // retry recomputes the identical scope.
        let pairs = if self.cfg.scoped_certs {
            change_blast_radius(&self.topo, &self.pending)
        } else {
            Vec::new()
        };
        self.engine.apply_changes(&self.topo, &self.pending);
        if self.cfg.reconverge_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                self.cfg.reconverge_delay_ms,
            ));
        }
        let candidate_view = self.engine.view().clone();
        let n = self.topo.num_pns() as u64;
        let full_pairs = n * (n - 1);
        let scope =
            if self.cfg.scoped_certs && !pairs.is_empty() && (pairs.len() as u64) < full_pairs {
                EpochScope::Pairs(&pairs)
            } else {
                // Scoping disabled, an empty blast radius (nothing may
                // certify on zero pairs), or a radius spanning the whole
                // matrix (the full analysis costs the same and re-proves
                // CDG acyclicity as well): run the full analysis.
                EpochScope::Full
            };
        self.last_cert_pairs = match scope {
            EpochScope::Pairs(p) => p.len() as u64,
            EpochScope::Full => full_pairs,
        };
        let mut report = certify_epoch(
            &self.topo,
            &self.label,
            self.cfg.kind,
            &candidate_view,
            scope,
        );
        if self.chaos_fail_certs {
            report.findings.push(lmpr_verify::Diagnostic::error(
                RuleId::CtlCertificate,
                "injected certificate failure (chaos hook)".to_owned(),
                lmpr_verify::Witness::None,
            ));
        }
        if report.certified() {
            let batch: Vec<ChangeSpec> = self
                .pending
                .iter()
                .map(|&c| ChangeSpec::from_change(c))
                .collect();
            self.epoch += 1;
            self.committed_view = candidate_view;
            self.drained_through = self.drained_inflight;
            self.committed_batch_id = self.highest_ingested;
            self.pending.clear();
            self.mode = Mode::Serving;
            self.checkpoint(batch)?;
            self.reconv_count += 1;
            if let (Some(c), Some(t0)) = (self.clock.as_mut(), started) {
                let us = c().saturating_sub(t0);
                self.reconv_total_us += us;
                self.reconv_max_us = self.reconv_max_us.max(us);
            }
        } else {
            // Roll back to the committed view (cold cache — correctness
            // over warmth on this rare path) and keep serving it.
            self.engine = SelectionEngine::cached(self.cfg.kind, self.committed_view.clone());
            let attempts = match self.mode {
                Mode::Degraded { attempts, .. } => attempts + 1,
                Mode::Serving => 1,
            };
            let shift = u32::min(attempts.saturating_sub(1), 32);
            let delay = self
                .cfg
                .backoff_base_ticks
                .saturating_mul(1u64 << shift)
                .min(self.cfg.backoff_cap_ticks);
            self.mode = Mode::Degraded {
                attempts,
                next_retry_at: self.now.saturating_add(delay),
            };
        }
        Ok(())
    }

    /// Persist the committed root state, remembering the commit (with
    /// the batch that produced it) for replication subscribers.
    fn checkpoint(&mut self, batch: Vec<ChangeSpec>) -> Result<(), CtlError> {
        let cp = Checkpoint::from_view(
            self.generation,
            self.epoch,
            self.now,
            self.drained_through,
            self.committed_batch_id,
            &self.committed_view,
        );
        self.store.commit(&cp)?;
        self.last_commit = Some((cp, batch));
        Ok(())
    }
}
