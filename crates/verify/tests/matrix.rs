//! The acceptance matrix from the analyzer's issue: every heuristic ×
//! budget × topology combination must certify, degraded mode included,
//! and a deliberately cyclic routing fixture must produce a minimal
//! counterexample cycle.

use lmpr_core::forwarding::SlotOrder;
use lmpr_core::RouterKind;
use lmpr_verify::{verify_router_kind, verify_tables, Cdg, RuleId, Witness};
use xgft::{FaultSet, NodeId, Topology, XgftSpec};

/// The verification topologies: the paper's Figure 3 tree, a deliberately
/// asymmetric XGFT (distinct radices at every level, w_1 > 1), and a
/// two-level tree wide enough to host the Theorem 2 adversarial pattern.
fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        (
            "XGFT(3; 4,4,4; 1,2,4)",
            Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec")),
        ),
        (
            "XGFT(3; 3,2,2; 2,2,3)",
            Topology::new(XgftSpec::new(&[3, 2, 2], &[2, 2, 3]).expect("valid spec")),
        ),
        (
            "XGFT(2; 4,16; 2,2)",
            Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).expect("valid spec")),
        ),
    ]
}

fn heuristics(k: u64) -> Vec<RouterKind> {
    vec![
        RouterKind::DModK,
        RouterKind::ShiftOne(k),
        RouterKind::Disjoint(k),
        RouterKind::RandomK(k, 42),
    ]
}

#[test]
fn all_heuristics_certify_on_all_topologies() {
    for (label, topo) in topologies() {
        let x = topo.w_prod(topo.height());
        for k in [1, 2, x] {
            for kind in heuristics(k) {
                let report = verify_router_kind(&topo, label, kind, None);
                assert!(
                    report.certified(),
                    "{label} × {} (K={k}) must certify, found: {:#?}",
                    report.scheme,
                    report.findings
                );
                // The certificate must rest on actual work.
                assert!(report.checks.iter().any(|c| c.inspected > 0));
            }
        }
        let report = verify_router_kind(&topo, label, RouterKind::Umulti, None);
        assert!(
            report.certified(),
            "{label} × umulti: {:?}",
            report.findings
        );
    }
}

#[test]
fn degraded_routing_certifies_under_faults() {
    // Fault-injected verification on the Figure 3 tree: a dead top-level
    // switch (reroutable) and a dead leaf up-link (disconnects PN 0, which
    // must surface as the typed error, not a finding).
    let (label, topo) = ("XGFT(3; 4,4,4; 1,2,4)", {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"))
    });
    let mut faults = FaultSet::new();
    faults.fail_switch(&topo, NodeId { level: 3, rank: 2 });
    faults.fail_link(topo.up_link(1, 0, 0));
    for kind in heuristics(4) {
        let report = verify_router_kind(&topo, label, kind, Some(&faults));
        assert!(
            report.certified(),
            "{label} × {} under faults: {:#?}",
            report.scheme,
            report.findings
        );
    }
}

#[test]
fn degraded_routing_certifies_on_the_asymmetric_tree() {
    let (label, topo) = ("XGFT(3; 3,2,2; 2,2,3)", {
        Topology::new(XgftSpec::new(&[3, 2, 2], &[2, 2, 3]).expect("valid spec"))
    });
    let faults = FaultSet::sample(&topo, 0.05, 0.0, 9);
    for kind in heuristics(3) {
        let report = verify_router_kind(&topo, label, kind, Some(&faults));
        assert!(
            report.certified(),
            "{label} × {} under sampled faults: {:#?}",
            report.scheme,
            report.findings
        );
    }
}

#[test]
fn lft_realizations_certify() {
    for (label, topo) in topologies() {
        let x = topo.w_prod(topo.height());
        for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
            for k in [1, 2, x] {
                let report = verify_tables(&topo, label, k, order);
                assert!(
                    report.certified(),
                    "{label} × {order:?} (K={k}): {:#?}",
                    report.findings
                );
            }
        }
    }
}

#[test]
fn cyclic_fixture_yields_a_minimal_counterexample() {
    // A deliberately cyclic routing: a legitimate up/down route plus the
    // same links in valley order (down then up) — the dependency a
    // corrupted LFT or adaptive escape path would introduce.
    let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).expect("valid spec"));
    let up = topo.up_link(1, 0, 0);
    let down = topo.down_link(1, 0, 1);
    let mut cdg = Cdg::new(&topo);
    cdg.add_route(&[up, down]);
    cdg.add_route(&[down, up]);
    let diag = cdg
        .deadlock_finding(&topo)
        .expect("the valley fixture must be refuted");
    assert_eq!(diag.rule, RuleId::CdgCycle);
    match &diag.witness {
        Witness::Cycle(cycle) => {
            assert_eq!(cycle.len(), 2, "counterexample must be the minimal cycle");
            assert!(cycle.contains(&up) && cycle.contains(&down));
        }
        w => panic!("expected a cycle witness, got {w:?}"),
    }
    // The JSON rendering carries the witness for machine consumption.
    let mut report = lmpr_verify::Report::new("fixture", "valley");
    report.findings.push(diag);
    let json = report.to_json();
    assert!(json.contains("\"certified\": false"));
    assert!(json.contains("\"cycle\": ["));
}
