//! Static routing-correctness analysis for limited multi-path routing
//! on extended generalized fat-trees.
//!
//! The analyzer proves (or refutes, with a minimal witness) three
//! families of properties about routing *artifacts* — router selections,
//! forwarding tables, degraded fault-mode selections — without running a
//! single simulated cycle:
//!
//! 1. **Deadlock freedom** ([`cdg`]): the channel-dependency graph over
//!    [`xgft::DirectedLinkId`] is acyclic (Dally–Seitz). A cycle is
//!    reported as a minimal counterexample (rule `CDG-CYCLE`).
//! 2. **K-coverage** ([`coverage`]): every SD pair yields exactly
//!    `min(K, X)` distinct, in-range, loop-free up\*/down\* shortest
//!    paths through the pair's NCA level — and for LFT realizations,
//!    every `(dst, slot)` table walk matches the slot's shift-vector
//!    specification, slot 0 is plain d-mod-k, and at full budget the
//!    slots cover every pair's path space bijectively.
//! 3. **Disjointness & load bounds** ([`disjointness`]): the `disjoint`
//!    heuristic's fork-low guarantees hold, and static worst-case
//!    per-link loads respect Lemma 1 / Theorem 1 / Theorem 2.
//!
//! All findings are structured [`Diagnostic`]s with severity, stable
//! rule id and a machine-checkable witness; a clean [`Report`] is the
//! certificate. The intended call sites are the `lmpr-bench` `verify`
//! binary and the flit-sim sweep pre-flight hook.
//!
//! # Example
//!
//! ```
//! use lmpr_core::RouterKind;
//! use lmpr_verify::verify_router_kind;
//! use xgft::{Topology, XgftSpec};
//!
//! let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
//! let report = verify_router_kind(&topo, "fig3", RouterKind::Disjoint(4), None);
//! assert!(report.certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod coverage;
mod diag;
pub mod disjointness;

pub use cdg::Cdg;
pub use coverage::{
    check_fault_aware_coverage, check_fault_aware_coverage_scoped, check_router_coverage,
    check_tables, Budget,
};
pub use diag::{CheckRun, Diagnostic, Report, RuleId, Severity, Witness};
pub use disjointness::{check_disjoint_fork, check_load_bounds};

use lmpr_core::forwarding::{ForwardingTables, SlotOrder};
use lmpr_core::{Disjoint, FaultAware, Router, RouterKind};
use xgft::{FaultChange, FaultSet, LinkDir, PnId, Topology, MAX_HEIGHT};

/// Expected per-pair cardinality for a [`RouterKind`].
fn budget_of(kind: RouterKind) -> Budget {
    match kind.budget() {
        Some(k) => Budget::Limited(k),
        None => Budget::Unlimited,
    }
}

/// Run the full analysis for one routing scheme on one topology:
/// deadlock freedom, K-coverage, and (scheme-permitting) disjointness
/// and load-bound cross-checks. Pass a fault set to verify the degraded
/// mode instead (the scheme is wrapped in [`FaultAware`], mirroring a
/// subnet manager re-selecting around failures).
pub fn verify_router_kind(
    topo: &Topology,
    topology_label: &str,
    kind: RouterKind,
    faults: Option<&FaultSet>,
) -> Report {
    let budget = budget_of(kind);
    match faults {
        None => {
            let mut report = Report::new(topology_label, kind.name());
            let cdg = Cdg::from_router(topo, &kind, None);
            let before = report.findings.len();
            if let Some(diag) = cdg.deadlock_finding(topo) {
                report.findings.push(diag);
            }
            report.record(RuleId::CdgCycle, cdg.num_edges(), before);
            check_router_coverage(topo, &kind, budget, &mut report);
            if let RouterKind::Disjoint(k) = kind {
                check_disjoint_fork(topo, &Disjoint::new(k), &mut report);
            }
            check_load_bounds(topo, &kind, budget, &mut report);
            report
        }
        Some(f) => {
            let fa = FaultAware::new(kind, f.clone());
            let mut report = Report::new(topology_label, fa.name());
            let cdg = Cdg::from_router(topo, &fa, Some(f));
            let before = report.findings.len();
            if let Some(diag) = cdg.deadlock_finding(topo) {
                report.findings.push(diag);
            }
            report.record(RuleId::CdgCycle, cdg.num_edges(), before);
            check_fault_aware_coverage(topo, &fa, budget, &mut report);
            report
        }
    }
}

/// How much of the pair space an epoch certificate must re-audit.
///
/// The routing controller certifies every epoch before activating it.
/// Epoch 0 (and any recovery-from-scratch epoch) uses [`EpochScope::Full`]:
/// the complete degraded-mode analysis, CDG cycle check included. Later
/// epochs use [`EpochScope::Pairs`] with the **topology-derived blast
/// radius** of the fault change batch — [`change_blast_radius`], every
/// pair whose canonical path space touches a changed element — which is
/// sound because degraded selections are always a *subset* of the
/// pair's canonical up\*/down\* path enumeration: the canonical CDG is
/// acyclic by level stratification and removing routes cannot introduce
/// a dependency edge, so the full-scope CDG certificate from epoch 0 is
/// inherited structurally and only the touched pairs' coverage needs
/// re-proof. The scope must come from the topology, never from cache
/// contents: a selection cache under-approximates the blast radius
/// whenever an affected pair was not cached (cold start, post-rollback
/// rebuild, or simply never queried), and an under-scoped — worst case
/// empty — audit certifies trivially.
#[derive(Debug, Clone, Copy)]
pub enum EpochScope<'a> {
    /// Re-audit everything: CDG acyclicity plus coverage on all pairs.
    Full,
    /// Re-audit coverage on exactly these SD pairs, inheriting the CDG
    /// certificate from the last full-scope epoch.
    Pairs(&'a [(PnId, PnId)]),
}

/// Produce the activation certificate for one controller epoch: the
/// degraded routing state `(kind, faults)` on `topo`, audited at the
/// given [`EpochScope`]. A certified report is the precondition for the
/// controller to publish the epoch; an uncertified one flips the
/// controller into degraded mode.
///
/// Full scope is exactly [`verify_router_kind`] with the fault set;
/// scoped mode runs [`check_fault_aware_coverage_scoped`] on the blast
/// radius and records a `CTL-CERT` check run documenting the inherited
/// CDG certificate (inspected = number of scoped pairs).
pub fn certify_epoch(
    topo: &Topology,
    topology_label: &str,
    kind: RouterKind,
    faults: &FaultSet,
    scope: EpochScope<'_>,
) -> Report {
    match scope {
        EpochScope::Full => verify_router_kind(topo, topology_label, kind, Some(faults)),
        EpochScope::Pairs(pairs) => {
            let budget = budget_of(kind);
            let fa = FaultAware::new(kind, faults.clone());
            let mut report = Report::new(topology_label, fa.name());
            let before = report.findings.len();
            check_fault_aware_coverage_scoped(topo, &fa, budget, pairs, &mut report);
            report.record(RuleId::CtlCertificate, pairs.len() as u64, before);
            report
        }
    }
}

/// The ordered SD pairs whose canonical up\*/down\* path space touches
/// any element named by `changes` — the certification scope of one
/// reconvergence, derived from the topology alone.
///
/// For a directed link at level `l` (its lower endpoint `B` is the
/// level-`l−1` node), the canonical enumeration routes a pair through
/// it exactly when the pair straddles `B`'s height-`l−1` sub-tree `R`:
/// `R × ¬R` for up-links, `¬R × R` for down-links. The climb from a
/// source fixes the label digits at positions `l..h` to the source's —
/// so it can reach `B` iff the source lies under `B` — and reaches
/// level `l` at all iff the NCA is at `l` or above, i.e. the
/// destination is *outside* `R`; the digits below `l` are free port
/// choices, so every such pair has some canonical path over the link.
/// Descents are the mirror image. Up and down *events* contribute
/// identically: a pair's selection is a pure function of the survival
/// bits of its canonical enumeration, so any pair whose space contains
/// a changed element may select differently and must be re-audited,
/// while a pair outside every changed element's region cannot change.
///
/// Sub-tree leaf ranges are aligned (size `m_prod(l−1)`, index
/// `pn / size`) and ranges containing a given PN are nested across
/// levels, so per PN only the *smallest* touched range per direction
/// matters; the pair enumeration is then O(n²) with O(1) membership
/// tests and yields each affected pair exactly once, in lexicographic
/// order.
///
/// Unlike a scope harvested from selection-cache flushes, this set does
/// not depend on what happened to be cached — a cold cache yields the
/// same, complete, audit scope. Switch events expand to all incident
/// links, mirroring [`FaultSet::fail_switch`].
pub fn change_blast_radius(topo: &Topology, changes: &[FaultChange]) -> Vec<(PnId, PnId)> {
    let mut touched = FaultSet::new();
    for change in changes {
        match *change {
            FaultChange::LinkDown(l) | FaultChange::LinkUp(l) => touched.fail_link(l),
            FaultChange::SwitchDown(n) | FaultChange::SwitchUp(n) => touched.fail_switch(topo, n),
        }
    }
    let n = topo.num_pns() as usize;
    // Per PN and direction, the size of the smallest touched sub-tree
    // range containing it (alignment makes the size identify the range).
    const NONE: u32 = u32::MAX;
    let mut up_size = vec![NONE; n];
    let mut down_size = vec![NONE; n];
    let mut digits = [0u32; MAX_HEIGHT];
    for link in touched.failed_links() {
        let e = topo.endpoints(link);
        let (lower, sizes) = match e.dir {
            LinkDir::Up => (e.from, &mut up_size),
            LinkDir::Down => (e.to, &mut down_size),
        };
        let l = e.level as usize;
        let size = topo.m_prod(l - 1) as usize;
        topo.digits_of(lower, &mut digits);
        let mut base = 0usize;
        for i in l..=topo.height() {
            base += digits[i - 1] as usize * topo.m_prod(i - 1) as usize;
        }
        for slot in sizes.iter_mut().skip(base).take(size) {
            *slot = (*slot).min(size as u32);
        }
    }
    let mut pairs = Vec::new();
    for (s, &up) in up_size.iter().enumerate() {
        for (d, &down) in down_size.iter().enumerate() {
            if s == d {
                continue;
            }
            // Affected iff d escapes s's smallest touched source-side
            // range, or s escapes d's smallest destination-side range.
            let up_hit = up != NONE && d / up as usize != s / up as usize;
            let down_hit = down != NONE && s / down as usize != d / down as usize;
            if up_hit || down_hit {
                pairs.push((PnId(s as u32), PnId(d as u32)));
            }
        }
    }
    pairs
}

/// Run the full analysis for an LFT realization: build the tables for
/// `(k, order)`, prove the induced channel-dependency graph acyclic, and
/// audit every table walk against the shift-vector specification.
pub fn verify_tables(topo: &Topology, topology_label: &str, k: u64, order: SlotOrder) -> Report {
    let ft = ForwardingTables::build(topo, k, order);
    let mut report = Report::new(topology_label, format!("lft-{order:?}({k})"));
    let cdg = Cdg::from_tables(topo, &ft);
    let before = report.findings.len();
    if let Some(diag) = cdg.deadlock_finding(topo) {
        report.findings.push(diag);
    }
    report.record(RuleId::CdgCycle, cdg.num_edges(), before);
    check_tables(topo, &ft, order, &mut report);
    report
}

/// Pre-flight verification hook for simulation sweeps: certify the
/// scheme on the sweep's topology and return a one-line failure summary
/// suitable for [`SweepError::Preflight`] when the certificate does not
/// hold.
///
/// [`SweepError::Preflight`]: https://docs.rs/lmpr-flitsim
pub fn preflight(topo: &Topology, kind: RouterKind) -> Result<(), String> {
    let report = verify_router_kind(topo, "preflight", kind, None);
    if report.certified() {
        return Ok(());
    }
    let errors = report
        .findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let first = report
        .findings
        .iter()
        .find(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .unwrap_or_else(|| "unknown finding".to_owned());
    Err(format!(
        "routing verification failed with {errors} finding(s); first: {first}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::{NodeId, XgftSpec};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"))
    }

    #[test]
    fn end_to_end_certificates() {
        let topo = fig3();
        for kind in [
            RouterKind::DModK,
            RouterKind::ShiftOne(2),
            RouterKind::Disjoint(2),
            RouterKind::RandomK(2, 7),
            RouterKind::Umulti,
        ] {
            let report = verify_router_kind(&topo, "fig3", kind, None);
            assert!(report.certified(), "{}: {:?}", kind.name(), report.findings);
            assert!(!report.checks.is_empty());
        }
    }

    #[test]
    fn degraded_mode_certificate() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, NodeId { level: 3, rank: 1 });
        let report = verify_router_kind(&topo, "fig3", RouterKind::Disjoint(4), Some(&faults));
        assert!(report.certified(), "{:?}", report.findings);
        assert!(report.scheme.contains("+faults"));
    }

    #[test]
    fn scoped_epoch_certificate_matches_full_on_the_blast_radius() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, NodeId { level: 3, rank: 1 });

        let full = certify_epoch(
            &topo,
            "fig3",
            RouterKind::Disjoint(4),
            &faults,
            EpochScope::Full,
        );
        assert!(full.certified(), "{:?}", full.findings);

        // Scope to a handful of pairs (including a self-pair, which must
        // be skipped, and a duplicate, which must be harmless).
        let pairs = [
            (PnId(0), PnId(63)),
            (PnId(5), PnId(5)),
            (PnId(0), PnId(63)),
            (PnId(17), PnId(2)),
        ];
        let scoped = certify_epoch(
            &topo,
            "fig3",
            RouterKind::Disjoint(4),
            &faults,
            EpochScope::Pairs(&pairs),
        );
        assert!(scoped.certified(), "{:?}", scoped.findings);
        let ctl = scoped
            .checks
            .iter()
            .find(|c| c.rule == RuleId::CtlCertificate)
            .expect("scoped certificate records a CTL-CERT check run");
        assert_eq!(ctl.inspected, pairs.len() as u64);
        assert_eq!(ctl.findings, 0);
    }

    #[test]
    fn scoped_epoch_certificate_flags_a_broken_adapter() {
        // A router that silently drops paths: coverage on the scoped
        // pairs must refute the certificate.
        struct HalfBudget;
        impl Router for HalfBudget {
            fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<xgft::PathId>) {
                RouterKind::Disjoint(4).fill_paths(topo, s, d, out);
                out.truncate(out.len() / 2);
            }
            fn name(&self) -> String {
                "half-budget".to_owned()
            }
        }
        let topo = fig3();
        let fa = FaultAware::new(HalfBudget, FaultSet::new());
        let mut report = Report::new("fig3", "half-budget");
        let pairs = [(PnId(0), PnId(63))];
        check_fault_aware_coverage_scoped(&topo, &fa, Budget::Limited(4), &pairs, &mut report);
        assert!(!report.certified());
        assert!(report
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CoverageCount));
    }

    /// The ground truth `change_blast_radius` must reproduce: a pair is
    /// affected iff some canonical path crosses a changed element.
    fn brute_blast_radius(topo: &Topology, changes: &[FaultChange]) -> Vec<(PnId, PnId)> {
        let mut touched = FaultSet::new();
        for change in changes {
            match *change {
                FaultChange::LinkDown(l) | FaultChange::LinkUp(l) => touched.fail_link(l),
                FaultChange::SwitchDown(n) | FaultChange::SwitchUp(n) => {
                    touched.fail_switch(topo, n)
                }
            }
        }
        let n = topo.num_pns();
        let mut pairs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                if topo
                    .all_paths(s, d)
                    .any(|p| !touched.path_survives(topo, s, d, p))
                {
                    pairs.push((s, d));
                }
            }
        }
        pairs
    }

    #[test]
    fn change_blast_radius_matches_the_canonical_path_definition() {
        use xgft::DirectedLinkId;
        let specs = [
            XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("fig3"),
            XgftSpec::new(&[4, 8], &[1, 4]).expect("8-port 2-tree"),
            XgftSpec::new(&[2, 3, 2], &[2, 1, 3]).expect("asymmetric"),
        ];
        for spec in specs {
            let topo = Topology::new(spec);
            let num_links = topo.num_links();
            // One link per level and direction (first and last id of
            // each kind), every switch level, and a mixed batch.
            let mut cases: Vec<Vec<FaultChange>> = vec![Vec::new()];
            for id in [0, num_links / 3, num_links / 2, num_links - 1] {
                cases.push(vec![FaultChange::LinkDown(DirectedLinkId(id))]);
                cases.push(vec![FaultChange::LinkUp(DirectedLinkId(id))]);
            }
            for level in 1..=topo.height() {
                let node = NodeId {
                    level: level as u8,
                    rank: 0,
                };
                cases.push(vec![FaultChange::SwitchDown(node)]);
                cases.push(vec![FaultChange::SwitchUp(node)]);
            }
            cases.push(vec![
                FaultChange::LinkDown(DirectedLinkId(0)),
                FaultChange::SwitchDown(NodeId {
                    level: topo.height() as u8,
                    rank: 0,
                }),
                FaultChange::LinkUp(DirectedLinkId(num_links - 1)),
            ]);
            for changes in &cases {
                assert_eq!(
                    change_blast_radius(&topo, changes),
                    brute_blast_radius(&topo, changes),
                    "scope mismatch for {changes:?} on {:?}",
                    topo.spec()
                );
            }
        }
    }

    #[test]
    fn lft_certificates() {
        let topo = fig3();
        for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
            let report = verify_tables(&topo, "fig3", 4, order);
            assert!(report.certified(), "{order:?}: {:?}", report.findings);
        }
    }

    #[test]
    fn preflight_accepts_and_reports() {
        let topo = fig3();
        assert!(preflight(&topo, RouterKind::Disjoint(2)).is_ok());
    }

    #[test]
    fn report_json_has_the_catalog_fields() {
        let topo = fig3();
        let report = verify_router_kind(&topo, "fig3", RouterKind::DModK, None);
        let j = report.to_json();
        assert!(j.contains("\"certified\": true"));
        assert!(j.contains("CDG-CYCLE"));
        assert!(j.contains("COV-COUNT"));
    }
}
