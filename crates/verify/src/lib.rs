//! Static routing-correctness analysis for limited multi-path routing
//! on extended generalized fat-trees.
//!
//! The analyzer proves (or refutes, with a minimal witness) three
//! families of properties about routing *artifacts* — router selections,
//! forwarding tables, degraded fault-mode selections — without running a
//! single simulated cycle:
//!
//! 1. **Deadlock freedom** ([`cdg`]): the channel-dependency graph over
//!    [`xgft::DirectedLinkId`] is acyclic (Dally–Seitz). A cycle is
//!    reported as a minimal counterexample (rule `CDG-CYCLE`).
//! 2. **K-coverage** ([`coverage`]): every SD pair yields exactly
//!    `min(K, X)` distinct, in-range, loop-free up\*/down\* shortest
//!    paths through the pair's NCA level — and for LFT realizations,
//!    every `(dst, slot)` table walk matches the slot's shift-vector
//!    specification, slot 0 is plain d-mod-k, and at full budget the
//!    slots cover every pair's path space bijectively.
//! 3. **Disjointness & load bounds** ([`disjointness`]): the `disjoint`
//!    heuristic's fork-low guarantees hold, and static worst-case
//!    per-link loads respect Lemma 1 / Theorem 1 / Theorem 2.
//!
//! All findings are structured [`Diagnostic`]s with severity, stable
//! rule id and a machine-checkable witness; a clean [`Report`] is the
//! certificate. The intended call sites are the `lmpr-bench` `verify`
//! binary and the flit-sim sweep pre-flight hook.
//!
//! # Example
//!
//! ```
//! use lmpr_core::RouterKind;
//! use lmpr_verify::verify_router_kind;
//! use xgft::{Topology, XgftSpec};
//!
//! let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
//! let report = verify_router_kind(&topo, "fig3", RouterKind::Disjoint(4), None);
//! assert!(report.certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod coverage;
mod diag;
pub mod disjointness;

pub use cdg::Cdg;
pub use coverage::{check_fault_aware_coverage, check_router_coverage, check_tables, Budget};
pub use diag::{CheckRun, Diagnostic, Report, RuleId, Severity, Witness};
pub use disjointness::{check_disjoint_fork, check_load_bounds};

use lmpr_core::forwarding::{ForwardingTables, SlotOrder};
use lmpr_core::{Disjoint, FaultAware, Router, RouterKind};
use xgft::{FaultSet, Topology};

/// Expected per-pair cardinality for a [`RouterKind`].
fn budget_of(kind: RouterKind) -> Budget {
    match kind.budget() {
        Some(k) => Budget::Limited(k),
        None => Budget::Unlimited,
    }
}

/// Run the full analysis for one routing scheme on one topology:
/// deadlock freedom, K-coverage, and (scheme-permitting) disjointness
/// and load-bound cross-checks. Pass a fault set to verify the degraded
/// mode instead (the scheme is wrapped in [`FaultAware`], mirroring a
/// subnet manager re-selecting around failures).
pub fn verify_router_kind(
    topo: &Topology,
    topology_label: &str,
    kind: RouterKind,
    faults: Option<&FaultSet>,
) -> Report {
    let budget = budget_of(kind);
    match faults {
        None => {
            let mut report = Report::new(topology_label, kind.name());
            let cdg = Cdg::from_router(topo, &kind, None);
            let before = report.findings.len();
            if let Some(diag) = cdg.deadlock_finding(topo) {
                report.findings.push(diag);
            }
            report.record(RuleId::CdgCycle, cdg.num_edges(), before);
            check_router_coverage(topo, &kind, budget, &mut report);
            if let RouterKind::Disjoint(k) = kind {
                check_disjoint_fork(topo, &Disjoint::new(k), &mut report);
            }
            check_load_bounds(topo, &kind, budget, &mut report);
            report
        }
        Some(f) => {
            let fa = FaultAware::new(kind, f.clone());
            let mut report = Report::new(topology_label, fa.name());
            let cdg = Cdg::from_router(topo, &fa, Some(f));
            let before = report.findings.len();
            if let Some(diag) = cdg.deadlock_finding(topo) {
                report.findings.push(diag);
            }
            report.record(RuleId::CdgCycle, cdg.num_edges(), before);
            check_fault_aware_coverage(topo, &fa, budget, &mut report);
            report
        }
    }
}

/// Run the full analysis for an LFT realization: build the tables for
/// `(k, order)`, prove the induced channel-dependency graph acyclic, and
/// audit every table walk against the shift-vector specification.
pub fn verify_tables(topo: &Topology, topology_label: &str, k: u64, order: SlotOrder) -> Report {
    let ft = ForwardingTables::build(topo, k, order);
    let mut report = Report::new(topology_label, format!("lft-{order:?}({k})"));
    let cdg = Cdg::from_tables(topo, &ft);
    let before = report.findings.len();
    if let Some(diag) = cdg.deadlock_finding(topo) {
        report.findings.push(diag);
    }
    report.record(RuleId::CdgCycle, cdg.num_edges(), before);
    check_tables(topo, &ft, order, &mut report);
    report
}

/// Pre-flight verification hook for simulation sweeps: certify the
/// scheme on the sweep's topology and return a one-line failure summary
/// suitable for [`SweepError::Preflight`] when the certificate does not
/// hold.
///
/// [`SweepError::Preflight`]: https://docs.rs/lmpr-flitsim
pub fn preflight(topo: &Topology, kind: RouterKind) -> Result<(), String> {
    let report = verify_router_kind(topo, "preflight", kind, None);
    if report.certified() {
        return Ok(());
    }
    let errors = report
        .findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let first = report
        .findings
        .iter()
        .find(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .unwrap_or_else(|| "unknown finding".to_owned());
    Err(format!(
        "routing verification failed with {errors} finding(s); first: {first}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::{NodeId, XgftSpec};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"))
    }

    #[test]
    fn end_to_end_certificates() {
        let topo = fig3();
        for kind in [
            RouterKind::DModK,
            RouterKind::ShiftOne(2),
            RouterKind::Disjoint(2),
            RouterKind::RandomK(2, 7),
            RouterKind::Umulti,
        ] {
            let report = verify_router_kind(&topo, "fig3", kind, None);
            assert!(report.certified(), "{}: {:?}", kind.name(), report.findings);
            assert!(!report.checks.is_empty());
        }
    }

    #[test]
    fn degraded_mode_certificate() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, NodeId { level: 3, rank: 1 });
        let report = verify_router_kind(&topo, "fig3", RouterKind::Disjoint(4), Some(&faults));
        assert!(report.certified(), "{:?}", report.findings);
        assert!(report.scheme.contains("+faults"));
    }

    #[test]
    fn lft_certificates() {
        let topo = fig3();
        for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
            let report = verify_tables(&topo, "fig3", 4, order);
            assert!(report.certified(), "{order:?}: {:?}", report.findings);
        }
    }

    #[test]
    fn preflight_accepts_and_reports() {
        let topo = fig3();
        assert!(preflight(&topo, RouterKind::Disjoint(2)).is_ok());
    }

    #[test]
    fn report_json_has_the_catalog_fields() {
        let topo = fig3();
        let report = verify_router_kind(&topo, "fig3", RouterKind::DModK, None);
        let j = report.to_json();
        assert!(j.contains("\"certified\": true"));
        assert!(j.contains("CDG-CYCLE"));
        assert!(j.contains("COV-COUNT"));
    }
}
