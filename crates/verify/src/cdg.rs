//! Channel-dependency-graph construction and Dally–Seitz cycle
//! detection.
//!
//! A *channel* is a directed link ([`xgft::DirectedLinkId`]); a route
//! that traverses link `a` immediately before link `b` makes `b`'s
//! buffer a resource that traffic holding `a` waits for, i.e. the
//! dependency edge `a → b`. Dally & Seitz's classic theorem states that
//! a routing function on a network with a single virtual channel is
//! deadlock-free **iff** its channel-dependency graph is acyclic — so an
//! acyclic CDG is a *proof* of deadlock freedom, statically, without
//! simulating a single cycle, and a cycle in the CDG is a concrete
//! counterexample a watchdog would otherwise stumble on mid-run.
//!
//! On a correctly-routed XGFT every dependency is up→up, up→down or
//! down→down (paths climb then descend, never descend-then-climb), so
//! the graph is acyclic by level stratification; the analyzer re-derives
//! that from the actual routing artifacts rather than assuming it, which
//! is exactly what catches a corrupted LFT or a "valley-routing" bug.

use crate::{Diagnostic, RuleId, Witness};
use lmpr_core::Router;
use std::collections::HashSet;
use xgft::{DirectedLinkId, FaultSet, PnId, Topology};

/// A channel-dependency graph over the directed links of one topology.
#[derive(Debug, Clone)]
pub struct Cdg {
    /// Adjacency: `succ[a]` lists every link `b` with a dependency
    /// `a → b`, deduplicated.
    succ: Vec<Vec<u32>>,
    /// Dedup set of packed `(a << 32) | b` edges.
    seen: HashSet<u64>,
    num_edges: u64,
    /// Routes that were fed in (for reporting).
    num_routes: u64,
}

impl Cdg {
    /// An empty graph over `topo`'s link space.
    pub fn new(topo: &Topology) -> Self {
        Cdg {
            succ: vec![Vec::new(); topo.num_links() as usize],
            seen: HashSet::new(),
            num_edges: 0,
            num_routes: 0,
        }
    }

    /// Record one route: consecutive link pairs become dependency edges.
    /// Routes shorter than two links add no edges but still count toward
    /// [`Cdg::num_routes`].
    pub fn add_route(&mut self, links: &[DirectedLinkId]) {
        self.num_routes += 1;
        for w in links.windows(2) {
            let (a, b) = (w[0].0, w[1].0);
            if self.seen.insert(((a as u64) << 32) | b as u64) {
                self.succ[a as usize].push(b);
                self.num_edges += 1;
            }
        }
    }

    /// Number of distinct dependency edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of routes fed into the graph.
    pub fn num_routes(&self) -> u64 {
        self.num_routes
    }

    /// Build the CDG a [`Router`] induces: every selected path of every
    /// SD pair contributes its link chain. With a non-empty `faults` set
    /// the router's selection is taken as-is (wrap it in
    /// [`lmpr_core::FaultAware`] to model degraded re-selection) but
    /// pairs whose selection is empty — disconnected under the wrapped
    /// adapter's contract deviation — are skipped rather than treated as
    /// an error: connectivity is the coverage rules' concern.
    pub fn from_router<R: Router + ?Sized>(
        topo: &Topology,
        router: &R,
        faults: Option<&FaultSet>,
    ) -> Self {
        let mut cdg = Cdg::new(topo);
        let mut paths = Vec::new();
        let mut links = Vec::new();
        let n = topo.num_pns();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                router.fill_paths(topo, s, d, &mut paths);
                for &p in &paths {
                    if let Some(f) = faults {
                        if !f.path_survives(topo, s, d, p) {
                            continue;
                        }
                    }
                    links.clear();
                    topo.walk_path(s, d, p, |l| links.push(l));
                    cdg.add_route(&links);
                }
            }
        }
        cdg
    }

    /// Build the CDG the forwarding tables induce: every `(src, dst,
    /// slot)` table walk contributes its link chain. Walks that loop or
    /// misdeliver still contribute the links they traversed — a
    /// misrouted LFT is exactly when a dependency cycle becomes
    /// plausible, and the walk failure itself is reported separately by
    /// the coverage rules.
    pub fn from_tables(topo: &Topology, ft: &lmpr_core::forwarding::ForwardingTables) -> Self {
        let mut cdg = Cdg::new(topo);
        let n = topo.num_pns();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                for slot in 0..ft.k() {
                    match crate::coverage::table_walk(topo, ft, s, d, slot) {
                        Ok(links) | Err((links, _)) => cdg.add_route(&links),
                    }
                }
            }
        }
        cdg
    }

    /// Detect a dependency cycle. Returns `None` when the graph is
    /// acyclic (the Dally–Seitz certificate) or a *shortest* cycle
    /// through the first back-edge's strongly-connected component as the
    /// counterexample: the link sequence `c_0 → c_1 → … → c_0`.
    pub fn find_cycle(&self) -> Option<Vec<DirectedLinkId>> {
        // Iterative three-color DFS to find any node on a cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.succ.len();
        let mut color = vec![WHITE; n];
        let mut on_cycle: Option<u32> = None;
        'roots: for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-successor-index).
            let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
            color[root] = GRAY;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                if let Some(&next) = self.succ[node as usize].get(*idx) {
                    *idx += 1;
                    match color[next as usize] {
                        WHITE => {
                            color[next as usize] = GRAY;
                            stack.push((next, 0));
                        }
                        GRAY => {
                            on_cycle = Some(next);
                            break 'roots;
                        }
                        _ => {}
                    }
                } else {
                    color[node as usize] = BLACK;
                    stack.pop();
                }
            }
        }
        let start = on_cycle?;
        Some(self.shortest_cycle_through(start))
    }

    /// BFS for the shortest path `start → … → start`, which exists by
    /// construction when `start` lies on a cycle.
    fn shortest_cycle_through(&self, start: u32) -> Vec<DirectedLinkId> {
        let n = self.succ.len();
        let mut pred = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for &next in &self.succ[node as usize] {
                if next == start {
                    // Reconstruct start → … → node, then close the loop.
                    let mut cycle = vec![node];
                    let mut cur = node;
                    while cur != start {
                        cur = pred[cur as usize];
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    return cycle.into_iter().map(DirectedLinkId).collect();
                }
                if next != start && pred[next as usize] == u32::MAX {
                    pred[next as usize] = node;
                    queue.push_back(next);
                }
            }
        }
        unreachable!("shortest_cycle_through called on a node not on any cycle")
    }

    /// Run the Dally–Seitz check and convert the outcome into a
    /// diagnostic (or `None` for the acyclic certificate).
    pub fn deadlock_finding(&self, topo: &Topology) -> Option<Diagnostic> {
        let cycle = self.find_cycle()?;
        let desc: Vec<String> = cycle
            .iter()
            .map(|&l| {
                let e = topo.endpoints(l);
                format!(
                    "link {} ({:?} L{} ({},{})→({},{}))",
                    l.0, e.dir, e.level, e.from.level, e.from.rank, e.to.level, e.to.rank
                )
            })
            .collect();
        Some(Diagnostic::error(
            RuleId::CdgCycle,
            format!(
                "channel-dependency cycle of length {}: {} -> back to start; \
                 the routing is not deadlock-free",
                cycle.len(),
                desc.join(" -> ")
            ),
            Witness::Cycle(cycle),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint, FaultAware};
    use xgft::{NodeId, XgftSpec};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"))
    }

    #[test]
    fn shortest_path_routing_is_acyclic() {
        let topo = fig3();
        for k in [1u64, 2, 8] {
            let cdg = Cdg::from_router(&topo, &Disjoint::new(k), None);
            assert!(cdg.num_edges() > 0);
            assert!(cdg.find_cycle().is_none(), "k={k} must certify");
            assert!(cdg.deadlock_finding(&topo).is_none());
        }
    }

    #[test]
    fn degraded_routing_stays_acyclic() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, NodeId { level: 3, rank: 0 });
        let fa = FaultAware::new(Disjoint::new(4), faults.clone());
        let cdg = Cdg::from_router(&topo, &fa, Some(&faults));
        assert!(cdg.find_cycle().is_none());
    }

    #[test]
    fn valley_route_is_caught_with_a_minimal_cycle() {
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).expect("valid spec"));
        let mut cdg = Cdg::new(&topo);
        // A legitimate up-down route…
        let up = topo.up_link(1, 0, 0);
        let down = topo.down_link(1, 0, 1);
        cdg.add_route(&[up, down]);
        assert!(cdg.find_cycle().is_none());
        // …plus a valley route re-climbing after the descent through the
        // same pair in reverse: the classic deadlock dependency.
        cdg.add_route(&[down, up]);
        let cycle = cdg.find_cycle().expect("cycle must be found");
        assert_eq!(cycle.len(), 2, "counterexample must be minimal");
        let set: std::collections::HashSet<_> = cycle.iter().copied().collect();
        assert!(set.contains(&up) && set.contains(&down));
        let diag = cdg.deadlock_finding(&topo).expect("finding");
        assert_eq!(diag.rule, RuleId::CdgCycle);
        assert!(diag.message.contains("cycle of length 2"));
    }

    #[test]
    fn longer_cycles_report_the_shortest_one() {
        let topo = fig3();
        let mut cdg = Cdg::new(&topo);
        // Build a 3-cycle and a 2-cycle sharing a node; detection must
        // return the 2-cycle when BFS starts inside it.
        let (a, b, c) = (DirectedLinkId(0), DirectedLinkId(1), DirectedLinkId(2));
        cdg.add_route(&[a, b, c, a]); // 3-cycle a→b→c→a (plus c→a edge)
        cdg.add_route(&[b, a]); // 2-cycle a→b→a
        let cycle = cdg.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn edges_deduplicate_but_routes_count() {
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).expect("valid spec"));
        let mut cdg = Cdg::new(&topo);
        let up = topo.up_link(1, 0, 0);
        let down = topo.down_link(1, 0, 1);
        cdg.add_route(&[up, down]);
        cdg.add_route(&[up, down]);
        cdg.add_route(&[up]); // too short for an edge
        assert_eq!(cdg.num_edges(), 1);
        assert_eq!(cdg.num_routes(), 3);
    }

    #[test]
    fn dmodk_cdg_only_has_up_up_up_down_down_down_edges() {
        // The structural reason XGFT routing certifies: no down→up edge.
        let topo = fig3();
        let cdg = Cdg::from_router(&topo, &DModK, None);
        for (a, succs) in cdg.succ.iter().enumerate() {
            let (_, da) = topo.link_level_dir(DirectedLinkId(a as u32));
            for &b in succs {
                let (_, db) = topo.link_level_dir(DirectedLinkId(b));
                assert!(
                    !(da == xgft::LinkDir::Down && db == xgft::LinkDir::Up),
                    "down→up dependency in shortest-path CDG"
                );
            }
        }
    }
}
