//! K-coverage and LFT slot-realization audits.
//!
//! Two artifact classes are audited:
//!
//! * **Router selections** ([`check_router_coverage`],
//!   [`check_fault_aware_coverage`]): every SD pair must yield exactly
//!   `min(K, X)` distinct, in-range, loop-free up\*/down\* shortest
//!   paths through the pair's NCA level — `min(K, X_surviving)` under a
//!   fault set, with disconnection surfacing as the typed
//!   [`RouteError::Disconnected`](lmpr_core::RouteError#variant.Disconnected).
//! * **Forwarding tables** ([`check_tables`]): every `(src, dst, slot)`
//!   table walk must terminate at the destination along a shortest
//!   up\*/down\* route, the realized path must equal the path the slot's
//!   shift vector *specifies* (realization ≡ specification), slot 0 must
//!   be plain d-mod-k, and at full budget the slots must cover each
//!   pair's path space bijectively (balanced multiplicity).

use crate::{Diagnostic, Report, RuleId, Witness};
use lmpr_core::forwarding::{shift_vectors, ForwardingTables, SlotOrder};
use lmpr_core::{FaultAware, RouteError, Router, SelectionEngine};
use std::collections::BTreeMap;
use xgft::{DirectedLinkId, FaultSet, LinkDir, NodeId, PathId, PnId, Topology, MAX_HEIGHT};

/// How many paths a scheme is expected to select per pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// A fixed budget `K`: expect `min(K, X)` paths.
    Limited(u64),
    /// UMULTI: expect all `X` paths.
    Unlimited,
}

impl Budget {
    /// Expected cardinality for a pair with `x` available paths.
    pub fn expected(self, x: u64) -> u64 {
        match self {
            Budget::Limited(k) => k.min(x),
            Budget::Unlimited => x,
        }
    }
}

/// Validate one selected path id: range, then the up\*/down\* shape of
/// its link walk. Returns the findings it generated.
fn check_path_shape(
    topo: &Topology,
    s: PnId,
    d: PnId,
    p: PathId,
    faults: Option<&FaultSet>,
    out: &mut Vec<Diagnostic>,
) {
    let x = topo.num_paths(s, d);
    if p.0 >= x {
        out.push(Diagnostic::error(
            RuleId::CoverageRange,
            format!(
                "pair ({}, {}): selected path id {} outside the pair's path space X = {x}",
                s.0, d.0, p.0
            ),
            Witness::Path {
                src: s,
                dst: d,
                path: p,
            },
        ));
        return; // the walk below would assert on an out-of-range id
    }
    let kappa = topo.nca_level(s, d);
    let mut links = Vec::with_capacity(2 * kappa);
    topo.walk_path(s, d, p, |l| links.push(l));
    let mut ok = links.len() == 2 * kappa;
    for (i, &l) in links.iter().enumerate() {
        let (level, dir) = topo.link_level_dir(l);
        let (want_level, want_dir) = if i < kappa {
            (i + 1, LinkDir::Up)
        } else {
            (2 * kappa - i, LinkDir::Down)
        };
        ok &= level as usize == want_level && dir == want_dir;
    }
    if !ok {
        out.push(Diagnostic::error(
            RuleId::CoverageUpDown,
            format!(
                "pair ({}, {}): path {} is not a {kappa}-up/{kappa}-down shortest route \
                 through the NCA level",
                s.0, d.0, p.0
            ),
            Witness::Path {
                src: s,
                dst: d,
                path: p,
            },
        ));
    }
    if let Some(f) = faults {
        if links.iter().any(|&l| f.is_link_failed(l)) {
            out.push(Diagnostic::error(
                RuleId::CoverageUpDown,
                format!(
                    "pair ({}, {}): selected path {} crosses a failed link \
                     in the degraded network",
                    s.0, d.0, p.0
                ),
                Witness::Path {
                    src: s,
                    dst: d,
                    path: p,
                },
            ));
        }
    }
}

/// Check duplicate ids within one selection.
fn check_distinct(s: PnId, d: PnId, paths: &[PathId], out: &mut Vec<Diagnostic>) {
    let mut sorted: Vec<u64> = paths.iter().map(|p| p.0).collect();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        out.push(Diagnostic::error(
            RuleId::CoverageDuplicate,
            format!(
                "pair ({}, {}): selection contains duplicate path ids {:?}",
                s.0, d.0, sorted
            ),
            Witness::Pair { src: s, dst: d },
        ));
    }
}

/// Audit a fault-free router: exact `min(K, X)` coverage, distinctness,
/// range, and the up\*/down\* shape of every selected path, for every SD
/// pair. Appends findings and a [`CheckRun`](crate::CheckRun) block to
/// `report`.
pub fn check_router_coverage<R: Router + ?Sized>(
    topo: &Topology,
    router: &R,
    budget: Budget,
    report: &mut Report,
) {
    let n = topo.num_pns();
    let mut paths = Vec::new();
    let mut pairs = 0u64;
    let before_count = report.findings.len();
    let mut shape_findings = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            pairs += 1;
            let (s, d) = (PnId(s), PnId(d));
            router.fill_paths(topo, s, d, &mut paths);
            let x = topo.num_paths(s, d);
            let expected = budget.expected(x);
            if paths.len() as u64 != expected {
                report.findings.push(Diagnostic::error(
                    RuleId::CoverageCount,
                    format!(
                        "pair ({}, {}): selected {} paths, expected min(K, X) = {expected} \
                         (X = {x})",
                        s.0,
                        d.0,
                        paths.len()
                    ),
                    Witness::Pair { src: s, dst: d },
                ));
            }
            check_distinct(s, d, &paths, &mut report.findings);
            for &p in &paths {
                check_path_shape(topo, s, d, p, None, &mut shape_findings);
            }
        }
    }
    report.record(RuleId::CoverageCount, pairs, before_count);
    let before_shape = report.findings.len();
    report.findings.append(&mut shape_findings);
    report.record(RuleId::CoverageUpDown, pairs, before_shape);
}

/// Audit a fault-aware adapter: per pair, exactly
/// `min(K, X_surviving)` surviving paths, every selected path avoiding
/// every failed link, and `RouteError::Disconnected` exactly on the
/// pairs whose whole path space is dead.
///
/// The selections under audit come from the same cached
/// [`SelectionEngine`] the simulators route with, so a certificate here
/// covers exactly the paths a degraded run would use.
pub fn check_fault_aware_coverage<R: Router>(
    topo: &Topology,
    adapter: &FaultAware<R>,
    budget: Budget,
    report: &mut Report,
) {
    let faults = adapter.faults().clone();
    let mut engine = SelectionEngine::cached(adapter.inner(), faults.clone());
    let n = topo.num_pns();
    let mut paths = Vec::new();
    let mut pairs = 0u64;
    let before = report.findings.len();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            pairs += 1;
            audit_fault_aware_pair(
                topo,
                &mut engine,
                &faults,
                budget,
                PnId(s),
                PnId(d),
                &mut paths,
                &mut report.findings,
            );
        }
    }
    report.record(RuleId::CoverageDisconnect, pairs, before);
}

/// Audit the fault-aware selection on an explicit pair subset — the
/// routing controller's *incremental* per-epoch certificate mode. After
/// a fault change batch only the pairs in the batch's topology-derived
/// blast radius ([`crate::change_blast_radius`]: every pair whose
/// canonical path space touches a changed element) can change their
/// selection, so re-certifying exactly those pairs keeps reconvergence
/// latency proportional to the damage while untouched pairs keep their
/// standing certificate. Self-pairs in `pairs` are skipped, duplicates
/// are audited twice (harmless — the audit is read-only).
pub fn check_fault_aware_coverage_scoped<R: Router>(
    topo: &Topology,
    adapter: &FaultAware<R>,
    budget: Budget,
    pairs: &[(PnId, PnId)],
    report: &mut Report,
) {
    let faults = adapter.faults().clone();
    let mut engine = SelectionEngine::cached(adapter.inner(), faults.clone());
    let mut paths = Vec::new();
    let mut inspected = 0u64;
    let before = report.findings.len();
    for &(s, d) in pairs {
        if s == d {
            continue;
        }
        inspected += 1;
        audit_fault_aware_pair(
            topo,
            &mut engine,
            &faults,
            budget,
            s,
            d,
            &mut paths,
            &mut report.findings,
        );
    }
    report.record(RuleId::CoverageDisconnect, inspected, before);
}

/// The shared per-pair body of the fault-aware audits: cardinality,
/// distinctness, shape, failed-link avoidance and typed disconnection.
#[allow(clippy::too_many_arguments)]
fn audit_fault_aware_pair<R: Router>(
    topo: &Topology,
    engine: &mut SelectionEngine<R>,
    faults: &FaultSet,
    budget: Budget,
    s: PnId,
    d: PnId,
    paths: &mut Vec<PathId>,
    findings: &mut Vec<Diagnostic>,
) {
    let surviving = faults.num_surviving(topo, s, d);
    match engine.try_select(topo, s, d, paths) {
        Ok(_) => {
            if surviving == 0 {
                findings.push(Diagnostic::error(
                    RuleId::CoverageDisconnect,
                    format!(
                        "pair ({}, {}): no path survives, yet the adapter \
                         returned {} paths instead of Disconnected",
                        s.0,
                        d.0,
                        paths.len()
                    ),
                    Witness::Pair { src: s, dst: d },
                ));
                return;
            }
            let expected = budget.expected(surviving);
            if paths.len() as u64 != expected {
                findings.push(Diagnostic::error(
                    RuleId::CoverageCount,
                    format!(
                        "pair ({}, {}): degraded selection has {} paths, expected \
                         min(K, X_surviving) = {expected} (X_surviving = {surviving})",
                        s.0,
                        d.0,
                        paths.len()
                    ),
                    Witness::Pair { src: s, dst: d },
                ));
            }
            check_distinct(s, d, paths, findings);
            for &p in paths.iter() {
                check_path_shape(topo, s, d, p, Some(faults), findings);
            }
        }
        Err(RouteError::Disconnected { .. }) => {
            if surviving != 0 {
                findings.push(Diagnostic::error(
                    RuleId::CoverageDisconnect,
                    format!(
                        "pair ({}, {}): adapter reported Disconnected but \
                         {surviving} paths survive",
                        s.0, d.0
                    ),
                    Witness::Pair { src: s, dst: d },
                ));
            }
        }
        Err(e) => {
            findings.push(Diagnostic::error(
                RuleId::CoverageCount,
                format!("pair ({}, {}): unexpected routing error: {e}", s.0, d.0),
                Witness::Pair { src: s, dst: d },
            ));
        }
    }
}

/// Walk the forwarding tables for `(src, dst, slot)` and return the
/// traversed links — on failure (loop or wrong ejection PN), the links
/// traversed so far together with the diagnostic, so the CDG builder can
/// still account for the partial route's dependencies.
pub(crate) fn table_walk(
    topo: &Topology,
    ft: &ForwardingTables,
    src: PnId,
    dst: PnId,
    slot: u64,
) -> Result<Vec<DirectedLinkId>, (Vec<DirectedLinkId>, Diagnostic)> {
    let mut node = NodeId::pn(src);
    let mut links = Vec::new();
    let mut port = ft.injection_port(dst, slot) as u32;
    let limit = 2 * topo.height() + 2;
    for _ in 0..limit {
        let link = topo.link_from_port(node, port);
        links.push(link);
        node = topo.endpoints(link).to;
        if node == NodeId::pn(dst) {
            return Ok(links);
        }
        if node.level == 0 {
            let diag = Diagnostic::error(
                RuleId::LftWalk,
                format!(
                    "LFT walk ({}, {}) slot {slot} ejected at the wrong PN {}",
                    src.0, dst.0, node.rank
                ),
                Witness::Slot { src, dst, slot },
            );
            return Err((links, diag));
        }
        port = ft.lookup(node, dst, slot) as u32;
    }
    let diag = Diagnostic::error(
        RuleId::LftWalk,
        format!(
            "LFT walk ({}, {}) slot {slot} did not terminate within {limit} hops \
             (forwarding loop)",
            src.0, dst.0
        ),
        Witness::Slot { src, dst, slot },
    );
    Err((links, diag))
}

/// Identify which canonical path a link walk realizes, if it has the
/// shortest up\*/down\* shape; `None` otherwise.
fn identify_path(topo: &Topology, s: PnId, d: PnId, links: &[DirectedLinkId]) -> Option<PathId> {
    let kappa = topo.nca_level(s, d);
    if links.len() != 2 * kappa {
        return None;
    }
    let mut ports = [0u32; MAX_HEIGHT];
    for (i, &l) in links.iter().enumerate() {
        let e = topo.endpoints(l);
        if i < kappa {
            if e.dir != LinkDir::Up || e.level as usize != i + 1 {
                return None;
            }
            ports[i] = e.from_port;
        } else if e.dir != LinkDir::Down || e.level as usize != 2 * kappa - i {
            return None;
        }
    }
    Some(topo.path_from_up_ports(s, d, &ports[..kappa]))
}

/// The path a slot's shift vector *specifies* for a pair: up-port
/// `(u_t(d) + c_t) mod w_t` at each level `t ≤ κ` — the contract
/// documented in [`lmpr_core::forwarding`].
fn specified_path(
    topo: &Topology,
    d: PnId,
    kappa: usize,
    shift: &lmpr_core::forwarding::ShiftVector,
) -> PathId {
    let x = topo.w_prod(kappa);
    let mut p = 0u64;
    for t in 1..=kappa {
        let w = topo.spec().w_at(t) as u64;
        let u = (d.0 as u64 / topo.w_prod(t - 1)) % w;
        let shifted = (u + shift.at(t) as u64) % w;
        p += shifted * (x / topo.w_prod(t));
    }
    PathId(p)
}

/// Audit a complete [`ForwardingTables`] build: walk every
/// `(src, dst, slot)`, prove realization ≡ specification, slot-0 ≡
/// d-mod-k, and (at full budget) slot-bijectivity over every pair's
/// path space.
pub fn check_tables(topo: &Topology, ft: &ForwardingTables, order: SlotOrder, report: &mut Report) {
    let k = ft.k();
    let vectors = shift_vectors(topo, k, order);
    let k_eff = vectors.len() as u64;
    let full_budget = k_eff == topo.w_prod(topo.height());
    let n = topo.num_pns();
    let mut walks = 0u64;
    let before = report.findings.len();
    let mut biject_findings: Vec<Diagnostic> = Vec::new();
    let mut slot0_findings: Vec<Diagnostic> = Vec::new();
    // BTreeMap, not HashMap: the multiplicity summary below is embedded
    // verbatim in diagnostic messages, and every serialized surface must
    // iterate in a deterministic order.
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let (s, d) = (PnId(s), PnId(d));
            let kappa = topo.nca_level(s, d);
            let x = topo.num_paths(s, d);
            counts.clear();
            for slot in 0..k {
                walks += 1;
                let links = match table_walk(topo, ft, s, d, slot) {
                    Ok(l) => l,
                    Err((_, diag)) => {
                        report.findings.push(diag);
                        continue;
                    }
                };
                let Some(realized) = identify_path(topo, s, d, &links) else {
                    report.findings.push(Diagnostic::error(
                        RuleId::CoverageUpDown,
                        format!(
                            "LFT walk ({}, {}) slot {slot} is not a shortest \
                             up*/down* route",
                            s.0, d.0
                        ),
                        Witness::Slot {
                            src: s,
                            dst: d,
                            slot,
                        },
                    ));
                    continue;
                };
                let spec = specified_path(topo, d, kappa, &vectors[(slot % k_eff) as usize]);
                if realized != spec {
                    biject_findings.push(Diagnostic::error(
                        RuleId::LftBijection,
                        format!(
                            "LFT walk ({}, {}) slot {slot} realized path {} but the \
                             slot's shift vector specifies path {}",
                            s.0, d.0, realized.0, spec.0
                        ),
                        Witness::Slot {
                            src: s,
                            dst: d,
                            slot,
                        },
                    ));
                }
                if slot == 0 && realized != topo.dmodk_path(s, d) {
                    slot0_findings.push(Diagnostic::error(
                        RuleId::LftSlotZero,
                        format!(
                            "pair ({}, {}): slot 0 realized path {} instead of the \
                             d-mod-k path {}",
                            s.0,
                            d.0,
                            realized.0,
                            topo.dmodk_path(s, d).0
                        ),
                        Witness::Slot {
                            src: s,
                            dst: d,
                            slot: 0,
                        },
                    ));
                }
                *counts.entry(realized.0).or_insert(0) += 1;
            }
            if full_budget {
                // Bijectivity over the pair's path space: every path
                // realized exactly X_topo / X_pair times.
                let want = k_eff / x;
                let balanced = counts.len() as u64 == x && counts.values().all(|&c| c == want);
                if !balanced {
                    biject_findings.push(Diagnostic::error(
                        RuleId::LftBijection,
                        format!(
                            "pair ({}, {}): full-budget slots realize {} of {x} paths \
                             with multiplicities {:?}; expected all {x} paths exactly \
                             {want} times",
                            s.0,
                            d.0,
                            counts.len(),
                            {
                                let mut v: Vec<u64> = counts.values().copied().collect();
                                v.sort_unstable();
                                v
                            }
                        ),
                        Witness::Pair { src: s, dst: d },
                    ));
                }
            }
        }
    }
    report.record(RuleId::LftWalk, walks, before);
    let b = report.findings.len();
    report.findings.append(&mut biject_findings);
    report.record(RuleId::LftBijection, walks, b);
    let b = report.findings.len();
    report.findings.append(&mut slot0_findings);
    report.record(RuleId::LftSlotZero, (n as u64) * (n as u64 - 1), b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{DModK, Disjoint, RandomK, ShiftOne, Umulti};
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"))
    }

    fn asym() -> Topology {
        Topology::new(XgftSpec::new(&[3, 2, 2], &[2, 2, 3]).expect("valid spec"))
    }

    #[test]
    fn heuristics_certify_on_symmetric_and_asymmetric() {
        for topo in [fig3(), asym()] {
            for k in [1u64, 2, 5] {
                for r in [
                    Box::new(ShiftOne::new(k)) as Box<dyn Router>,
                    Box::new(Disjoint::new(k)),
                    Box::new(RandomK::new(k, 3)),
                ] {
                    let mut report = Report::new("t", r.name());
                    check_router_coverage(&topo, r.as_ref(), Budget::Limited(k), &mut report);
                    assert!(report.certified(), "{}: {:?}", r.name(), report.findings);
                }
            }
            let mut report = Report::new("t", "umulti");
            check_router_coverage(&topo, &Umulti, Budget::Unlimited, &mut report);
            assert!(report.certified());
        }
    }

    #[test]
    fn wrong_budget_is_flagged() {
        // Claim K = 3 while the router selects 2: every far pair trips
        // the cardinality rule.
        let topo = fig3();
        let mut report = Report::new("t", "s");
        check_router_coverage(&topo, &ShiftOne::new(2), Budget::Limited(3), &mut report);
        assert!(!report.certified());
        assert!(report
            .findings
            .iter()
            .all(|d| d.rule == RuleId::CoverageCount));
    }

    /// A broken router for negative tests: duplicates its d-mod-k path.
    struct DupRouter;
    impl Router for DupRouter {
        fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
            out.clear();
            let p = topo.dmodk_path(s, d);
            out.push(p);
            out.push(p);
        }
        fn name(&self) -> String {
            "dup".into()
        }
    }

    /// A broken router emitting out-of-range ids.
    struct RangeRouter;
    impl Router for RangeRouter {
        fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
            out.clear();
            out.push(PathId(topo.num_paths(s, d) + 7));
        }
        fn name(&self) -> String {
            "range".into()
        }
    }

    #[test]
    fn duplicates_and_out_of_range_are_flagged() {
        let topo = fig3();
        let mut report = Report::new("t", "dup");
        check_router_coverage(&topo, &DupRouter, Budget::Limited(2), &mut report);
        assert!(report
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CoverageDuplicate));

        let mut report = Report::new("t", "range");
        check_router_coverage(&topo, &RangeRouter, Budget::Limited(1), &mut report);
        assert!(report
            .findings
            .iter()
            .any(|d| d.rule == RuleId::CoverageRange));
        // The walk-based shape check never ran on the bad id (it would
        // assert); the range finding stands alone.
        assert!(report
            .findings
            .iter()
            .all(|d| d.rule != RuleId::CoverageUpDown));
    }

    #[test]
    fn fault_aware_coverage_certifies_and_detects_disconnection() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0)); // cuts PN 0 off entirely
        let fa = FaultAware::new(Disjoint::new(4), faults);
        let mut report = Report::new("t", "disjoint(4)+faults");
        check_fault_aware_coverage(&topo, &fa, Budget::Limited(4), &mut report);
        assert!(report.certified(), "{:?}", report.findings);
    }

    #[test]
    fn tables_certify_for_both_orders_and_budgets() {
        for topo in [fig3(), asym()] {
            let full = topo.w_prod(topo.height());
            for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
                for k in [1u64, 2, full] {
                    let ft = ForwardingTables::build(&topo, k, order);
                    let mut report = Report::new("t", format!("{order:?}({k})"));
                    check_tables(&topo, &ft, order, &mut report);
                    assert!(report.certified(), "{order:?} k={k}: {:?}", report.findings);
                }
            }
        }
    }

    #[test]
    fn wrong_order_specification_is_detected() {
        // Audit BottomFirst-built tables against the TopFirst spec: the
        // realization ≡ specification rule must fire (on any topology
        // where the two orders differ).
        let topo = fig3();
        let ft = ForwardingTables::build(&topo, 4, SlotOrder::BottomFirst);
        let mut report = Report::new("t", "mismatch");
        check_tables(&topo, &ft, SlotOrder::TopFirst, &mut report);
        assert!(report
            .findings
            .iter()
            .any(|d| d.rule == RuleId::LftBijection));
    }

    #[test]
    fn identify_path_roundtrips_the_enumeration() {
        let topo = asym();
        let (s, d) = (PnId(0), PnId(topo.num_pns() - 1));
        for p in topo.all_paths(s, d) {
            let mut links = Vec::new();
            topo.walk_path(s, d, p, |l| links.push(l));
            assert_eq!(identify_path(&topo, s, d, &links), Some(p));
        }
    }

    #[test]
    fn budget_expectations() {
        assert_eq!(Budget::Limited(3).expected(8), 3);
        assert_eq!(Budget::Limited(9).expected(8), 8);
        assert_eq!(Budget::Unlimited.expected(8), 8);
    }

    #[test]
    fn dmodk_router_is_budget_one() {
        let topo = asym();
        let mut report = Report::new("t", "d-mod-k");
        check_router_coverage(&topo, &DModK, Budget::Limited(1), &mut report);
        assert!(report.certified());
        // Check runs recorded coverage ground.
        let pairs = (topo.num_pns() as u64) * (topo.num_pns() as u64 - 1);
        assert_eq!(report.checks[0].inspected, pairs);
    }
}
