//! Structured diagnostics: rule catalog, findings, and certificates.
//!
//! Every check the analyzer runs is identified by a [`RuleId`]; a failed
//! check produces a [`Diagnostic`] carrying a machine-readable
//! [`Witness`] (the offending cycle, path or pair) so the failure can be
//! reproduced without re-running the analysis. A clean run produces a
//! [`Report`] whose `findings` list is empty — the deadlock-freedom /
//! coverage *certificate* — together with one [`CheckRun`] entry per
//! rule recording how much ground the check covered.

use std::fmt;
use xgft::{DirectedLinkId, PathId, PnId};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never fails verification.
    Info,
    /// Suspicious but not provably wrong; does not fail verification.
    Warning,
    /// A proven violation of a routing-correctness property.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The rule catalog — every property the analyzer can certify or refute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// The channel-dependency graph contains a cycle (Dally–Seitz):
    /// the routing is *not* provably deadlock-free.
    CdgCycle,
    /// An SD pair yielded a path-set cardinality other than
    /// `min(K, X)` (or `min(K, X_surviving)` under faults).
    CoverageCount,
    /// An SD pair's selection contains duplicate path ids.
    CoverageDuplicate,
    /// A selected path id is outside the pair's path space (`≥ X`).
    CoverageRange,
    /// A realized route is not a loop-free up\*/down\* shortest path
    /// through the pair's NCA level.
    CoverageUpDown,
    /// A disconnected pair did not surface as a typed
    /// [`RouteError::Disconnected`](lmpr_core::RouteError::Disconnected).
    CoverageDisconnect,
    /// LFT slots do not cover the pair's path space with balanced
    /// multiplicity (the slot-bijectivity contract).
    LftBijection,
    /// LFT slot 0 is not the plain d-mod-k path.
    LftSlotZero,
    /// An LFT walk looped or ejected at the wrong processing node.
    LftWalk,
    /// The disjoint heuristic's fork-low guarantee failed: the first
    /// `w_1` selections are not pairwise link-disjoint, or the first
    /// `Π_{i≤t} w_i` selections do not cover every low-digit
    /// combination exactly once.
    DisjointFork,
    /// A static load cross-check violated the Theorem 1 / Theorem 2
    /// bounds (ratio below 1, UMULTI off optimum, or above the `Π w_i`
    /// cap).
    LoadBound,
    /// Runtime flit/packet conservation broke: injected flits no longer
    /// equal delivered + duplicate + dropped + in-network, or the
    /// transfer ledger lost a packet (created ≠ delivered-once +
    /// dropped-with-cause + in-flight).
    RtConservation,
    /// The sink accepted the same packet twice (duplicate suppression
    /// failed) or the duplicate ledger disagrees with transfer states.
    RtDuplicate,
    /// The simulator stopped making forward progress while work remained
    /// (runtime watchdog, the online analogue of a deadlock proof).
    RtProgress,
    /// A live routing selection is invalid against the simulator's
    /// current fault view: a cached path crosses a link the routing
    /// layer already knows is dead, or the selection holds duplicates.
    RtSelection,
    /// A simulator snapshot did not round-trip: restoring it and
    /// re-serializing produced different bytes, or the restored state
    /// disagreed with the original (stats, conservation ledger).
    SnapRoundtrip,
    /// A corrupted, truncated, or version-mismatched snapshot was *not*
    /// rejected with the expected typed error — the integrity envelope
    /// (magic, version, length, checksum) failed to catch it.
    SnapReject,
    /// Resume equivalence broke: a run snapshotted mid-flight and
    /// restored diverged from the uninterrupted run by the horizon.
    SnapResume,
    /// A routing-controller epoch failed its activation certificate:
    /// the reconvergence gate refused to publish the epoch (or an
    /// injected chaos failure forced the refusal) and the controller
    /// fell back to serving the last-good epoch in degraded mode.
    CtlCertificate,
    /// Controller epoch bookkeeping broke: a published epoch did not
    /// advance monotonically, or an epoch-fenced query batch was
    /// answered across two routing generations.
    CtlEpoch,
    /// Controller crash recovery failed: a restored checkpoint did not
    /// reproduce the committed epoch (envelope accepted but the decoded
    /// state disagrees with its recorded digest).
    CtlResume,
    /// Chaos-soak epoch invariant: acknowledged fault batches must be
    /// acked at strictly increasing epochs (one committed epoch per
    /// applied batch), across every induced crash and restart.
    CtlSoakEpoch,
    /// Chaos-soak serving invariant: no reply may ever carry an epoch
    /// outside the set the daemon actually committed and certified.
    CtlSoakServe,
    /// Chaos-soak recovery invariant: a daemon restarted after an
    /// induced crash must recover the newest valid checkpoint — never
    /// regress below an acknowledged commit, never bootstrap genesis
    /// over surviving state.
    CtlSoakRecover,
    /// Chaos-soak accounting invariant: at-least-once delivery must end
    /// with every fault batch applied exactly once (final state digest
    /// equal to the offline replay's; no lost or double-applied batch).
    CtlSoakBatch,
    /// Chaos-soak failover invariant: every promotion of a standby must
    /// catch up to the full submitted feed before serving — the
    /// promoted epoch covers every acknowledged batch, never regresses
    /// below it, and the daemon spawned on the promoted state serves
    /// exactly that epoch.
    CtlSoakFailover,
    /// Chaos-soak generation-fence invariant: generation leases form a
    /// strict +1 chain across promotions, every deposed-generation
    /// write probe is durably rejected, and the feeder's recovery
    /// counters show it actually crossed each fence.
    CtlSoakGen,
}

impl RuleId {
    /// Stable string id used in JSON output and the rule catalog docs.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::CdgCycle => "CDG-CYCLE",
            RuleId::CoverageCount => "COV-COUNT",
            RuleId::CoverageDuplicate => "COV-DUP",
            RuleId::CoverageRange => "COV-RANGE",
            RuleId::CoverageUpDown => "COV-UPDOWN",
            RuleId::CoverageDisconnect => "COV-DISCONNECT",
            RuleId::LftBijection => "LFT-BIJECT",
            RuleId::LftSlotZero => "LFT-SLOT0",
            RuleId::LftWalk => "LFT-WALK",
            RuleId::DisjointFork => "DISJ-FORK",
            RuleId::LoadBound => "LOAD-BOUND",
            RuleId::RtConservation => "RT-CONSERVE",
            RuleId::RtDuplicate => "RT-DUP",
            RuleId::RtProgress => "RT-PROGRESS",
            RuleId::RtSelection => "RT-SELECT",
            RuleId::SnapRoundtrip => "SNAP-ROUNDTRIP",
            RuleId::SnapReject => "SNAP-REJECT",
            RuleId::SnapResume => "SNAP-RESUME",
            RuleId::CtlCertificate => "CTL-CERT",
            RuleId::CtlEpoch => "CTL-EPOCH",
            RuleId::CtlResume => "CTL-RESUME",
            RuleId::CtlSoakEpoch => "CTL-SOAK-EPOCH",
            RuleId::CtlSoakServe => "CTL-SOAK-SERVE",
            RuleId::CtlSoakRecover => "CTL-SOAK-RECOVER",
            RuleId::CtlSoakBatch => "CTL-SOAK-BATCH",
            RuleId::CtlSoakFailover => "CTL-SOAK-FAILOVER",
            RuleId::CtlSoakGen => "CTL-SOAK-GEN",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Machine-checkable evidence attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// No structured witness (the message carries the evidence).
    None,
    /// A dependency cycle: the sequence of directed link ids, with the
    /// first repeated implicitly (`c[0]` depends on `c.last()`).
    Cycle(Vec<DirectedLinkId>),
    /// One offending SD pair.
    Pair {
        /// Source processing node.
        src: PnId,
        /// Destination processing node.
        dst: PnId,
    },
    /// One offending path of an SD pair.
    Path {
        /// Source processing node.
        src: PnId,
        /// Destination processing node.
        dst: PnId,
        /// Path index within the pair's canonical enumeration.
        path: PathId,
    },
    /// One offending LFT slot of an SD pair.
    Slot {
        /// Source processing node.
        src: PnId,
        /// Destination processing node.
        dst: PnId,
        /// LID slot index.
        slot: u64,
    },
}

/// One finding: a rule violation with severity, message and witness.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// Machine-checkable evidence.
    pub witness: Witness,
}

impl Diagnostic {
    /// Shorthand for an error-severity finding.
    pub fn error(rule: RuleId, message: impl Into<String>, witness: Witness) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            message: message.into(),
            witness,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.rule, self.message)
    }
}

/// Coverage record for one rule: what ran, over how much ground.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRun {
    /// The rule that ran.
    pub rule: RuleId,
    /// Units inspected (SD pairs, CDG edges, routes — rule-dependent).
    pub inspected: u64,
    /// Findings the rule produced.
    pub findings: u64,
}

/// The analyzer's output: a certificate when `findings` is empty, a
/// counterexample list otherwise.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Topology label the analysis ran on.
    pub topology: String,
    /// Routing-scheme label.
    pub scheme: String,
    /// Per-rule coverage records, in execution order.
    pub checks: Vec<CheckRun>,
    /// All findings, in discovery order.
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Start an empty report for a (topology, scheme) combination.
    pub fn new(topology: impl Into<String>, scheme: impl Into<String>) -> Self {
        Report {
            topology: topology.into(),
            scheme: scheme.into(),
            checks: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Whether the analysis certifies every property it checked
    /// (no error-severity findings).
    pub fn certified(&self) -> bool {
        !self.findings.iter().any(|d| d.severity == Severity::Error)
    }

    /// Record a completed rule run.
    pub fn record(&mut self, rule: RuleId, inspected: u64, findings_before: usize) {
        self.checks.push(CheckRun {
            rule,
            inspected,
            findings: (self.findings.len() - findings_before) as u64,
        });
    }

    /// Merge another report's checks and findings into this one.
    pub fn absorb(&mut self, other: Report) {
        self.checks.extend(other.checks);
        self.findings.extend(other.findings);
    }

    /// Render as pretty-printed JSON (hand-rolled: the build environment
    /// has no serde; layout matches the bench crate's record output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"topology\": {},\n",
            json_string(&self.topology)
        ));
        out.push_str(&format!("  \"scheme\": {},\n", json_string(&self.scheme)));
        out.push_str(&format!("  \"certified\": {},\n", self.certified()));
        out.push_str("  \"checks\": [");
        for (i, c) in self.checks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"inspected\": {}, \"findings\": {} }}",
                c.rule, c.inspected, c.findings
            ));
        }
        out.push_str(if self.checks.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!("      \"rule\": \"{}\",\n", d.rule));
            out.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
            out.push_str(&format!(
                "      \"message\": {},\n",
                json_string(&d.message)
            ));
            out.push_str(&format!(
                "      \"witness\": {}\n",
                witness_json(&d.witness)
            ));
            out.push_str("    }");
        }
        out.push_str(if self.findings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

fn witness_json(w: &Witness) -> String {
    match w {
        Witness::None => "null".to_owned(),
        Witness::Cycle(links) => {
            let ids: Vec<String> = links.iter().map(|l| l.0.to_string()).collect();
            format!("{{ \"cycle\": [{}] }}", ids.join(", "))
        }
        Witness::Pair { src, dst } => {
            format!("{{ \"src\": {}, \"dst\": {} }}", src.0, dst.0)
        }
        Witness::Path { src, dst, path } => format!(
            "{{ \"src\": {}, \"dst\": {}, \"path\": {} }}",
            src.0, dst.0, path.0
        ),
        Witness::Slot { src, dst, slot } => format!(
            "{{ \"src\": {}, \"dst\": {}, \"slot\": {} }}",
            src.0, dst.0, slot
        ),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_flips_on_error_findings() {
        let mut r = Report::new("XGFT(2; 2,2; 1,2)", "d-mod-k");
        assert!(r.certified());
        r.findings.push(Diagnostic {
            rule: RuleId::CoverageCount,
            severity: Severity::Warning,
            message: "just a warning".into(),
            witness: Witness::None,
        });
        assert!(r.certified(), "warnings do not void the certificate");
        r.findings.push(Diagnostic::error(
            RuleId::CdgCycle,
            "cycle found",
            Witness::Cycle(vec![DirectedLinkId(1), DirectedLinkId(2)]),
        ));
        assert!(!r.certified());
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report::new("t\"1", "s");
        r.findings.push(Diagnostic::error(
            RuleId::LftWalk,
            "line1\nline2",
            Witness::Slot {
                src: PnId(1),
                dst: PnId(2),
                slot: 3,
            },
        ));
        r.record(RuleId::LftWalk, 10, 0);
        let j = r.to_json();
        assert!(j.contains("\"t\\\"1\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"rule\": \"LFT-WALK\""));
        assert!(j.contains("\"certified\": false"));
        assert!(j.contains("\"inspected\": 10"));
        // Balanced braces/brackets (cheap well-formedness probe).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn record_counts_new_findings_only() {
        let mut r = Report::new("t", "s");
        r.findings
            .push(Diagnostic::error(RuleId::CdgCycle, "a", Witness::None));
        let before = r.findings.len();
        r.findings
            .push(Diagnostic::error(RuleId::LoadBound, "b", Witness::None));
        r.record(RuleId::LoadBound, 5, before);
        assert_eq!(r.checks.last().unwrap().findings, 1);
    }
}
