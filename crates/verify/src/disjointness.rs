//! Disjointness certification and static load-bound cross-checks.
//!
//! * [`check_disjoint_fork`] certifies the `disjoint` heuristic's
//!   defining structural guarantees for every SD pair: the first
//!   `min(K, w_1)` selections are pairwise *link*-disjoint, and more
//!   generally the first `min(K, Π_{i≤t} w_i)` selections carry
//!   pairwise-distinct `(u_1, …, u_t)` up-port prefixes — i.e. the
//!   selection forks as low in the tree as the budget allows.
//! * [`check_load_bounds`] computes static worst-case per-link loads
//!   (flow-level, no simulated cycles) and cross-checks them against the
//!   paper's theorems: every measured performance ratio must respect the
//!   Lemma 1 lower bound (`ratio ≥ 1`), UMULTI must *achieve* it
//!   (Theorem 1, `ratio = 1`), every shortest-path scheme stays within
//!   the `Π w_i` concentration cap, and on the Theorem 2 adversarial
//!   pattern the measured d-mod-k ratio must equal the analytic `Π w_i`.

use crate::coverage::Budget;
use crate::{Diagnostic, Report, RuleId, Witness};
use lmpr_core::{DModK, Disjoint, Router};
use lmpr_flowsim::performance_ratio;
use lmpr_traffic::{adversarial_concentration, random_permutation, TrafficMatrix};
use std::collections::HashSet;
use xgft::{PnId, Topology, MAX_HEIGHT};

/// Numerical tolerance for the flow-level load comparisons.
const EPS: f64 = 1e-9;

/// Certify the fork-low structure of a [`Disjoint`] selection on every
/// SD pair.
pub fn check_disjoint_fork(topo: &Topology, router: &Disjoint, report: &mut Report) {
    let n = topo.num_pns();
    let mut paths = Vec::new();
    let mut pairs = 0u64;
    let before = report.findings.len();
    let mut ports = [0u32; MAX_HEIGHT];
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            pairs += 1;
            let (s, d) = (PnId(s), PnId(d));
            router.fill_paths(topo, s, d, &mut paths);
            let kappa = topo.nca_level(s, d);
            // Up-port choices per selection, in selection order.
            let choices: Vec<Vec<u32>> = paths
                .iter()
                .map(|&p| {
                    let k = topo.path_up_ports(s, d, p, &mut ports);
                    ports[..k].to_vec()
                })
                .collect();
            // Prefix distinctness at every level: the first
            // min(|sel|, Π_{i≤t} w_i) selections use every (u_1..u_t)
            // combination at most once.
            for t in 1..=kappa {
                let group = (topo.w_prod(t) as usize).min(choices.len());
                let mut seen = HashSet::new();
                if !choices[..group].iter().all(|c| seen.insert(&c[..t])) {
                    report.findings.push(Diagnostic::error(
                        RuleId::DisjointFork,
                        format!(
                            "pair ({}, {}): the first {group} disjoint selections repeat \
                             a level-{t} up-port prefix — the selection does not fork at \
                             level {t} or below",
                            s.0, d.0
                        ),
                        Witness::Pair { src: s, dst: d },
                    ));
                    break;
                }
            }
            // Full link-disjointness of the first min(|sel|, w_1) paths.
            if kappa >= 1 {
                let group = (topo.spec().w_at(1) as usize).min(paths.len());
                let mut seen_links = HashSet::new();
                let mut clash = false;
                for &p in &paths[..group] {
                    topo.walk_path(s, d, p, |l| {
                        clash |= !seen_links.insert(l);
                    });
                }
                if clash {
                    report.findings.push(Diagnostic::error(
                        RuleId::DisjointFork,
                        format!(
                            "pair ({}, {}): the first {group} disjoint selections share a \
                             directed link — the w_1 link-disjointness guarantee failed",
                            s.0, d.0
                        ),
                        Witness::Pair { src: s, dst: d },
                    ));
                }
            }
        }
    }
    report.record(RuleId::DisjointFork, pairs, before);
}

/// Static worst-case load cross-checks for any router against the
/// paper's analytic bounds, over the Theorem 2 adversarial pattern (when
/// the topology hosts it) and a handful of random permutations.
pub fn check_load_bounds<R: Router + ?Sized>(
    topo: &Topology,
    router: &R,
    budget: Budget,
    report: &mut Report,
) {
    let before = report.findings.len();
    let mut patterns: Vec<(String, TrafficMatrix)> = Vec::new();
    let adversarial = adversarial_concentration(topo);
    if let Some(p) = &adversarial {
        patterns.push(("theorem-2 concentration".to_owned(), p.tm.clone()));
    }
    for seed in 0..3u64 {
        patterns.push((
            format!("random permutation (seed {seed})"),
            TrafficMatrix::permutation(&random_permutation(topo.num_pns(), seed)),
        ));
    }
    let cap = topo.w_prod(topo.height()) as f64;
    for (label, tm) in &patterns {
        let ratio = performance_ratio(topo, router, tm);
        if ratio < 1.0 - EPS {
            report.findings.push(Diagnostic::error(
                RuleId::LoadBound,
                format!(
                    "{label}: performance ratio {ratio:.6} is below the Lemma 1 \
                     lower bound of 1 — the static load model is inconsistent"
                ),
                Witness::None,
            ));
        }
        if ratio > cap + EPS {
            report.findings.push(Diagnostic::error(
                RuleId::LoadBound,
                format!(
                    "{label}: performance ratio {ratio:.6} exceeds the Π w_i = {cap} \
                     concentration cap for shortest-path routing"
                ),
                Witness::None,
            ));
        }
        if budget == Budget::Unlimited && (ratio - 1.0).abs() > EPS {
            report.findings.push(Diagnostic::error(
                RuleId::LoadBound,
                format!(
                    "{label}: UMULTI measured ratio {ratio:.6} ≠ 1 — Theorem 1 \
                     (UMULTI achieves the sub-tree-cut bound) is violated"
                ),
                Witness::None,
            ));
        }
    }
    // Self-consistency of the analytic pattern: measured d-mod-k
    // concentration must equal the Theorem 2 prediction exactly.
    if let Some(p) = &adversarial {
        let measured = performance_ratio(topo, &DModK, &p.tm);
        if (measured - p.ratio).abs() > EPS {
            report.findings.push(Diagnostic::error(
                RuleId::LoadBound,
                format!(
                    "theorem-2 concentration: measured d-mod-k ratio {measured:.6} \
                     differs from the analytic Π w_i = {:.6}",
                    p.ratio
                ),
                Witness::None,
            ));
        }
    }
    report.record(RuleId::LoadBound, patterns.len() as u64, before);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpr_core::{PathSet, ShiftOne, Umulti};
    use xgft::{PathId, XgftSpec};

    fn wide() -> Topology {
        // w_1 = 2 so the link-disjointness clause has teeth.
        Topology::new(XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).expect("valid spec"))
    }

    #[test]
    fn disjoint_certifies_across_budgets() {
        let topo = wide();
        for k in [1u64, 2, 4, 8] {
            let mut report = Report::new("t", format!("disjoint({k})"));
            check_disjoint_fork(&topo, &Disjoint::new(k), &mut report);
            assert!(report.certified(), "k={k}: {:?}", report.findings);
        }
    }

    #[test]
    fn shift_one_fails_the_fork_low_certificate() {
        // shift-1 spreads at the *top* level: its first two selections
        // repeat the level-1 prefix on full-height pairs, so feeding it
        // through the disjoint certificate must produce findings. (The
        // check takes a Disjoint router by type; emulate the failure by
        // checking the structural property directly on shift-1's sets.)
        let topo = wide();
        // Pair (0, 4): d-mod-k index 1, so shift-1 K=2 selects paths
        // 1 = (0,0,1) and 2 = (0,1,0) — same level-1 up-port. (A pair
        // like (0, 7) would carry through every digit and accidentally
        // fork low.)
        let (s, d) = (PnId(0), PnId(4));
        let set: PathSet = ShiftOne::new(2).path_set(&topo, s, d);
        let mut u = [0u32; MAX_HEIGHT];
        let firsts: HashSet<u32> = set
            .paths()
            .iter()
            .map(|&p| {
                topo.path_up_ports(s, d, p, &mut u);
                u[0]
            })
            .collect();
        assert_eq!(firsts.len(), 1, "shift-1 K=2 shares the level-1 up-port");
    }

    #[test]
    fn corrupted_selection_is_flagged() {
        // A "disjoint" router that actually returns shift-1-style
        // consecutive ids trips the prefix rule. Simulate by checking a
        // Disjoint router against a topology where we tamper: simplest is
        // to run the real check and assert it still accepts, then verify
        // the negative path via the structural helper above. Here, feed a
        // pair-specific bad selection through a tiny shim router.
        struct BadDisjoint;
        impl Router for BadDisjoint {
            fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
                // Consecutive ids starting at d-mod-k: forks high.
                out.clear();
                let x = topo.num_paths(s, d);
                let i = topo.dmodk_path(s, d).0;
                for n in 0..2u64.min(x) {
                    out.push(PathId((i + n) % x));
                }
            }
            fn name(&self) -> String {
                "bad".into()
            }
        }
        // The typed entry point takes &Disjoint; exercise the internals
        // by comparing: the bad router's selections violate the property
        // the certificate enforces on at least one pair.
        let topo = wide();
        let mut bad_pairs = 0;
        let mut paths = Vec::new();
        let mut u = [0u32; MAX_HEIGHT];
        for s in 0..topo.num_pns() {
            for d in 0..topo.num_pns() {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                BadDisjoint.fill_paths(&topo, s, d, &mut paths);
                if paths.len() < 2 {
                    continue;
                }
                let mut firsts = HashSet::new();
                for &p in &paths {
                    topo.path_up_ports(s, d, p, &mut u);
                    firsts.insert(u[0]);
                }
                if firsts.len() < 2 {
                    bad_pairs += 1;
                }
            }
        }
        assert!(bad_pairs > 0, "consecutive ids must fork high somewhere");
    }

    #[test]
    fn load_bounds_certify_for_heuristics_and_umulti() {
        // A topology that hosts the Theorem 2 pattern.
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).expect("valid spec"));
        for (router, budget) in [
            (Box::new(DModK) as Box<dyn Router>, Budget::Limited(1)),
            (Box::new(Disjoint::new(2)), Budget::Limited(2)),
            (Box::new(Umulti), Budget::Unlimited),
        ] {
            let mut report = Report::new("t", router.name());
            check_load_bounds(&topo, router.as_ref(), budget, &mut report);
            assert!(
                report.certified(),
                "{}: {:?}",
                router.name(),
                report.findings
            );
            assert_eq!(report.checks.last().expect("recorded").inspected, 4);
        }
    }

    #[test]
    fn umulti_claim_on_single_path_router_is_refuted() {
        // Claiming "unlimited" semantics for d-mod-k must trip the
        // Theorem 1 rule on the adversarial pattern (ratio = Π w_i ≠ 1).
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).expect("valid spec"));
        let mut report = Report::new("t", "bogus-umulti");
        check_load_bounds(&topo, &DModK, Budget::Unlimited, &mut report);
        assert!(!report.certified());
        assert!(report.findings.iter().all(|f| f.rule == RuleId::LoadBound));
    }

    #[test]
    fn load_bounds_run_without_the_adversarial_pattern() {
        // fig3's w_1 = 1 tree cannot host the Theorem 2 construction;
        // only the permutations are checked.
        let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).expect("valid spec"));
        assert!(adversarial_concentration(&topo).is_none());
        let mut report = Report::new("t", "disjoint(4)");
        check_load_bounds(&topo, &Disjoint::new(4), Budget::Limited(4), &mut report);
        assert!(report.certified(), "{:?}", report.findings);
        assert_eq!(report.checks.last().expect("recorded").inspected, 3);
    }
}
