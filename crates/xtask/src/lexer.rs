//! The masked lexer every xtask source scan is built on.
//!
//! Both `cargo xtask lint` (the panic ratchet) and `cargo xtask
//! analyze` (the determinism / cast / concurrency analyzer) work on a
//! *masked* copy of each source file: comment bodies, string and char
//! literal contents are blanked to spaces (line structure preserved, so
//! reported line numbers stay true), and `#[cfg(test)]`-attributed
//! items are blanked wholesale. A pattern match on the masked text is
//! therefore a match on *code*, never on docs, messages or tests.
//!
//! Handled literal forms: line and (nested) block comments, ordinary
//! strings with escapes, raw strings `r"…"`/`r#"…"#`, byte strings
//! `b"…"`, raw byte strings `br#"…"#`, char and byte-char literals,
//! and lifetimes (which must *not* be mistaken for unterminated chars).

/// Mask comments/strings and then `#[cfg(test)]` items: the standard
/// preprocessing pipeline for every rule scan.
pub fn mask(text: &str) -> String {
    mask_tests(&mask_comments_and_strings(text))
}

/// Replace comment bodies and string/char contents with spaces,
/// preserving line structure.
pub fn mask_comments_and_strings(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            // Line comment (incl. doc comments): blank to end of line.
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if b == b'/' && next == Some(b'*') {
            // Block comment, possibly nested.
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'r'
            && (next == Some(b'"') || next == Some(b'#'))
            && raw_string_hashes(bytes, i).is_some()
        {
            // Raw string r"…", r#"…"#, … (also reached for the `r#`
            // tail of a raw *byte* string br#"…"#: the leading `b` is
            // ordinary output and the raw scan takes over here).
            let Some(hashes) = raw_string_hashes(bytes, i) else {
                unreachable!("guarded by the condition above");
            };
            out.push(b' '); // 'r'
            i += 1;
            out.resize(out.len() + hashes, b' ');
            i += hashes;
            out.push(b'"');
            i += 1; // opening quote
            loop {
                if i >= bytes.len() {
                    break;
                }
                if bytes[i] == b'"' && closes_raw_string(bytes, i, hashes) {
                    out.push(b'"');
                    i += 1;
                    out.resize(out.len() + hashes, b' ');
                    i += hashes;
                    break;
                }
                out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
        } else if b == b'"' {
            // Ordinary or byte string: blank contents, keep quotes and
            // newlines. (For b"…" the prefix byte is ordinary output and
            // this branch starts at the quote.)
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'\'' {
            // Char literal or lifetime. A literal closes within a few
            // bytes ('a', '\n', '\u{1F600}'); a lifetime has no closing
            // quote before a non-ident byte.
            if let Some(end) = char_literal_end(bytes, i) {
                out.push(b'\'');
                for &byte in &bytes[i + 1..end] {
                    out.push(if byte == b'\n' { b'\n' } else { b' ' });
                }
                out.push(b'\'');
                i = end + 1;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// If `bytes[i..]` starts a raw string literal, the number of `#`s.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes[i], b'r');
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Whether the quote at `i` closes a raw string with `hashes` hashes.
fn closes_raw_string(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Byte index of the closing quote of a char literal starting at `i`,
/// or `None` when `'` starts a lifetime instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2; // escape head, e.g. \n \u \'
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j);
    }
    // 'x' style: exactly one char (up to 4 UTF-8 bytes) then a quote.
    for k in 1..=4 {
        if bytes.get(j + k) == Some(&b'\'') {
            // Distinguish 'a' (literal) from 'a  (lifetime) — a literal
            // has its quote immediately after one scalar value. Reject
            // ident-ish multi-byte sequences like 'static'.
            if k == 1
                || !bytes[j..j + k]
                    .iter()
                    .all(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                return Some(j + k);
            }
        }
    }
    None
}

/// Blank `#[cfg(test)]`-gated items: from the attribute through the end
/// of the item's brace-balanced block.
pub fn mask_tests(masked: &str) -> String {
    let bytes = masked.as_bytes();
    let mut out = bytes.to_vec();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        // Find the item's opening brace, then blank through its close.
        let mut j = i + needle.len();
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            i = j;
            continue;
        }
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for b in &mut out[i..j] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        i = j;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether `bytes[i]` begins an identifier occurrence of `word`:
/// matched exactly, with non-identifier bytes (or the text boundary) on
/// both sides.
pub fn is_word_at(text: &str, i: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if i + word.len() > bytes.len() || &bytes[i..i + word.len()] != word.as_bytes() {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
    let after_ok = i + word.len() == bytes.len() || !is_ident_byte(bytes[i + word.len()]);
    before_ok && after_ok
}

/// Whether a byte can appear in a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Positions (line, masked?) probe: the pattern survives masking
    /// exactly when it is code.
    fn masked_contains(src: &str, pat: &str) -> bool {
        mask(src).contains(pat)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"
fn f() {
    // this .unwrap() is a comment
    /* and panic! here too */
    let s = "mentions .unwrap() and panic! in a string";
    let c = '"';
    g(s, c);
}
"#;
        let m = mask(src);
        assert!(!m.contains(".unwrap()"));
        assert!(!m.contains("panic!"));
        // Line structure intact.
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn code_survives_masking() {
        assert!(masked_contains("fn f() { x.unwrap(); }\n", ".unwrap()"));
    }

    #[test]
    fn cfg_test_blocks_are_blanked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() { y.unwrap() }\n";
        let m = mask(src);
        assert_eq!(m.matches(".unwrap()").count(), 1);
        assert!(m.lines().nth(5).is_some_and(|l| l.contains(".unwrap()")));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { h.unwrap() }\n";
        let m = mask(src);
        assert!(m.lines().nth(1).is_some_and(|l| l.contains(".unwrap()")));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() { let s = r#\"has .unwrap() inside\"#; g(s) }\n";
        assert!(!masked_contains(src, ".unwrap()"));
    }

    #[test]
    fn byte_strings_are_masked() {
        let src = "fn f() { let s = b\"has .unwrap() inside\"; g(s) }\n";
        assert!(!masked_contains(src, ".unwrap()"));
        let src = "fn f() { let s = br#\"raw byte .unwrap()\"#; g(s) }\n";
        assert!(!masked_contains(src, ".unwrap()"));
        let src = "fn f() { let c = b'x'; x.unwrap() }\n";
        assert!(masked_contains(src, ".unwrap()"));
    }

    #[test]
    fn nested_block_comments_are_masked_fully() {
        let src = "fn f() {\n    /* outer /* inner panic! */ still comment .unwrap() */\n    x.unwrap();\n}\n";
        let m = mask(src);
        assert!(!m.contains("panic!"));
        assert_eq!(m.matches(".unwrap()").count(), 1, "{m}");
        assert!(m.lines().nth(2).is_some_and(|l| l.contains(".unwrap()")));
    }

    #[test]
    fn multiline_strings_are_masked() {
        let src = "fn f() { let s = \"line one \\\n        .unwrap() continues\"; g(s) }\n";
        assert!(!masked_contains(src, ".unwrap()"));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let src = "fn f() { let s = \"a \\\" b .unwrap() c\"; s.len() }\n";
        assert!(!masked_contains(src, ".unwrap()"));
    }

    #[test]
    fn word_boundaries() {
        let t = "let counts_map = counts;";
        let i = t.find("counts;").expect("present");
        assert!(is_word_at(t, i, "counts"));
        assert!(!is_word_at(t, 4, "counts")); // inside counts_map
        assert!(is_word_at("counts", 0, "counts"));
    }
}
