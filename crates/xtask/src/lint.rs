//! `cargo xtask lint`: the panic ratchet.
//!
//! A source-level pass that forbids *new* `unwrap()` / `expect()` /
//! `panic!` sites in library code. Library crates must surface failures
//! as typed errors (`RouteError`, `SpecError`, `SimError`, …); the
//! vetted remainder — documented invariant panics such as `K ≥ 1`
//! constructor guards — is pinned in `crates/xtask/lint-allowlist.txt`
//! as an exact per-file ratchet: the gate fails when a file gains a
//! site (fix it or justify it in the allowlist) *and* when a file drops
//! below its pinned count (tighten the allowlist so the ratchet never
//! slackens).
//!
//! Test code, comments and string literals are ignored via the shared
//! masked lexer ([`crate::lexer`]); vendored dependency stand-ins
//! (`rand`, `proptest`, `criterion`), the experiment binaries (`bench`)
//! and this crate are out of scope.

use crate::lexer;
use crate::workspace::{collect_rs_files, denied, rel, workspace_root};
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Library roots the panic lint applies to, relative to the workspace
/// root: every crate whose API promises typed errors.
const LINT_ROOTS: &[&str] = &[
    "crates/xgft/src",
    "crates/core/src",
    "crates/traffic/src",
    "crates/flowsim/src",
    "crates/flitsim/src",
    "crates/verify/src",
    "crates/ctld/src",
    "src",
];

const ALLOWLIST: &str = "crates/xtask/lint-allowlist.txt";

/// The forbidden call forms. `.unwrap()` is matched exactly so
/// `unwrap_or_else` and friends stay legal; `.expect(` does not match
/// `.expect_err(`.
const PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// One matched forbidden site.
struct Site {
    line: usize,
    pattern: &'static str,
}

/// Scan one source file for forbidden sites outside test code.
fn scan(text: &str) -> Vec<Site> {
    let masked = lexer::mask(text);
    let mut sites = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        for pat in PATTERNS {
            if line.contains(pat) {
                sites.push(Site {
                    line: i + 1,
                    pattern: pat,
                });
            }
        }
    }
    sites
}

pub fn lint(update: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in LINT_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    // Per-file counts of forbidden sites outside test code.
    let mut counts: Vec<(String, Vec<Site>)> = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("xtask lint: cannot read {}", file.display());
            return ExitCode::FAILURE;
        };
        let sites = scan(&text);
        if !sites.is_empty() {
            counts.push((rel(&root, file), sites));
        }
    }

    if update {
        let mut out = String::from(
            "# Exact per-file counts of vetted unwrap()/expect()/panic! sites in\n\
             # library code (test modules excluded). Regenerate with\n\
             # `cargo xtask lint --update` after vetting any change; the lint\n\
             # fails on both increases (new panic paths) and decreases (stale\n\
             # pins), so this file always reflects reality.\n\
             # Files under crates/flitsim/src and crates/ctld/src can never be\n\
             # pinned here: the simulator modules and the controller daemon are\n\
             # panic-free by construction.\n",
        );
        let mut refused = false;
        for (file, sites) in &counts {
            if denied(file) {
                refused = true;
                eprintln!(
                    "xtask lint: {file}: {} site(s) in a deny-listed directory — these \
                     cannot be vetted; convert them to typed errors:",
                    sites.len()
                );
                for s in sites {
                    eprintln!("  {file}:{}: {}", s.line, s.pattern);
                }
                continue;
            }
            let _ = writeln!(out, "{} {}", sites.len(), file);
        }
        if refused {
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(root.join(ALLOWLIST), out) {
            eprintln!("xtask lint: cannot write allowlist: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: allowlist updated ({} files, {} sites)",
            counts.len(),
            counts.iter().map(|(_, s)| s.len()).sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = match read_allowlist(&root.join(ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    // Deny-listed directories reject their allowlist entries outright,
    // so a site there can never be vetted away.
    for (file, budget) in &allowed {
        if *budget > 0 && denied(file) {
            failed = true;
            eprintln!(
                "xtask lint: {ALLOWLIST} pins {budget} site(s) for {file}, which is in a \
                 deny-listed directory — the simulator modules must stay panic-free"
            );
        }
    }
    for (file, sites) in &counts {
        let budget = if denied(file) {
            0
        } else {
            allowed
                .iter()
                .find(|(f, _)| f == file)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        match sites.len().cmp(&budget) {
            std::cmp::Ordering::Greater => {
                failed = true;
                eprintln!(
                    "xtask lint: {file}: {} unwrap/expect/panic site(s), allowlist permits \
                     {budget} — convert the new site(s) to typed errors or vet them in \
                     {ALLOWLIST}:",
                    sites.len()
                );
                for s in sites {
                    eprintln!("  {file}:{}: {}", s.line, s.pattern);
                }
            }
            std::cmp::Ordering::Less => {
                failed = true;
                eprintln!(
                    "xtask lint: {file}: {} site(s) but allowlist pins {budget} — the file \
                     improved; tighten the pin (`cargo xtask lint --update`)",
                    sites.len()
                );
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    // Entries for files that now have zero sites (or vanished).
    for (file, budget) in &allowed {
        if *budget > 0 && !counts.iter().any(|(f, _)| f == file) {
            failed = true;
            eprintln!(
                "xtask lint: {file}: no sites remain but allowlist pins {budget} — \
                 remove the stale entry (`cargo xtask lint --update`)"
            );
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        let total: usize = counts.iter().map(|(_, s)| s.len()).sum();
        println!(
            "xtask lint: ok ({} library files scanned, {total} vetted sites)",
            files.len()
        );
        ExitCode::SUCCESS
    }
}

fn read_allowlist(path: &Path) -> Result<Vec<(String, usize)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(' ')
            .ok_or_else(|| format!("{}:{}: expected `<count> <path>`", path.display(), i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|e| format!("{}:{}: bad count: {e}", path.display(), i + 1))?;
        out.push((file.trim().to_owned(), count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = r#"
fn f() {
    // this .unwrap() is a comment
    /* and panic! here too */
    let s = "mentions .unwrap() and panic! in a string";
    let c = '"';
    g(s, c);
}
"#;
        assert!(scan(src).is_empty());
    }

    #[test]
    fn real_sites_count_with_line_numbers() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[1].line, 3);
        assert_eq!(sites[2].line, 4);
    }

    #[test]
    fn unwrap_variants_are_legal() {
        let src = "fn f() { x.unwrap_or_else(|| 0); x.unwrap_or(1); r.expect_err(\"e\"); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\nfn lib2() { y.unwrap() }\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 7);
    }
}
