//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task today is `lint`: a source-level static-analysis pass
//! that forbids *new* `unwrap()` / `expect()` / `panic!` sites in
//! library code. Library crates must surface failures as typed errors
//! (`RouteError`, `SpecError`, `SimError`, …); the vetted remainder —
//! documented invariant panics such as `K ≥ 1` constructor guards — is
//! pinned in `crates/xtask/lint-allowlist.txt` as an exact per-file
//! ratchet: the gate fails when a file gains a site (fix it or justify
//! it in the allowlist) *and* when a file drops below its pinned count
//! (tighten the allowlist so the ratchet never slackens).
//!
//! Test code (`#[cfg(test)]` modules), comments, doc comments and string
//! literals are ignored; vendored dependency stand-ins (`rand`,
//! `proptest`, `criterion`), the experiment binaries (`bench`) and this
//! crate are out of scope.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Library roots the panic lint applies to, relative to the workspace
/// root: every crate whose API promises typed errors.
const LINT_ROOTS: &[&str] = &[
    "crates/xgft/src",
    "crates/core/src",
    "crates/traffic/src",
    "crates/flowsim/src",
    "crates/flitsim/src",
    "crates/verify/src",
    "crates/ctld/src",
    "src",
];

const ALLOWLIST: &str = "crates/xtask/lint-allowlist.txt";

/// Directories whose files may never appear in the allowlist: the
/// modules decomposed out of the old `sim.rs` monolith started
/// panic-free and must stay that way, and the controller daemon — a
/// long-running service whose whole point is surviving faults — was
/// born under the same rule. A new site in either is always a lint
/// failure, never a vetting candidate.
const DENY_DIRS: &[&str] = &["crates/flitsim/src", "crates/ctld/src"];

/// Whether an allowlist entry for `file` is categorically forbidden.
fn denied(file: &str) -> bool {
    DENY_DIRS
        .iter()
        .any(|d| file.starts_with(&format!("{d}/")) || file == *d)
}

/// The forbidden call forms. `.unwrap()` is matched exactly so
/// `unwrap_or_else` and friends stay legal; `.expect(` does not match
/// `.expect_err(`.
const PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let update = matches!(args.next().as_deref(), Some("--update"));
            lint(update)
        }
        Some(other) => {
            eprintln!("unknown task: {other}\nusage: cargo xtask lint [--update]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--update]");
            ExitCode::from(2)
        }
    }
}

/// One matched forbidden site.
struct Site {
    line: usize,
    pattern: &'static str,
}

fn lint(update: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in LINT_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    // Per-file counts of forbidden sites outside test code.
    let mut counts: Vec<(String, Vec<Site>)> = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("xtask lint: cannot read {}", file.display());
            return ExitCode::FAILURE;
        };
        let sites = scan(&text);
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .into_owned();
        if !sites.is_empty() {
            counts.push((rel, sites));
        }
    }

    if update {
        let mut out = String::from(
            "# Exact per-file counts of vetted unwrap()/expect()/panic! sites in\n\
             # library code (test modules excluded). Regenerate with\n\
             # `cargo xtask lint --update` after vetting any change; the lint\n\
             # fails on both increases (new panic paths) and decreases (stale\n\
             # pins), so this file always reflects reality.\n\
             # Files under crates/flitsim/src and crates/ctld/src can never be\n\
             # pinned here: the simulator modules and the controller daemon are\n\
             # panic-free by construction.\n",
        );
        let mut refused = false;
        for (file, sites) in &counts {
            if denied(file) {
                refused = true;
                eprintln!(
                    "xtask lint: {file}: {} site(s) in a deny-listed directory — these \
                     cannot be vetted; convert them to typed errors:",
                    sites.len()
                );
                for s in sites {
                    eprintln!("  {file}:{}: {}", s.line, s.pattern);
                }
                continue;
            }
            let _ = writeln!(out, "{} {}", sites.len(), file);
        }
        if refused {
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(root.join(ALLOWLIST), out) {
            eprintln!("xtask lint: cannot write allowlist: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: allowlist updated ({} files, {} sites)",
            counts.len(),
            counts.iter().map(|(_, s)| s.len()).sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = match read_allowlist(&root.join(ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    // Deny-listed directories reject their allowlist entries outright,
    // so a site there can never be vetted away.
    for (file, budget) in &allowed {
        if *budget > 0 && denied(file) {
            failed = true;
            eprintln!(
                "xtask lint: {ALLOWLIST} pins {budget} site(s) for {file}, which is in a \
                 deny-listed directory — the simulator modules must stay panic-free"
            );
        }
    }
    for (file, sites) in &counts {
        let budget = if denied(file) {
            0
        } else {
            allowed
                .iter()
                .find(|(f, _)| f == file)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        match sites.len().cmp(&budget) {
            std::cmp::Ordering::Greater => {
                failed = true;
                eprintln!(
                    "xtask lint: {file}: {} unwrap/expect/panic site(s), allowlist permits \
                     {budget} — convert the new site(s) to typed errors or vet them in \
                     {ALLOWLIST}:",
                    sites.len()
                );
                for s in sites {
                    eprintln!("  {file}:{}: {}", s.line, s.pattern);
                }
            }
            std::cmp::Ordering::Less => {
                failed = true;
                eprintln!(
                    "xtask lint: {file}: {} site(s) but allowlist pins {budget} — the file \
                     improved; tighten the pin (`cargo xtask lint --update`)",
                    sites.len()
                );
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    // Entries for files that now have zero sites (or vanished).
    for (file, budget) in &allowed {
        if *budget > 0 && !counts.iter().any(|(f, _)| f == file) {
            failed = true;
            eprintln!(
                "xtask lint: {file}: no sites remain but allowlist pins {budget} — \
                 remove the stale entry (`cargo xtask lint --update`)"
            );
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        let total: usize = counts.iter().map(|(_, s)| s.len()).sum();
        println!(
            "xtask lint: ok ({} library files scanned, {total} vetted sites)",
            files.len()
        );
        ExitCode::SUCCESS
    }
}

/// `CARGO_MANIFEST_DIR` is `crates/xtask`; the workspace root is two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn read_allowlist(path: &Path) -> Result<Vec<(String, usize)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(' ')
            .ok_or_else(|| format!("{}:{}: expected `<count> <path>`", path.display(), i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|e| format!("{}:{}: bad count: {e}", path.display(), i + 1))?;
        out.push((file.trim().to_owned(), count));
    }
    Ok(out)
}

/// Scan one source file for forbidden sites outside test code.
///
/// Works on a *masked* copy of the source where comment bodies and
/// string/char-literal contents are blanked, so matches in docs and
/// messages don't count; `#[cfg(test)]`-attributed items (and everything
/// inside their braces) are blanked too.
fn scan(text: &str) -> Vec<Site> {
    let masked = mask_tests(&mask_comments_and_strings(text));
    let mut sites = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        for pat in PATTERNS {
            if line.contains(pat) {
                sites.push(Site {
                    line: i + 1,
                    pattern: pat,
                });
            }
        }
    }
    sites
}

/// Replace comment bodies and string/char contents with spaces,
/// preserving line structure.
fn mask_comments_and_strings(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            // Line comment (incl. doc comments): blank to end of line.
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if b == b'/' && next == Some(b'*') {
            // Block comment, possibly nested.
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'r'
            && (next == Some(b'"') || next == Some(b'#'))
            && raw_string_hashes(bytes, i).is_some()
        {
            // Raw string r"…", r#"…"#, …
            let hashes = raw_string_hashes(bytes, i).expect("checked above");
            out.push(b' '); // 'r'
            i += 1;
            out.resize(out.len() + hashes, b' ');
            i += hashes;
            out.push(b'"');
            i += 1; // opening quote
            loop {
                if i >= bytes.len() {
                    break;
                }
                if bytes[i] == b'"' && closes_raw_string(bytes, i, hashes) {
                    out.push(b'"');
                    i += 1;
                    out.resize(out.len() + hashes, b' ');
                    i += hashes;
                    break;
                }
                out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
        } else if b == b'"' {
            // Ordinary string: blank contents, keep quotes and newlines.
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'\'' {
            // Char literal or lifetime. A literal closes within a few
            // bytes ('a', '\n', '\u{1F600}'); a lifetime has no closing
            // quote before a non-ident byte.
            if let Some(end) = char_literal_end(bytes, i) {
                out.push(b'\'');
                for &byte in &bytes[i + 1..end] {
                    out.push(if byte == b'\n' { b'\n' } else { b' ' });
                }
                out.push(b'\'');
                i = end + 1;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// If `bytes[i..]` starts a raw string literal, the number of `#`s.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes[i], b'r');
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Whether the quote at `i` closes a raw string with `hashes` hashes.
fn closes_raw_string(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Byte index of the closing quote of a char literal starting at `i`,
/// or `None` when `'` starts a lifetime instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2; // escape head, e.g. \n \u \'
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j);
    }
    // 'x' style: exactly one char (up to 4 UTF-8 bytes) then a quote.
    for k in 1..=4 {
        if bytes.get(j + k) == Some(&b'\'') {
            // Distinguish 'a' (literal) from 'a  (lifetime) — a literal
            // has its quote immediately after one scalar value. Reject
            // ident-ish multi-byte sequences like 'static'.
            if k == 1
                || !bytes[j..j + k]
                    .iter()
                    .all(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                return Some(j + k);
            }
        }
    }
    None
}

/// Blank `#[cfg(test)]`-gated items: from the attribute through the end
/// of the item's brace-balanced block.
fn mask_tests(masked: &str) -> String {
    let bytes = masked.as_bytes();
    let mut out = bytes.to_vec();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        // Find the item's opening brace, then blank through its close.
        let mut j = i + needle.len();
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            i = j;
            continue;
        }
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for b in &mut out[i..j] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        i = j;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_list_covers_the_simulator_sources_exactly() {
        assert!(denied("crates/flitsim/src/engine.rs"));
        assert!(denied("crates/flitsim/src/sweep.rs"));
        assert!(denied("crates/ctld/src/controller.rs"));
        assert!(denied("crates/ctld/src/bin/ctld.rs"));
        assert!(!denied("crates/flitsim/srcx/other.rs"));
        assert!(!denied("crates/core/src/selection.rs"));
        assert!(!denied("crates/flowsim/src/loads.rs"));
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = r#"
fn f() {
    // this .unwrap() is a comment
    /* and panic! here too */
    let s = "mentions .unwrap() and panic! in a string";
    let c = '"';
    g(s, c);
}
"#;
        assert!(scan(src).is_empty());
    }

    #[test]
    fn real_sites_count_with_line_numbers() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[1].line, 3);
        assert_eq!(sites[2].line, 4);
    }

    #[test]
    fn unwrap_variants_are_legal() {
        let src = "fn f() { x.unwrap_or_else(|| 0); x.unwrap_or(1); r.expect_err(\"e\"); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\nfn lib2() { y.unwrap() }\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 7);
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { h.unwrap() }\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 2);
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() { let s = r#\"has .unwrap() inside\"#; g(s) }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn multiline_strings_are_masked() {
        let src = "fn f() { let s = \"line one \\\n        .unwrap() continues\"; g(s) }\n";
        assert!(scan(src).is_empty());
    }
}
