//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! * `lint [--update]` — the panic ratchet: no *new* `unwrap()` /
//!   `expect()` / `panic!` sites in library code ([`lint`]).
//! * `analyze [--ci|--update]` — the determinism / cast-safety /
//!   concurrency-discipline analyzer with `lmpr_verify`-style JSON
//!   certificates ([`analyze`]).
//!
//! Both passes share the masked lexer in [`lexer`] and the allowlist
//! ratchet philosophy: exact per-file pins that fail on increases *and*
//! decreases, with deny-listed directories that can never be pinned.

#![forbid(unsafe_code)]

mod analyze;
mod lexer;
mod lint;
mod report;
mod workspace;

use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask <task>\n\
    \x20 lint [--update]          panic ratchet over library code\n\
    \x20 analyze [--ci|--update]  determinism/cast/concurrency analyzer";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let update = matches!(args.next().as_deref(), Some("--update"));
            lint::lint(update)
        }
        Some("analyze") => match args.next().as_deref() {
            Some("--update") => analyze::analyze(true),
            // `--ci` is the explicit gate spelling; bare `analyze`
            // behaves identically.
            Some("--ci") | None => analyze::analyze(false),
            Some(other) => {
                eprintln!("unknown analyze flag: {other}\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown task: {other}\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
