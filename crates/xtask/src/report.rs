//! `lmpr_verify`-style diagnostics for the source analyzer.
//!
//! The analyzer certifies *code* properties the way `crates/verify`
//! certifies routing properties, and its output deliberately mirrors
//! `lmpr_verify::diag`: a [`Report`] whose `findings` list is empty is
//! the certificate, one [`CheckRun`] per rule records coverage, and
//! every [`Diagnostic`] carries a machine-readable witness — here a
//! `{file, line}` source location instead of an SD pair. (xtask stays
//! dependency-free, so the types are local rather than imported.)

use std::fmt;

/// How bad a finding is. Both kinds fail the gate (the ratchet is
/// exact); the severity tells the reader whether the tree got worse
/// (`Error`: a new or denied hazard) or merely drifted from its pins
/// (`Warning`: an improvement or stale entry needing `--update`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The tree improved past its pins or an entry went stale;
    /// regenerate the allowlist.
    Warning,
    /// A new hazard, or a site that can never be vetted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The analyzer's rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Unordered `HashMap`/`HashSet` iteration in code feeding
    /// serialized output: a bit-determinism hazard.
    DetOrder,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// approved timing modules.
    DetTime,
    /// A narrowing `as` cast (ratcheted toward `try_from` or a
    /// documented invariant helper).
    CastNarrow,
    /// Thread spawning, lock construction or channel construction
    /// outside the approved concurrency modules, or an inconsistent
    /// lexical lock-acquisition order.
    ThreadDiscipline,
    /// A crate root missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
}

/// Every rule, in execution/report order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::DetOrder,
    RuleId::DetTime,
    RuleId::CastNarrow,
    RuleId::ThreadDiscipline,
    RuleId::UnsafeForbid,
];

impl RuleId {
    /// Stable string id used in JSON output and the allowlist file.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::DetOrder => "DET-ORDER",
            RuleId::DetTime => "DET-TIME",
            RuleId::CastNarrow => "CAST-NARROW",
            RuleId::ThreadDiscipline => "THREAD-DISCIPLINE",
            RuleId::UnsafeForbid => "UNSAFE-FORBID",
        }
    }

    /// Parse an allowlist rule column.
    pub fn parse(s: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule violation with its source-location witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending site (0 = whole file).
    pub line: usize,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Coverage record for one rule: what ran, over how much ground.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRun {
    /// The rule that ran.
    pub rule: RuleId,
    /// Units inspected (files — or crate roots for UNSAFE-FORBID).
    pub inspected: u64,
    /// Findings the rule produced (before ratchet vetting).
    pub findings: u64,
}

/// The analyzer's output: a certificate when every finding is vetted by
/// the ratchet, a counterexample list otherwise.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Whether the ratchet accepted the run.
    pub certified: bool,
    /// Per-rule coverage records, in execution order.
    pub checks: Vec<CheckRun>,
    /// Findings that violate the ratchet (new, stale or denied sites).
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Render as pretty-printed JSON (hand-rolled — no serde in the
    /// build environment; layout matches `lmpr_verify::diag::Report`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"xtask-analyze\",\n");
        out.push_str(&format!("  \"certified\": {},\n", self.certified));
        out.push_str("  \"checks\": [");
        for (i, c) in self.checks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"inspected\": {}, \"findings\": {} }}",
                c.rule, c.inspected, c.findings
            ));
        }
        out.push_str(if self.checks.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!("      \"rule\": \"{}\",\n", d.rule));
            out.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
            out.push_str(&format!(
                "      \"message\": {},\n",
                json_string(&d.message)
            ));
            out.push_str(&format!(
                "      \"witness\": {{ \"file\": {}, \"line\": {} }}\n",
                json_string(&d.file),
                d.line
            ));
            out.push_str("    }");
        }
        out.push_str(if self.findings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("NO-SUCH-RULE"), None);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let r = Report {
            certified: false,
            checks: vec![CheckRun {
                rule: RuleId::DetOrder,
                inspected: 12,
                findings: 1,
            }],
            findings: vec![Diagnostic {
                rule: RuleId::DetOrder,
                severity: Severity::Error,
                message: "iterates \"counts\"\nunordered".into(),
                file: "crates/verify/src/coverage.rs".into(),
                line: 513,
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"DET-ORDER\""));
        assert!(j.contains("\\\"counts\\\"\\nunordered"));
        assert!(j.contains("\"line\": 513"));
        assert!(j.contains("\"certified\": false"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_report_is_compact() {
        let r = Report {
            certified: true,
            ..Report::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"checks\": []"));
        assert!(j.contains("\"findings\": []"));
    }
}
