//! Workspace discovery shared by `lint` and `analyze`: root location,
//! source enumeration, and the deny-listed directories that can never
//! buy their way into an allowlist.

use std::path::{Path, PathBuf};

/// Directories whose files may never appear in any allowlist: the
/// modules decomposed out of the old `sim.rs` monolith started
/// panic-free and deterministic, and the controller daemon — a
/// long-running service whose whole point is surviving faults and
/// re-publishing byte-identical epochs — was born under the same rule.
/// A finding there is always a gate failure, never a vetting candidate.
pub const DENY_DIRS: &[&str] = &["crates/flitsim/src", "crates/ctld/src"];

/// Whether an allowlist entry for `file` is categorically forbidden.
pub fn denied(file: &str) -> bool {
    DENY_DIRS
        .iter()
        .any(|d| file.starts_with(&format!("{d}/")) || file == *d)
}

/// `CARGO_MANIFEST_DIR` is `crates/xtask`; the workspace root is two up.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Recursively collect `.rs` files under `dir`.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative display path.
pub fn rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_list_covers_the_simulator_sources_exactly() {
        assert!(denied("crates/flitsim/src/engine.rs"));
        assert!(denied("crates/flitsim/src/sweep.rs"));
        assert!(denied("crates/ctld/src/controller.rs"));
        assert!(denied("crates/ctld/src/bin/ctld.rs"));
        assert!(!denied("crates/flitsim/srcx/other.rs"));
        assert!(!denied("crates/core/src/selection.rs"));
        assert!(!denied("crates/flowsim/src/loads.rs"));
    }

    #[test]
    fn workspace_root_holds_the_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }
}
