//! `cargo xtask analyze`: the workspace determinism / cast-safety /
//! concurrency-discipline analyzer.
//!
//! Every acceptance gate in this reproduction — golden chaos/faults
//! documents, SIGKILL-and-resume byte identity, per-epoch `LMPRCTLS`
//! checkpoints, blast-radius verify certificates — rests on the
//! simulators and serializers being *bit-deterministic*. Nothing about
//! the type system enforces that, so this pass does, lexically, over
//! the shared masked lexer ([`crate::lexer`]):
//!
//! * **DET-ORDER** — iteration over `HashMap`/`HashSet` (including
//!   single-line `type` aliases of them) in non-test code of the crates
//!   that feed serialized output. Sites whose results are immediately
//!   sorted (a `.sort` call on the same or the next two lines) are
//!   exempt — that is the workspace's established collect-then-sort
//!   idiom.
//! * **DET-TIME** — `Instant::now` / `SystemTime` / `UNIX_EPOCH`
//!   confined to the approved timing modules (orchestrator deadlines,
//!   the ctld server queue, bench timing). Sim, selection and verify
//!   logic must run on logical clocks only.
//! * **CAST-NARROW** — a ratchet on `as` casts to possibly-narrower
//!   integer/float types, driving hot paths toward `try_from` or
//!   invariant-documented conversion helpers.
//! * **THREAD-DISCIPLINE** — thread spawning, lock construction and
//!   channel construction only in the approved concurrency modules,
//!   plus a lexical lock-nesting scan that flags inconsistent
//!   `.lock()` acquisition order across functions.
//! * **UNSAFE-FORBID** — every crate root (lib, bin, example) must
//!   carry `#![forbid(unsafe_code)]`. Never allowlistable.
//!
//! Findings are pinned in `crates/xtask/analyze-allowlist.txt` with the
//! same exact-count ratchet semantics as the panic lint: a rising count
//! fails (fix or vet), a falling count fails until `--update` tightens
//! the pin, stale entries fail, and deny-listed directories
//! (`crates/flitsim/src`, `crates/ctld/src`) can never pin DET-ORDER or
//! DET-TIME findings at all. Each run emits an `lmpr_verify`-style JSON
//! certificate to `target/analyze-report.json`.

use crate::lexer;
use crate::report::{CheckRun, Diagnostic, Report, RuleId, Severity, ALL_RULES};
use crate::workspace::{collect_rs_files, denied, rel, workspace_root};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Source roots the analyzer audits: every crate that feeds serialized
/// output (results documents, certificates, checkpoints, benchmarks).
const ANALYZE_ROOTS: &[&str] = &[
    "crates/xgft/src",
    "crates/core/src",
    "crates/traffic/src",
    "crates/flowsim/src",
    "crates/flitsim/src",
    "crates/verify/src",
    "crates/ctld/src",
    "crates/bench/src",
    "src",
];

/// Crate source dirs whose roots (lib.rs / main.rs / bin/*.rs) must
/// carry `#![forbid(unsafe_code)]`. The vendored dependency stand-ins
/// (`rand`, `proptest`, `criterion`) are out of scope.
const CRATE_SRC_DIRS: &[&str] = &[
    "src",
    "crates/xgft/src",
    "crates/core/src",
    "crates/traffic/src",
    "crates/flowsim/src",
    "crates/flitsim/src",
    "crates/verify/src",
    "crates/ctld/src",
    "crates/bench/src",
    "crates/xtask/src",
];

/// Modules approved to read wall clocks: orchestrator deadlines, the
/// ctld server queue (enqueue timestamps for deadline rejection), and
/// bench timing. Everything else runs on logical clocks.
const TIME_APPROVED: &[&str] = &[
    "crates/bench/src/orchestrator.rs",
    "crates/bench/src/bin/perf_baseline.rs",
    "crates/ctld/src/server.rs",
    "crates/ctld/src/bin/ctl_bench.rs",
];

/// Modules approved to spawn threads / build locks and channels: the
/// ctld socket front end, the standby replication follower, the
/// orchestrator, the sweep/study samplers, and the ctld bench and
/// soak drivers.
const THREAD_APPROVED: &[&str] = &[
    "crates/bench/src/orchestrator.rs",
    "crates/ctld/src/bin/ctl_bench.rs",
    "crates/ctld/src/bin/ctl_soak.rs",
    "crates/ctld/src/replication.rs",
    "crates/ctld/src/server.rs",
    "crates/flitsim/src/sweep.rs",
    "crates/flowsim/src/study.rs",
];

const ALLOWLIST: &str = "crates/xtask/analyze-allowlist.txt";
const REPORT_PATH: &str = "target/analyze-report.json";

/// One matched site inside a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Site {
    pub line: usize,
    pub msg: String,
}

/// Whether `(rule, file)` can never be vetted: DET-ORDER and DET-TIME
/// in the deny-listed simulator/daemon directories, and UNSAFE-FORBID
/// anywhere.
pub(crate) fn rule_denied(rule: RuleId, file: &str) -> bool {
    match rule {
        RuleId::DetOrder | RuleId::DetTime => denied(file),
        RuleId::UnsafeForbid => true,
        RuleId::CastNarrow | RuleId::ThreadDiscipline => false,
    }
}

// ---------------------------------------------------------------------
// Word-level text helpers on masked source.
// ---------------------------------------------------------------------

/// Byte offsets of identifier-boundary occurrences of `word`.
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(off) = text[start..].find(word) {
        let i = start + off;
        if lexer::is_word_at(text, i, word) {
            out.push(i);
        }
        start = i + 1;
    }
    out
}

fn contains_word(text: &str, word: &str) -> bool {
    !word_positions(text, word).is_empty()
}

// ---------------------------------------------------------------------
// DET-ORDER
// ---------------------------------------------------------------------

/// Iterator-producing method suffixes on a hash container.
const ITER_SUFFIXES: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

/// Hash-based type names visible in this file: the std containers plus
/// any single-line `type X = …HashMap…` aliases (e.g. `RouteKeyMap`).
fn hashy_type_names(masked: &str) -> Vec<String> {
    let mut names = vec!["HashMap".to_owned(), "HashSet".to_owned()];
    for line in masked.lines() {
        let Some(pos) = word_positions(line, "type").first().copied() else {
            continue;
        };
        let rest = line[pos + 4..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let Some(eq) = rest.find('=') else { continue };
        let rhs = &rest[eq + 1..];
        let aliased = names.iter().any(|t| contains_word(rhs, t));
        if aliased {
            names.push(name);
        }
    }
    names
}

/// Identifier declared immediately before a type occurrence at
/// `type_pos`, as in `counts: HashMap<…>` / `seen: &mut HashSet<…>` /
/// `cache: Option<RouteKeyMap>` — walking back through path prefixes
/// and wrapper generics. `None` when the occurrence is not a
/// declaration site.
fn decl_ident_before(line: &str, type_pos: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = type_pos;
    loop {
        // Path prefix `std::collections::`.
        if i >= 2 && b[i - 1] == b':' && b[i - 2] == b':' {
            i -= 2;
            while i > 0 && lexer::is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            continue;
        }
        // Wrapper generic `Option<…`, `Arc<…`.
        if i > 0 && b[i - 1] == b'<' {
            i -= 1;
            while i > 0 && lexer::is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            continue;
        }
        break;
    }
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    if i >= 3 && &line[i - 3..i] == "mut" && (i == 3 || !lexer::is_ident_byte(b[i - 4])) {
        i -= 3;
        while i > 0 && b[i - 1] == b' ' {
            i -= 1;
        }
    }
    while i > 0 && b[i - 1] == b'&' {
        i -= 1;
        while i > 0 && b[i - 1] == b' ' {
            i -= 1;
        }
    }
    // A single `:` (not `::`) marks a declaration.
    if i == 0 || b[i - 1] != b':' || (i >= 2 && b[i - 2] == b':') {
        return None;
    }
    i -= 1;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && lexer::is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    (i < end && !b[i].is_ascii_digit()).then(|| line[i..end].to_owned())
}

/// Identifiers bound to hash-based containers in this file: let
/// bindings whose line mentions a hashy type, plus `ident: Type`
/// declarations (fields, params).
fn hashy_idents(masked: &str, types: &[String]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in masked.lines() {
        if !types.iter().any(|t| contains_word(line, t)) {
            continue;
        }
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.insert(name);
            }
            continue;
        }
        for t in types {
            for pos in word_positions(line, t) {
                if let Some(name) = decl_ident_before(line, pos) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// Whether the occurrence at `pos` is the target of a `for … in` loop
/// header (`for (k, v) in &counts {`).
fn is_for_in_target(line: &str, pos: usize, ident_len: usize) -> bool {
    if !line.trim_start().starts_with("for ") {
        return false;
    }
    if !word_positions(&line[..pos], "in").iter().any(|_| true) {
        return false;
    }
    let after = line[pos + ident_len..].trim_start();
    after.is_empty() || after.starts_with('{')
}

/// DET-ORDER: unordered iteration over hash-based containers.
pub(crate) fn det_order(masked: &str) -> Vec<Site> {
    let types = hashy_type_names(masked);
    let idents = hashy_idents(masked, &types);
    let lines: Vec<&str> = masked.lines().collect();
    let mut sites = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let mut flagged: BTreeSet<&str> = BTreeSet::new();
        for ident in &idents {
            for pos in word_positions(line, ident) {
                let after = &line[pos + ident.len()..];
                let iterates = ITER_SUFFIXES.iter().any(|s| after.starts_with(s))
                    || is_for_in_target(line, pos, ident.len());
                if !iterates {
                    continue;
                }
                // Collect-then-sort escape: the workspace's established
                // idiom sorts on the same or an immediately following
                // line, restoring determinism.
                let sorted = (ln..(ln + 3).min(lines.len())).any(|k| lines[k].contains(".sort"));
                if !sorted {
                    flagged.insert(ident);
                }
            }
        }
        for ident in flagged {
            sites.push(Site {
                line: ln + 1,
                msg: format!(
                    "unordered iteration over hash-based `{ident}`; \
                     sort the items or switch to BTreeMap/BTreeSet"
                ),
            });
        }
    }
    sites
}

// ---------------------------------------------------------------------
// DET-TIME
// ---------------------------------------------------------------------

const TIME_PATTERNS: &[&str] = &["Instant::now", "SystemTime", "UNIX_EPOCH"];

/// DET-TIME: wall-clock reads outside the approved modules.
pub(crate) fn det_time(masked: &str) -> Vec<Site> {
    let mut sites = Vec::new();
    for (ln, line) in masked.lines().enumerate() {
        for pat in TIME_PATTERNS {
            if !word_positions(line, pat).is_empty() {
                sites.push(Site {
                    line: ln + 1,
                    msg: format!(
                        "wall-clock read `{pat}` outside the approved timing modules; \
                         sim/selection/verify logic must use logical clocks"
                    ),
                });
            }
        }
    }
    sites
}

// ---------------------------------------------------------------------
// CAST-NARROW
// ---------------------------------------------------------------------

/// Cast targets that can narrow (usize can be 32-bit; f32 drops
/// integer precision above 2^24).
const NARROW_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32",
];

/// CAST-NARROW: every `as` cast to a possibly-narrower target type.
/// Counted per occurrence, so two casts on one line cost two.
pub(crate) fn cast_narrow(masked: &str) -> Vec<Site> {
    let mut sites = Vec::new();
    for (ln, line) in masked.lines().enumerate() {
        for pos in word_positions(line, "as") {
            let after = &line[pos + 2..];
            let stripped = after.trim_start();
            if stripped.len() == after.len() {
                continue; // `as` must be followed by whitespace
            }
            let ty: String = stripped
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NARROW_TARGETS.contains(&ty.as_str()) {
                sites.push(Site {
                    line: ln + 1,
                    msg: format!(
                        "narrowing `as {ty}` cast; prefer try_from or an \
                         invariant-documented conversion helper"
                    ),
                });
            }
        }
    }
    sites
}

// ---------------------------------------------------------------------
// THREAD-DISCIPLINE
// ---------------------------------------------------------------------

const THREAD_PATTERNS: &[&str] = &[
    "thread::spawn",
    "thread::scope",
    "Mutex::new",
    "RwLock::new",
    "Condvar::new",
    "sync_channel",
    "mpsc::channel",
];

/// THREAD-DISCIPLINE (construction half): spawn/lock/channel
/// construction outside the approved modules.
pub(crate) fn thread_primitives(masked: &str) -> Vec<Site> {
    let mut sites = Vec::new();
    for (ln, line) in masked.lines().enumerate() {
        for pat in THREAD_PATTERNS {
            if !word_positions(line, pat).is_empty() {
                sites.push(Site {
                    line: ln + 1,
                    msg: format!("concurrency primitive `{pat}` outside the approved modules"),
                });
            }
        }
    }
    sites
}

/// One `.lock()` acquisition, in source order, with its enclosing
/// function (lexically tracked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LockAcq {
    pub file: String,
    pub func: String,
    pub line: usize,
    pub recv: String,
}

/// Collect `.lock()` receivers per function, in order of appearance.
pub(crate) fn lock_acquisitions(file: &str, masked: &str) -> Vec<LockAcq> {
    let mut out = Vec::new();
    let mut func = String::from("<toplevel>");
    for (ln, line) in masked.lines().enumerate() {
        if let Some(pos) = word_positions(line, "fn").first().copied() {
            let name: String = line[pos + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                func = name;
            }
        }
        let mut start = 0;
        while let Some(off) = line[start..].find(".lock()") {
            let i = start + off;
            let b = line.as_bytes();
            let mut j = i;
            while j > 0 && (lexer::is_ident_byte(b[j - 1]) || b[j - 1] == b'.') {
                j -= 1;
            }
            let recv = line[j..i].to_owned();
            if !recv.is_empty() {
                out.push(LockAcq {
                    file: file.to_owned(),
                    func: func.clone(),
                    line: ln + 1,
                    recv,
                });
            }
            start = i + ".lock()".len();
        }
    }
    out
}

/// THREAD-DISCIPLINE (ordering half): two locks acquired in opposite
/// orders in different places — the lexical shadow of a deadlock. Each
/// conflict is reported once, at its later witness.
pub(crate) fn lock_order_conflicts(acqs: &[LockAcq]) -> Vec<(String, Site)> {
    // Per-function acquisition sequences, then the pairwise "a before
    // b" relation with its first witness.
    let mut seqs: BTreeMap<(&str, &str), Vec<&LockAcq>> = BTreeMap::new();
    for a in acqs {
        seqs.entry((&a.file, &a.func)).or_default().push(a);
    }
    let mut before: BTreeMap<(&str, &str), &LockAcq> = BTreeMap::new();
    for seq in seqs.values() {
        for x in 0..seq.len() {
            for y in x + 1..seq.len() {
                let (a, b) = (seq[x], seq[y]);
                if a.recv != b.recv {
                    before.entry((&a.recv, &b.recv)).or_insert(b);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (&(a, b), w_ab) in &before {
        if a < b {
            if let Some(w_ba) = before.get(&(b, a)) {
                out.push((
                    w_ba.file.clone(),
                    Site {
                        line: w_ba.line,
                        msg: format!(
                            "inconsistent lock order: `{b}` then `{a}` in fn {} \
                             ({}:{}), but `{a}` then `{b}` in fn {} ({}:{})",
                            w_ba.func, w_ba.file, w_ba.line, w_ab.func, w_ab.file, w_ab.line
                        ),
                    },
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// UNSAFE-FORBID
// ---------------------------------------------------------------------

const FORBID_ATTR: &str = "#![forbid(unsafe_code)]";

/// Crate roots: lib.rs / main.rs / bin/*.rs of every workspace member
/// plus the top-level examples.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in CRATE_SRC_DIRS {
        let d = root.join(dir);
        for f in ["lib.rs", "main.rs"] {
            let p = d.join(f);
            if p.is_file() {
                out.push(p);
            }
        }
        if let Ok(entries) = std::fs::read_dir(d.join("bin")) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "rs") {
                    out.push(p);
                }
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(root.join("examples")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// UNSAFE-FORBID: whether a crate-root file carries the attribute.
pub(crate) fn has_forbid_unsafe(text: &str) -> bool {
    text.contains(FORBID_ATTR)
}

// ---------------------------------------------------------------------
// Ratchet
// ---------------------------------------------------------------------

/// Findings per `(rule, workspace-relative file)`, deterministic order.
pub(crate) type Counts = BTreeMap<(RuleId, String), Vec<Site>>;

/// Parsed `analyze-allowlist.txt`: `(rule, file, pinned count)`.
pub(crate) type Allowlist = Vec<(RuleId, String, usize)>;

fn read_allowlist(path: &Path) -> Result<Allowlist, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(3, ' ');
        let (rule, count, file) = match (cols.next(), cols.next(), cols.next()) {
            (Some(r), Some(c), Some(f)) => (r, c, f),
            _ => {
                return Err(format!(
                    "{}:{}: expected `<RULE> <count> <path>`",
                    path.display(),
                    i + 1
                ))
            }
        };
        let rule = RuleId::parse(rule)
            .ok_or_else(|| format!("{}:{}: unknown rule `{rule}`", path.display(), i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|e| format!("{}:{}: bad count: {e}", path.display(), i + 1))?;
        out.push((rule, file.trim().to_owned(), count));
    }
    Ok(out)
}

/// The exact-pin ratchet: every violation as a diagnostic. An empty
/// return is the certificate.
pub(crate) fn ratchet_failures(counts: &Counts, allowed: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Deny-listed (rule, file) pairs reject their allowlist entries
    // outright, so a site there can never be vetted away.
    for (rule, file, budget) in allowed {
        if *budget > 0 && rule_denied(*rule, file) {
            out.push(Diagnostic {
                rule: *rule,
                severity: Severity::Error,
                message: format!(
                    "{ALLOWLIST} pins {budget} {rule} site(s) for this file, but {rule} \
                     findings here can never be vetted — fix them instead"
                ),
                file: file.clone(),
                line: 0,
            });
        }
    }
    for ((rule, file), sites) in counts {
        let budget = if rule_denied(*rule, file) {
            0
        } else {
            allowed
                .iter()
                .find(|(r, f, _)| r == rule && f == file)
                .map(|&(_, _, n)| n)
                .unwrap_or(0)
        };
        match sites.len().cmp(&budget) {
            std::cmp::Ordering::Greater => {
                for s in sites {
                    out.push(Diagnostic {
                        rule: *rule,
                        severity: Severity::Error,
                        message: format!(
                            "{} [{} site(s), allowlist permits {budget}]",
                            s.msg,
                            sites.len()
                        ),
                        file: file.clone(),
                        line: s.line,
                    });
                }
            }
            std::cmp::Ordering::Less => {
                out.push(Diagnostic {
                    rule: *rule,
                    severity: Severity::Warning,
                    message: format!(
                        "{} {rule} site(s) but allowlist pins {budget} — the file \
                         improved; tighten the pin (`cargo xtask analyze --update`)",
                        sites.len()
                    ),
                    file: file.clone(),
                    line: 0,
                });
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    for (rule, file, budget) in allowed {
        if *budget > 0 && !rule_denied(*rule, file) && !counts.contains_key(&(*rule, file.clone()))
        {
            out.push(Diagnostic {
                rule: *rule,
                severity: Severity::Warning,
                message: format!(
                    "no {rule} sites remain but allowlist pins {budget} — remove the \
                     stale entry (`cargo xtask analyze --update`)"
                ),
                file: file.clone(),
                line: 0,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Run every rule over the workspace. Returns the per-(rule, file)
/// finding table and the per-rule coverage records.
fn run_rules(root: &Path) -> Result<(Counts, Vec<CheckRun>), String> {
    let mut files = Vec::new();
    for dir in ANALYZE_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut counts: Counts = BTreeMap::new();
    let mut raw_per_rule: BTreeMap<RuleId, u64> = BTreeMap::new();
    let mut inspected: BTreeMap<RuleId, u64> = BTreeMap::new();
    let mut acqs: Vec<LockAcq> = Vec::new();

    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let relpath = rel(root, file);
        let masked = lexer::mask(&text);

        let mut add = |rule: RuleId, sites: Vec<Site>| {
            *raw_per_rule.entry(rule).or_default() += sites.len() as u64;
            if !sites.is_empty() {
                counts.insert((rule, relpath.clone()), sites);
            }
        };

        *inspected.entry(RuleId::DetOrder).or_default() += 1;
        add(RuleId::DetOrder, det_order(&masked));

        if !TIME_APPROVED.contains(&relpath.as_str()) {
            *inspected.entry(RuleId::DetTime).or_default() += 1;
            add(RuleId::DetTime, det_time(&masked));
        }

        *inspected.entry(RuleId::CastNarrow).or_default() += 1;
        add(RuleId::CastNarrow, cast_narrow(&masked));

        if !THREAD_APPROVED.contains(&relpath.as_str()) {
            *inspected.entry(RuleId::ThreadDiscipline).or_default() += 1;
            add(RuleId::ThreadDiscipline, thread_primitives(&masked));
        }
        // Lock ordering is audited everywhere, approved modules
        // included: approval covers *owning* locks, not acquiring them
        // in conflicting orders.
        acqs.extend(lock_acquisitions(&relpath, &masked));
    }

    for (file, site) in lock_order_conflicts(&acqs) {
        *raw_per_rule.entry(RuleId::ThreadDiscipline).or_default() += 1;
        counts
            .entry((RuleId::ThreadDiscipline, file))
            .or_default()
            .push(site);
    }

    for path in crate_roots(root) {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        *inspected.entry(RuleId::UnsafeForbid).or_default() += 1;
        if !has_forbid_unsafe(&text) {
            *raw_per_rule.entry(RuleId::UnsafeForbid).or_default() += 1;
            counts
                .entry((RuleId::UnsafeForbid, rel(root, &path)))
                .or_default()
                .push(Site {
                    line: 1,
                    msg: format!("crate root lacks `{FORBID_ATTR}`"),
                });
        }
    }

    let checks = ALL_RULES
        .iter()
        .map(|&rule| CheckRun {
            rule,
            inspected: inspected.get(&rule).copied().unwrap_or(0),
            findings: raw_per_rule.get(&rule).copied().unwrap_or(0),
        })
        .collect();
    Ok((counts, checks))
}

/// Serialize the allowlist for `--update`. Deny-refused entries are
/// returned as diagnostics instead of being written.
fn render_allowlist(counts: &Counts) -> (String, Vec<Diagnostic>) {
    let mut out = String::from(
        "# Exact per-(rule, file) counts of vetted `cargo xtask analyze` findings.\n\
         # Format: <RULE> <count> <path>. Regenerate with\n\
         # `cargo xtask analyze --update` after vetting any change; the gate\n\
         # fails on both increases (new hazards) and decreases (stale pins).\n\
         # DET-ORDER and DET-TIME findings under crates/flitsim/src and\n\
         # crates/ctld/src can never be pinned here (the simulator and the\n\
         # controller daemon are bit-deterministic by construction), and\n\
         # UNSAFE-FORBID findings can never be pinned anywhere.\n",
    );
    let mut refused = Vec::new();
    for ((rule, file), sites) in counts {
        if rule_denied(*rule, file) {
            for s in sites {
                refused.push(Diagnostic {
                    rule: *rule,
                    severity: Severity::Error,
                    message: format!("{} — cannot be vetted; fix it", s.msg),
                    file: file.clone(),
                    line: s.line,
                });
            }
            continue;
        }
        let _ = writeln!(out, "{} {} {}", rule, sites.len(), file);
    }
    (out, refused)
}

fn write_report(root: &Path, report: &Report) {
    let path = root.join(REPORT_PATH);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("xtask analyze: cannot write {}: {e}", path.display());
    }
}

fn print_checks(checks: &[CheckRun]) {
    for c in checks {
        println!(
            "xtask analyze: {:<18} {:>3} file(s) inspected, {:>3} raw finding(s)",
            c.rule.to_string(),
            c.inspected,
            c.findings
        );
    }
}

/// Entry point for `cargo xtask analyze [--ci|--update]`.
pub fn analyze(update: bool) -> ExitCode {
    let root = workspace_root();
    let (counts, checks) = match run_rules(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update {
        let (text, refused) = render_allowlist(&counts);
        if !refused.is_empty() {
            for d in &refused {
                eprintln!("xtask analyze: {d}");
            }
            write_report(
                &root,
                &Report {
                    certified: false,
                    checks,
                    findings: refused,
                },
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(root.join(ALLOWLIST), text) {
            eprintln!("xtask analyze: cannot write allowlist: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: allowlist updated ({} (rule, file) entries, {} sites)",
            counts.len(),
            counts.values().map(Vec::len).sum::<usize>()
        );
        write_report(
            &root,
            &Report {
                certified: true,
                checks,
                findings: Vec::new(),
            },
        );
        return ExitCode::SUCCESS;
    }

    let allowed = match read_allowlist(&root.join(ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = ratchet_failures(&counts, &allowed);
    let report = Report {
        certified: failures.is_empty(),
        checks: checks.clone(),
        findings: failures.clone(),
    };
    write_report(&root, &report);

    if failures.is_empty() {
        print_checks(&checks);
        println!(
            "xtask analyze: certified ({} vetted sites across {} (rule, file) pins; \
             certificate at {REPORT_PATH})",
            counts.values().map(Vec::len).sum::<usize>(),
            counts.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &failures {
            eprintln!("xtask analyze: {d}");
        }
        eprintln!(
            "xtask analyze: {} violation(s); fix them or vet them with \
             `cargo xtask analyze --update` (certificate at {REPORT_PATH})",
            failures.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn order(src: &str) -> Vec<Site> {
        det_order(&mask(src))
    }

    // ---- DET-ORDER fixtures ----

    #[test]
    fn det_order_flags_value_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n    let mut counts: HashMap<u64, u64> = HashMap::new();\n\
                   \x20   let ok = counts.values().all(|&c| c == 1);\n    g(ok)\n}\n";
        let sites = order(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 4);
        assert!(sites[0].msg.contains("counts"));
    }

    #[test]
    fn det_order_flags_for_loops_and_drain() {
        let src = "fn f(seen: &mut HashSet<u64>) {\n\
                   \x20   for x in seen {\n        g(x)\n    }\n\
                   \x20   for v in seen.drain() {\n        g(v)\n    }\n}\n";
        let sites = order(src);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[1].line, 5);
    }

    #[test]
    fn det_order_tracks_type_aliases_and_wrappers() {
        let src = "type RouteKeyMap = HashMap<u64, Sel, BuildHasherDefault<H>>;\n\
                   struct S {\n    cache: Option<RouteKeyMap>,\n}\n\
                   fn f(s: &mut S) {\n    let cache = s.cache.as_mut();\n\
                   \x20   cache.retain(|_, _| true);\n}\n";
        let sites = order(src);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].line, 7);
    }

    #[test]
    fn det_order_sorted_escape_and_membership_are_clean() {
        let src = "fn f() {\n    let mut tops = std::collections::HashSet::new();\n\
                   \x20   tops.insert(1);\n    if tops.contains(&1) { g() }\n\
                   \x20   let mut v: Vec<u64> = tops.iter().copied().collect();\n\
                   \x20   v.sort_unstable();\n}\n";
        assert!(order(src).is_empty(), "{:?}", order(src));
    }

    #[test]
    fn det_order_ignores_btree_and_tests() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u64, u64>) {\n    for (k, v) in m {\n        g(k, v)\n    }\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t(h: HashMap<u8, u8>) {\n        for x in h.values() {\n            g(x)\n        }\n    }\n}\n";
        assert!(order(src).is_empty());
    }

    // ---- DET-TIME fixtures ----

    #[test]
    fn det_time_flags_clock_reads() {
        let src = "fn f() {\n    let t = Instant::now();\n    let s = SystemTime::now();\n    g(t, s)\n}\n";
        let sites = det_time(&mask(src));
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[1].line, 3);
    }

    #[test]
    fn det_time_ignores_mentions_in_docs_and_idents() {
        let src = "// Instant::now is banned here\n\
                   fn f() { let my_instant_now = 3; g(my_instant_now) }\n";
        assert!(det_time(&mask(src)).is_empty());
    }

    // ---- CAST-NARROW fixtures ----

    #[test]
    fn cast_narrow_counts_per_occurrence() {
        let src = "fn f(a: u64, b: u64) -> usize {\n    (a as u32 as usize) + (b as usize)\n}\n";
        let sites = cast_narrow(&mask(src));
        assert_eq!(sites.len(), 3, "{sites:?}");
        assert!(sites.iter().all(|s| s.line == 2));
    }

    #[test]
    fn cast_narrow_ignores_widening_and_words() {
        let src =
            "fn f(a: u32) -> u64 {\n    let basic = a as u64;\n    basic as f64;\n    basic\n}\n";
        assert!(cast_narrow(&mask(src)).is_empty());
    }

    // ---- THREAD-DISCIPLINE fixtures ----

    #[test]
    fn thread_primitives_are_flagged() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| ());\n\
                   \x20   let m = Mutex::new(0);\n    let (tx, rx) = sync_channel(4);\n    g(h, m, tx, rx)\n}\n";
        let sites = thread_primitives(&mask(src));
        assert_eq!(sites.len(), 3, "{sites:?}");
    }

    #[test]
    fn lock_order_conflict_is_detected() {
        let a = lock_acquisitions(
            "x.rs",
            "fn f(s: &S) {\n    let g1 = s.a.lock();\n    let g2 = s.b.lock();\n}\n",
        );
        let b = lock_acquisitions(
            "y.rs",
            "fn g(s: &S) {\n    let g2 = s.b.lock();\n    let g1 = s.a.lock();\n}\n",
        );
        let mut all = a;
        all.extend(b);
        let conflicts = lock_order_conflicts(&all);
        assert_eq!(conflicts.len(), 1, "{conflicts:?}");
        assert!(conflicts[0].1.msg.contains("inconsistent lock order"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let mut all = lock_acquisitions(
            "x.rs",
            "fn f(s: &S) {\n    let g1 = s.a.lock();\n    let g2 = s.b.lock();\n}\n",
        );
        all.extend(lock_acquisitions(
            "y.rs",
            "fn g(s: &S) {\n    let g1 = s.a.lock();\n    let g2 = s.b.lock();\n}\n",
        ));
        assert!(lock_order_conflicts(&all).is_empty());
    }

    // ---- UNSAFE-FORBID fixtures ----

    #[test]
    fn forbid_attribute_detection() {
        assert!(has_forbid_unsafe(
            "//! Doc.\n#![forbid(unsafe_code)]\nfn main() {}\n"
        ));
        assert!(!has_forbid_unsafe("fn main() {}\n"));
    }

    // ---- Ratchet semantics ----

    fn one_count(rule: RuleId, file: &str, n: usize) -> Counts {
        let mut c = Counts::new();
        c.insert(
            (rule, file.to_owned()),
            (0..n)
                .map(|i| Site {
                    line: i + 1,
                    msg: "site".into(),
                })
                .collect(),
        );
        c
    }

    #[test]
    fn ratchet_rising_count_fails() {
        let counts = one_count(RuleId::CastNarrow, "crates/core/src/a.rs", 3);
        let allowed = vec![(RuleId::CastNarrow, "crates/core/src/a.rs".to_owned(), 2)];
        let f = ratchet_failures(&counts, &allowed);
        assert_eq!(f.len(), 3, "one diagnostic per site: {f:?}");
        assert!(f[0].message.contains("allowlist permits 2"));
    }

    #[test]
    fn ratchet_falling_count_without_update_fails() {
        let counts = one_count(RuleId::CastNarrow, "crates/core/src/a.rs", 1);
        let allowed = vec![(RuleId::CastNarrow, "crates/core/src/a.rs".to_owned(), 2)];
        let f = ratchet_failures(&counts, &allowed);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("tighten the pin"));
    }

    #[test]
    fn ratchet_exact_pin_passes_and_stale_fails() {
        let counts = one_count(RuleId::CastNarrow, "crates/core/src/a.rs", 2);
        let allowed = vec![(RuleId::CastNarrow, "crates/core/src/a.rs".to_owned(), 2)];
        assert!(ratchet_failures(&counts, &allowed).is_empty());
        let stale = ratchet_failures(&Counts::new(), &allowed);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"));
    }

    #[test]
    fn ratchet_denied_entries_are_rejected() {
        // A DET-ORDER pin under flitsim is refused even when the count
        // matches, and the sites still fail.
        let counts = one_count(RuleId::DetOrder, "crates/flitsim/src/engine.rs", 1);
        let allowed = vec![(
            RuleId::DetOrder,
            "crates/flitsim/src/engine.rs".to_owned(),
            1,
        )];
        let f = ratchet_failures(&counts, &allowed);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|d| d.message.contains("never be vetted")));
        // CAST-NARROW pins in the same directory are legitimate.
        let counts = one_count(RuleId::CastNarrow, "crates/flitsim/src/engine.rs", 1);
        let allowed = vec![(
            RuleId::CastNarrow,
            "crates/flitsim/src/engine.rs".to_owned(),
            1,
        )];
        assert!(ratchet_failures(&counts, &allowed).is_empty());
        // UNSAFE-FORBID can never be pinned anywhere.
        let counts = one_count(RuleId::UnsafeForbid, "crates/core/src/lib.rs", 1);
        let allowed = vec![(RuleId::UnsafeForbid, "crates/core/src/lib.rs".to_owned(), 1)];
        let f = ratchet_failures(&counts, &allowed);
        assert!(!f.is_empty());
    }

    #[test]
    fn update_refuses_denied_findings() {
        let counts = one_count(RuleId::DetTime, "crates/ctld/src/controller.rs", 1);
        let (text, refused) = render_allowlist(&counts);
        assert_eq!(refused.len(), 1);
        assert!(!text.contains("controller.rs"));
    }

    // ---- Meta-tests over the real tree ----

    /// The simulator and controller sources must be free of DET-ORDER
    /// and DET-TIME findings *in fact*, not just unpinned: zero-entry
    /// budgets, verified against the live tree.
    #[test]
    fn flitsim_and_ctld_carry_zero_det_budgets() {
        let root = workspace_root();
        for dir in ["crates/flitsim/src", "crates/ctld/src"] {
            let mut files = Vec::new();
            collect_rs_files(&root.join(dir), &mut files);
            files.sort();
            assert!(!files.is_empty(), "{dir} has sources");
            for file in files {
                let text = std::fs::read_to_string(&file).expect("source readable");
                let relpath = rel(&root, &file);
                let masked = mask(&text);
                let o = det_order(&masked);
                assert!(o.is_empty(), "{relpath}: DET-ORDER findings {o:?}");
                if !TIME_APPROVED.contains(&relpath.as_str()) {
                    let t = det_time(&masked);
                    assert!(t.is_empty(), "{relpath}: DET-TIME findings {t:?}");
                }
            }
        }
    }

    /// And the committed allowlist must not even try to pin them.
    #[test]
    fn committed_allowlist_has_no_denied_entries() {
        let root = workspace_root();
        let allowed = read_allowlist(&root.join(ALLOWLIST)).expect("allowlist parses");
        for (rule, file, budget) in &allowed {
            assert!(
                *budget == 0 || !rule_denied(*rule, file),
                "{ALLOWLIST} pins {budget} {rule} site(s) for {file}"
            );
        }
    }
}
