//! The simulator shell: construction, the run loop, and statistics.
//!
//! The per-cycle pipeline stages live in [`engine`](crate::engine),
//! buffer/credit/arbitration state in [`arbiter`](crate::arbiter), the
//! lagged fault view and shared path-selection engine in
//! [`routing_view`](crate::routing_view), and the runtime invariant
//! monitors in [`monitor`](crate::monitor).

use crate::arbiter::Arbiter;
use crate::config::{FaultPolicy, ResilienceConfig, RetxConfig, SimConfig};
use crate::error::{DeadlockReport, SimError};
use crate::inject::Source;
use crate::monitor::MonitorLog;
use crate::network::PortGraph;
use crate::packet::{Message, Packet};
use crate::resilience::RetxLedger;
use crate::routing_view::RoutingView;
use crate::stats::{percentile, SimStats};
use crate::traffic_mode::TrafficMode;
use crate::util::Slab;
use lmpr_core::{Router, SelectionStats};
use lmpr_verify::Diagnostic;
use xgft::{FaultSchedule, FaultSet, PathId, Topology};

/// A flit-level simulation of one routing scheme on one topology at one
/// offered load.
///
/// See the crate docs for the network model. Construct with
/// [`FlitSim::new`], drive with [`FlitSim::run`], or use the one-shot
/// [`FlitSim::simulate`]. For dynamic fault timelines construct with
/// [`FlitSim::with_schedule`] and drive with [`FlitSim::run_monitored`].
pub struct FlitSim<R: Router> {
    pub(crate) topo: Topology,
    pub(crate) cfg: SimConfig,
    pub(crate) traffic: TrafficMode,
    pub(crate) graph: PortGraph,
    pub(crate) now: u64,

    /// Per-port buffer, credit and arbitration state.
    pub(crate) arb: Arbiter,

    pub(crate) packets: Slab<Packet>,
    pub(crate) messages: Slab<Message>,
    pub(crate) sources: Vec<Source>,
    pub(crate) path_buf: Vec<PathId>,

    // Fault model: `failed_out[port]` marks output ports whose cable is
    // down; `fault_policy` decides whether flits reaching one are
    // discarded or jam (see [`FaultPolicy`]). Under a dynamic schedule
    // the flags track the *physical* fault state cycle by cycle.
    pub(crate) failed_out: Vec<bool>,
    pub(crate) fault_policy: FaultPolicy,
    /// Per output port: packet currently being discarded here. A packet
    /// truncated at a failed link keeps draining at the failure point —
    /// even after the cable recovers — so downstream never sees a
    /// headless packet.
    pub(crate) discarding: Vec<Option<u32>>,
    /// Per output port: packet that started crossing before the cable
    /// died. Failure takes effect at packet granularity: a packet
    /// already crossing completes, the *next* head sees the dead link.
    pub(crate) link_mid_packet: Vec<Option<u32>>,

    /// Path selection: the shared engine, plus the lagged fault
    /// timeline for schedule-driven runs.
    pub(crate) routing: RoutingView<R>,
    /// End-to-end retransmission parameters (`None` = reliability off;
    /// only [`FlitSim::with_schedule`] can turn it on).
    pub(crate) retx: Option<RetxConfig>,
    /// Transfer records and the timeout heap (all zeros/empty while
    /// reliability is off).
    pub(crate) ledger: RetxLedger,

    // No-progress watchdog state.
    pub(crate) last_progress: u64,
    pub(crate) progress: bool,

    // Lifetime counters (conservation audits).
    pub(crate) total_injected: u64,
    pub(crate) total_delivered: u64,
    pub(crate) total_dropped: u64,
    pub(crate) total_duplicate: u64,

    // Measurement-window counters.
    pub(crate) w_injected: u64,
    pub(crate) w_delivered: u64,
    pub(crate) w_dropped: u64,
    pub(crate) w_duplicate: u64,
    pub(crate) w_disconnected: u64,
    pub(crate) w_created_messages: u64,
    pub(crate) w_completed_messages: u64,
    pub(crate) w_sum_delay: f64,
    pub(crate) w_max_delay: u64,
    /// Delays of measured completed messages (percentile source).
    pub(crate) w_delays: Vec<u64>,
    /// Per-output-port busy cycles during the measurement window.
    pub(crate) link_busy: Vec<u64>,
}

impl<R: Router> FlitSim<R> {
    /// Build a simulator with the paper's uniform random workload.
    /// Validates the configuration.
    pub fn new(topo: &Topology, router: R, cfg: SimConfig) -> Result<Self, SimError> {
        Self::with_traffic(topo, router, cfg, TrafficMode::Uniform)
    }

    /// Build a simulator with an explicit workload (permutation or
    /// hotspot traffic for cross-validation against the flow level).
    pub fn with_traffic(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
    ) -> Result<Self, SimError> {
        Self::with_faults(
            topo,
            router,
            cfg,
            traffic,
            &FaultSet::default(),
            FaultPolicy::Drop,
        )
    }

    /// Build a simulator with an explicit workload and a static fault
    /// set: output ports whose cable is in `faults` transfer nothing —
    /// their flits are discarded or jam according to `policy`. An empty
    /// fault set reproduces the fault-free simulator exactly.
    pub fn with_faults(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
        faults: &FaultSet,
        policy: FaultPolicy,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        traffic.validate(topo.num_pns())?;
        if topo.num_pns() < 2 {
            return Err(SimError::TooFewPns(topo.num_pns()));
        }
        let graph = PortGraph::new(topo);
        let ports = graph.num_ports() as usize;
        let rate = cfg.message_rate();
        let sources = (0..graph.num_pns())
            .map(|pn| Source::new(cfg.seed, pn, topo.up_ports(0), rate))
            .collect();
        let arb = Arbiter::new(&graph, cfg.buffer_flits());
        // Map each failed directed link to the output port that feeds it.
        let mut failed_out = vec![false; ports];
        for link in faults.failed_links() {
            let e = topo.endpoints(link);
            let gid = graph.port_gid(graph.node_gid(e.from), e.from_port);
            failed_out[gid as usize] = true;
        }
        Ok(FlitSim {
            topo: topo.clone(),
            cfg,
            traffic,
            graph,
            now: 0,
            arb,
            packets: Slab::new(),
            messages: Slab::new(),
            sources,
            path_buf: Vec::new(),
            failed_out,
            fault_policy: policy,
            discarding: vec![None; ports],
            link_mid_packet: vec![None; ports],
            routing: RoutingView::plain(router),
            retx: None,
            ledger: RetxLedger::default(),
            last_progress: 0,
            progress: false,
            total_injected: 0,
            total_delivered: 0,
            total_dropped: 0,
            total_duplicate: 0,
            w_injected: 0,
            w_delivered: 0,
            w_dropped: 0,
            w_duplicate: 0,
            w_disconnected: 0,
            w_created_messages: 0,
            w_completed_messages: 0,
            w_sum_delay: 0.0,
            w_max_delay: 0,
            w_delays: Vec::new(),
            link_busy: vec![0; ports],
        })
    }

    /// Build a simulator driven by a dynamic [`FaultSchedule`]: links and
    /// switches fail *and recover* mid-run. The physical fault state
    /// changes the cycle an event occurs; path selection only reacts
    /// `res.lag()` cycles later, when the affected cached SD selections
    /// are recomputed incrementally against the updated routing view.
    ///
    /// Takes the *base* router — the simulator degrades selections
    /// itself (surviving paths topped up to `min(K, X)` in canonical
    /// order), so wrap-in-[`FaultAware`](lmpr_core::FaultAware) is
    /// neither needed nor wanted here. With `res.retx` set, every packet
    /// becomes an end-to-end transfer with delivery timeout,
    /// exponential-backoff retransmission and duplicate suppression at
    /// the sink. An empty schedule with default resilience reproduces
    /// the fault-free simulator exactly.
    pub fn with_schedule(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
        schedule: FaultSchedule,
        policy: FaultPolicy,
        res: ResilienceConfig,
    ) -> Result<Self, SimError> {
        res.validate()?;
        let mut sim = Self::with_faults(topo, router, cfg, traffic, &FaultSet::default(), policy)?;
        sim.routing = RoutingView::scheduled(sim.routing.into_router(), schedule, res.lag());
        sim.retx = res.retx;
        Ok(sim)
    }

    /// One-shot: build, run warm-up plus measurement, return stats.
    pub fn simulate(topo: &Topology, router: R, cfg: SimConfig) -> Result<SimStats, SimError> {
        FlitSim::new(topo, router, cfg)?.run()
    }

    /// Run the configured warm-up and measurement phases and return the
    /// window statistics.
    ///
    /// Errors with [`SimError::Deadlock`] when the no-progress watchdog
    /// fires: no flit moved for `cfg.watchdog_cycles` cycles while flits
    /// were in flight or backlogged (e.g. blocking faults jam every
    /// route of a flow). Under a dynamic schedule with
    /// [`FaultPolicy::Block`], size the watchdog above the longest
    /// outage — a blocked port that will recover looks exactly like a
    /// deadlock until it does.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        let end = self.cfg.horizon();
        while self.now < end {
            self.step();
            if let Some(report) = self.watchdog_fired() {
                return Err(SimError::Deadlock(report));
            }
        }
        Ok(self.stats())
    }

    /// Like [`FlitSim::run`], but every `every` cycles (and once at the
    /// end) the runtime invariant monitors run; the findings come back
    /// with the stats. Error-severity findings abort the run at the
    /// failing checkpoint (the stats snapshot is the crash scene);
    /// warnings are deduplicated per rule and never abort.
    pub fn run_monitored(&mut self, every: u64) -> Result<(SimStats, Vec<Diagnostic>), SimError> {
        let mut log = MonitorLog::new();
        let fatal = self.run_monitored_until(self.cfg.horizon(), every, &mut log)?;
        if !fatal {
            log.absorb(self.check_invariants());
        }
        Ok((self.stats(), log.into_findings()))
    }

    /// Run one *segment* of a monitored run: advance until `until` (or
    /// the configured horizon, whichever is first), running the invariant
    /// monitors every `every` cycles into `log`. Returns `Ok(true)` when
    /// an error-severity finding aborted the segment at a checkpoint.
    ///
    /// This is the resumable core of [`FlitSim::run_monitored`]: because
    /// checks fire at absolute cycles divisible by `every`, splitting a
    /// run into segments at *any* cycle boundaries — e.g. snapshotting at
    /// cycle N, restoring, and continuing — drives the monitors at
    /// exactly the cycles the uninterrupted run would have, as long as
    /// one `log` is threaded through all segments. The final
    /// end-of-horizon check is the caller's job (it belongs after the
    /// *last* segment only).
    pub fn run_monitored_until(
        &mut self,
        until: u64,
        every: u64,
        log: &mut MonitorLog,
    ) -> Result<bool, SimError> {
        let every = every.max(1);
        let until = until.min(self.cfg.horizon());
        while self.now < until {
            self.step();
            if let Some(r) = self.watchdog_fired() {
                return Err(SimError::Deadlock(r));
            }
            if self.now.is_multiple_of(every) && log.absorb(self.check_invariants()) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Advance one cycle. Public so tests and harnesses can single-step.
    pub fn step(&mut self) {
        self.progress = false;
        self.advance_faults();
        self.process_timeouts();
        self.eject();
        self.crossbar();
        self.link_transfer();
        self.inject();
        self.now = self.now.saturating_add(1);
        if self.progress {
            self.last_progress = self.now;
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Snapshot of the window statistics (valid any time; final after
    /// [`FlitSim::run`]).
    pub fn stats(&self) -> SimStats {
        let (reconv_events, reconv_sum_lag, reconv_max_lag) = self.routing.reconv_counters();
        SimStats {
            offered_load: self.cfg.offered_load,
            measure_cycles: self.cfg.measure_cycles,
            num_pns: self.graph.num_pns(),
            injected_flits: self.w_injected,
            delivered_flits: self.w_delivered,
            dropped_flits: self.w_dropped,
            duplicate_flits: self.w_duplicate,
            disconnected_messages: self.w_disconnected,
            created_messages: self.w_created_messages,
            completed_messages: self.w_completed_messages,
            sum_message_delay: self.w_sum_delay,
            max_message_delay: self.w_max_delay,
            delay_p50: percentile_of(&self.w_delays, 0.50),
            delay_p95: percentile_of(&self.w_delays, 0.95),
            delay_p99: percentile_of(&self.w_delays, 0.99),
            final_source_backlog: self.sources.iter().map(|s| s.backlog() as u64).sum(),
            transfers_created: self.ledger.created,
            transfers_delivered: self.ledger.delivered,
            transfers_dropped: self.ledger.dropped,
            retransmitted_packets: self.ledger.retransmitted,
            reconvergence_events: reconv_events,
            mean_reconverge_cycles: if reconv_events > 0 {
                reconv_sum_lag as f64 / reconv_events as f64
            } else {
                0.0
            },
            max_reconverge_cycles: reconv_max_lag,
            routes_invalidated: self.routing.selection_stats().invalidated,
        }
    }

    /// Lifetime hit/miss/invalidation counters of the shared
    /// [`SelectionEngine`](lmpr_core::SelectionEngine) behind path
    /// selection (all zeros for plain, uncached runs).
    pub fn selection_stats(&self) -> SelectionStats {
        self.routing.selection_stats()
    }

    /// Fraction of the measurement window each directed cable (indexed
    /// by the *sending* port gid) spent transferring a flit. Only
    /// meaningful after a full run.
    pub fn link_utilization(&self) -> Vec<f64> {
        let window = self.cfg.measure_cycles.max(1) as f64;
        self.link_busy.iter().map(|&b| b as f64 / window).collect()
    }

    /// The port graph (to interpret [`FlitSim::link_utilization`]).
    pub fn graph(&self) -> &PortGraph {
        &self.graph
    }

    /// Conservation audit: every flit ever injected is either delivered
    /// (once or as a duplicate), dropped, or sitting in some buffer.
    pub fn flits_in_network(&self) -> u64 {
        self.arb.flits_in_network()
    }

    /// Lifetime injected/delivered counters (for audits).
    pub fn lifetime_counters(&self) -> (u64, u64) {
        (self.total_injected, self.total_delivered)
    }

    /// Lifetime count of flits discarded at failed links
    /// ([`FaultPolicy::Drop`]). The conservation invariant under faults
    /// is `injected = delivered + duplicate + in-network + dropped`.
    pub fn dropped_in_lifetime(&self) -> u64 {
        self.total_dropped
    }

    /// Lifetime count of flits suppressed at sinks as duplicates
    /// (end-to-end retransmission only).
    pub fn duplicates_in_lifetime(&self) -> u64 {
        self.total_duplicate
    }

    /// Packets currently queued at the sources (open-loop backlog).
    pub fn source_backlog(&self) -> u64 {
        self.sources.iter().map(|s| s.backlog() as u64).sum()
    }

    /// Snapshot for the watchdog's diagnostic report.
    pub(crate) fn deadlock_report(&self, stalled_for: u64) -> DeadlockReport {
        DeadlockReport {
            cycle: self.now,
            stalled_for,
            flits_in_network: self.flits_in_network(),
            in_flight_packets: self.packets.len(),
            blocked_ports: self.arb.blocked_ports(),
            source_backlog: self.source_backlog(),
        }
    }

    pub(crate) fn watchdog_fired(&self) -> Option<DeadlockReport> {
        if self.cfg.watchdog_cycles == 0 {
            return None;
        }
        let stalled = self.now.saturating_sub(self.last_progress);
        if stalled > self.cfg.watchdog_cycles
            && (self.flits_in_network() > 0 || self.source_backlog() > 0)
        {
            Some(self.deadlock_report(stalled))
        } else {
            None
        }
    }

    pub(crate) fn in_window(&self) -> bool {
        self.now >= self.cfg.warmup_cycles && self.now < self.cfg.horizon()
    }
}

/// Sort-and-query helper over an unsorted delay sample.
fn percentile_of(delays: &[u64], q: f64) -> f64 {
    let mut sorted = delays.to_vec();
    sorted.sort_unstable();
    percentile(&sorted, q)
}
