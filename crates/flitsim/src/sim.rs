//! The cycle loop: ejection, crossbar traversal, link transfer,
//! injection.

use crate::config::{FaultPolicy, SimConfig};
use crate::error::{DeadlockReport, SimError};
use crate::inject::{Source, StreamingPacket};
use crate::network::PortGraph;
use crate::packet::{Flit, Message, Packet};
use crate::stats::{percentile, SimStats};
use crate::traffic_mode::TrafficMode;
use crate::util::Slab;
use lmpr_core::Router;
use std::collections::VecDeque;
use xgft::{FaultSet, PathId, PnId, Topology};

/// A flit-level simulation of one routing scheme on one topology at one
/// offered load.
///
/// See the crate docs for the network model. Construct with
/// [`FlitSim::new`], drive with [`FlitSim::run`], or use the one-shot
/// [`FlitSim::simulate`].
pub struct FlitSim<R: Router> {
    topo: Topology,
    router: R,
    cfg: SimConfig,
    traffic: TrafficMode,
    graph: PortGraph,
    now: u32,

    // Per-port state (indexed by port gid).
    //
    // Input buffers are organized as virtual output queues (VOQs): one
    // FIFO per local output port of the owning node, all sharing the
    // port's credit-managed capacity. Packets arrive contiguously per
    // link (upstream outputs are packet-atomic) and each packet lands
    // wholly in one VOQ, so packets stay contiguous per queue while
    // head-of-line blocking across outputs disappears — matching
    // shared-memory InfiniBand-style switches.
    in_buf: Vec<Vec<VecDeque<Flit>>>,
    out_buf: Vec<VecDeque<Flit>>,
    /// Free flit slots in the downstream input buffer of each output.
    credits: Vec<u32>,
    /// Packet-atomic output reservation: `(input port gid, packet key)`.
    grant: Vec<Option<(u32, u32)>>,
    /// Round-robin arbitration pointer per output port (local input
    /// index to scan first).
    rr_ptr: Vec<u32>,

    packets: Slab<Packet>,
    messages: Slab<Message>,
    sources: Vec<Source>,
    path_buf: Vec<PathId>,

    // Fault model: `failed_out[port]` marks output ports whose cable is
    // down; `fault_policy` decides whether flits reaching one are
    // discarded or jam (see [`FaultPolicy`]).
    failed_out: Vec<bool>,
    fault_policy: FaultPolicy,

    // No-progress watchdog state.
    last_progress: u32,
    progress: bool,

    // Lifetime counters (conservation audits).
    total_injected: u64,
    total_delivered: u64,
    total_dropped: u64,

    // Measurement-window counters.
    w_injected: u64,
    w_delivered: u64,
    w_dropped: u64,
    w_disconnected: u64,
    w_created_messages: u64,
    w_completed_messages: u64,
    w_sum_delay: f64,
    w_max_delay: u32,
    /// Delays of measured completed messages (percentile source).
    w_delays: Vec<u32>,
    /// Per-output-port busy cycles during the measurement window.
    link_busy: Vec<u64>,
}

impl<R: Router> FlitSim<R> {
    /// Build a simulator with the paper's uniform random workload.
    /// Validates the configuration.
    pub fn new(topo: &Topology, router: R, cfg: SimConfig) -> Result<Self, SimError> {
        Self::with_traffic(topo, router, cfg, TrafficMode::Uniform)
    }

    /// Build a simulator with an explicit workload (permutation or
    /// hotspot traffic for cross-validation against the flow level).
    pub fn with_traffic(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
    ) -> Result<Self, SimError> {
        Self::with_faults(
            topo,
            router,
            cfg,
            traffic,
            &FaultSet::default(),
            FaultPolicy::Drop,
        )
    }

    /// Build a simulator with an explicit workload and a fault set:
    /// output ports whose cable is in `faults` transfer nothing — their
    /// flits are discarded or jam according to `policy`. An empty fault
    /// set reproduces the fault-free simulator exactly.
    pub fn with_faults(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
        faults: &FaultSet,
        policy: FaultPolicy,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        traffic.validate(topo.num_pns())?;
        if topo.num_pns() < 2 {
            return Err(SimError::TooFewPns(topo.num_pns()));
        }
        let graph = PortGraph::new(topo);
        let ports = graph.num_ports() as usize;
        let rate = cfg.message_rate();
        let sources = (0..graph.num_pns())
            .map(|pn| Source::new(cfg.seed, pn, topo.up_ports(0), rate))
            .collect();
        // One VOQ per local output of the owning node (PNs eject through
        // a single queue).
        let in_buf = (0..ports as u32)
            .map(|p| {
                let owner = graph.port_owner(p);
                let voqs = if graph.is_pn(owner) {
                    1
                } else {
                    (graph.ports_of(owner).len()).max(1)
                };
                vec![VecDeque::new(); voqs]
            })
            .collect();
        // Map each failed directed link to the output port that feeds it.
        let mut failed_out = vec![false; ports];
        for link in faults.failed_links() {
            let e = topo.endpoints(link);
            let gid = graph.port_gid(graph.node_gid(e.from), e.from_port);
            failed_out[gid as usize] = true;
        }
        Ok(FlitSim {
            topo: topo.clone(),
            router,
            cfg,
            traffic,
            graph,
            now: 0,
            in_buf,
            out_buf: vec![VecDeque::new(); ports],
            credits: vec![cfg.buffer_flits(); ports],
            grant: vec![None; ports],
            rr_ptr: vec![0; ports],
            packets: Slab::new(),
            messages: Slab::new(),
            sources,
            path_buf: Vec::new(),
            failed_out,
            fault_policy: policy,
            last_progress: 0,
            progress: false,
            total_injected: 0,
            total_delivered: 0,
            total_dropped: 0,
            w_injected: 0,
            w_delivered: 0,
            w_dropped: 0,
            w_disconnected: 0,
            w_created_messages: 0,
            w_completed_messages: 0,
            w_sum_delay: 0.0,
            w_max_delay: 0,
            w_delays: Vec::new(),
            link_busy: vec![0; ports],
        })
    }

    /// One-shot: build, run warm-up plus measurement, return stats.
    pub fn simulate(topo: &Topology, router: R, cfg: SimConfig) -> Result<SimStats, SimError> {
        FlitSim::new(topo, router, cfg)?.run()
    }

    /// Run the configured warm-up and measurement phases and return the
    /// window statistics.
    ///
    /// Errors with [`SimError::Deadlock`] when the no-progress watchdog
    /// fires: no flit moved for `cfg.watchdog_cycles` cycles while flits
    /// were in flight or backlogged (e.g. blocking faults jam every
    /// route of a flow).
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        let end = self.cfg.warmup_cycles + self.cfg.measure_cycles;
        while self.now < end {
            self.step();
            if self.cfg.watchdog_cycles > 0 {
                let stalled = self.now - self.last_progress;
                if stalled > self.cfg.watchdog_cycles
                    && (self.flits_in_network() > 0 || self.source_backlog() > 0)
                {
                    return Err(SimError::Deadlock(self.deadlock_report(stalled)));
                }
            }
        }
        Ok(self.stats())
    }

    /// Advance one cycle. Public so tests can single-step.
    pub fn step(&mut self) {
        self.progress = false;
        self.eject();
        self.crossbar();
        self.link_transfer();
        self.inject();
        self.now += 1;
        if self.progress {
            self.last_progress = self.now;
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// Snapshot of the window statistics (valid any time; final after
    /// [`FlitSim::run`]).
    pub fn stats(&self) -> SimStats {
        SimStats {
            offered_load: self.cfg.offered_load,
            measure_cycles: self.cfg.measure_cycles,
            num_pns: self.graph.num_pns(),
            injected_flits: self.w_injected,
            delivered_flits: self.w_delivered,
            dropped_flits: self.w_dropped,
            disconnected_messages: self.w_disconnected,
            created_messages: self.w_created_messages,
            completed_messages: self.w_completed_messages,
            sum_message_delay: self.w_sum_delay,
            max_message_delay: self.w_max_delay,
            delay_p50: percentile_of(&self.w_delays, 0.50),
            delay_p95: percentile_of(&self.w_delays, 0.95),
            delay_p99: percentile_of(&self.w_delays, 0.99),
            final_source_backlog: self.sources.iter().map(|s| s.backlog() as u64).sum(),
        }
    }

    /// Fraction of the measurement window each directed cable (indexed
    /// by the *sending* port gid) spent transferring a flit. Only
    /// meaningful after a full run.
    pub fn link_utilization(&self) -> Vec<f64> {
        let window = self.cfg.measure_cycles.max(1) as f64;
        self.link_busy.iter().map(|&b| b as f64 / window).collect()
    }

    /// The port graph (to interpret [`FlitSim::link_utilization`]).
    pub fn graph(&self) -> &PortGraph {
        &self.graph
    }

    /// Conservation audit: every flit ever injected is either delivered
    /// or sitting in some buffer.
    pub fn flits_in_network(&self) -> u64 {
        let inputs: usize = self
            .in_buf
            .iter()
            .map(|voqs| voqs.iter().map(VecDeque::len).sum::<usize>())
            .sum();
        let outputs: usize = self.out_buf.iter().map(VecDeque::len).sum();
        (inputs + outputs) as u64
    }

    /// Lifetime injected/delivered counters (for audits).
    pub fn lifetime_counters(&self) -> (u64, u64) {
        (self.total_injected, self.total_delivered)
    }

    /// Lifetime count of flits discarded at failed links
    /// ([`FaultPolicy::Drop`]). The conservation invariant under faults
    /// is `injected = delivered + in-network + dropped`.
    pub fn dropped_in_lifetime(&self) -> u64 {
        self.total_dropped
    }

    /// Packets currently queued at the sources (open-loop backlog).
    pub fn source_backlog(&self) -> u64 {
        self.sources.iter().map(|s| s.backlog() as u64).sum()
    }

    /// Snapshot for the watchdog's diagnostic report.
    fn deadlock_report(&self, stalled_for: u32) -> DeadlockReport {
        DeadlockReport {
            cycle: self.now,
            stalled_for,
            flits_in_network: self.flits_in_network(),
            in_flight_packets: self.packets.len(),
            blocked_ports: self.out_buf.iter().filter(|b| !b.is_empty()).count(),
            source_backlog: self.source_backlog(),
        }
    }

    fn in_window(&self) -> bool {
        self.now >= self.cfg.warmup_cycles
            && self.now < self.cfg.warmup_cycles + self.cfg.measure_cycles
    }

    // ------------------------------------------------------------------
    // Stage 1: ejection at processing nodes.
    // ------------------------------------------------------------------
    fn eject(&mut self) {
        for pn in 0..self.graph.num_pns() {
            for port in self.graph.ports_of(pn) {
                let Some(&f) = self.in_buf[port as usize][0].front() else {
                    continue;
                };
                if f.entered >= self.now {
                    continue; // arrived this cycle; consumable next cycle
                }
                self.in_buf[port as usize][0].pop_front();
                self.credits[self.graph.peer(port) as usize] += 1;
                self.deliver(pn, f);
            }
        }
    }

    fn deliver(&mut self, pn: u32, f: Flit) {
        let (msg_key, is_tail) = {
            let pkt = self.packets.get(f.pkt);
            debug_assert_eq!(pkt.dst, PnId(pn), "flit ejected at the wrong PN");
            debug_assert_eq!(f.hop as usize, pkt.route.len(), "flit ejected mid-route");
            (pkt.msg, pkt.is_tail(f.seq))
        };
        self.progress = true;
        self.total_delivered += 1;
        if self.in_window() {
            self.w_delivered += 1;
        }
        if is_tail {
            self.packets.remove(f.pkt);
        }
        let msg = self.messages.get_mut(msg_key);
        msg.remaining_flits -= 1;
        if msg.remaining_flits == 0 {
            let msg = self.messages.remove(msg_key);
            if msg.measured {
                let delay = self.now - msg.created;
                self.w_completed_messages += 1;
                self.w_sum_delay += delay as f64;
                self.w_max_delay = self.w_max_delay.max(delay);
                self.w_delays.push(delay);
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: crossbar traversal at switches (input → output buffers).
    // ------------------------------------------------------------------
    fn crossbar(&mut self) {
        let cap = self.cfg.buffer_flits();
        for node in self.graph.num_pns()..self.graph.num_nodes() {
            let ports = self.graph.ports_of(node);
            let n_ports = (ports.end - ports.start) as usize;
            for out in ports.clone() {
                let out_local = (out - ports.start) as usize;
                if let Some((in_gid, pkt_key)) = self.grant[out as usize] {
                    // A packet holds this output until its tail passes.
                    let Some(&f) = self.in_buf[in_gid as usize][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert_eq!(
                        f.pkt, pkt_key,
                        "foreign packet at VOQ head while output is granted"
                    );
                    if self.out_buf[out as usize].len() as u32 == cap {
                        continue; // output staging full; packet waits at the input
                    }
                    self.move_through_crossbar(in_gid, out_local, out);
                    if self.packets.get(f.pkt).is_tail(f.seq) {
                        self.grant[out as usize] = None;
                    }
                    continue;
                }
                // No grant: round-robin over the node's inputs for a VOQ
                // head flit destined here.
                //
                // Note the whole-packet VCT reservation applies at the
                // *link* (downstream input buffer); within the switch a
                // blocked packet may straddle the input and output
                // buffers, as in real combined-queue VCT switches.
                if self.out_buf[out as usize].len() as u32 == cap {
                    continue;
                }
                let start = self.rr_ptr[out as usize] as usize;
                for k in 0..n_ports {
                    let local_in = (start + k) % n_ports;
                    let in_gid = ports.start + local_in as u32;
                    let Some(&f) = self.in_buf[in_gid as usize][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert!(f.is_head(), "VOQ head must be a packet head between grants");
                    let len = self.packets.get(f.pkt).len;
                    debug_assert_eq!(
                        self.packets.get(f.pkt).route[f.hop as usize] as usize,
                        out_local
                    );
                    self.move_through_crossbar(in_gid, out_local, out);
                    if len > 1 {
                        self.grant[out as usize] = Some((in_gid, f.pkt));
                    }
                    self.rr_ptr[out as usize] = (local_in as u32 + 1) % n_ports as u32;
                    break;
                }
            }
        }
    }

    fn move_through_crossbar(&mut self, in_gid: u32, voq: usize, out_gid: u32) {
        let mut f = self.in_buf[in_gid as usize][voq]
            .pop_front()
            .expect("VOQ head vanished");
        self.credits[self.graph.peer(in_gid) as usize] += 1;
        f.entered = self.now;
        self.out_buf[out_gid as usize].push_back(f);
        self.progress = true;
    }

    // ------------------------------------------------------------------
    // Stage 3: link transfer (output buffer → downstream input buffer).
    // ------------------------------------------------------------------
    fn link_transfer(&mut self) {
        for out in 0..self.graph.num_ports() {
            let Some(&f) = self.out_buf[out as usize].front() else {
                continue;
            };
            if f.entered >= self.now {
                continue;
            }
            if self.failed_out[out as usize] {
                match self.fault_policy {
                    // A dead cable transfers nothing; traffic routed over
                    // it backs up until the watchdog aborts the run.
                    FaultPolicy::Block => continue,
                    // Discard at the failure point. The packet's other
                    // flits keep draining here, so no credit moves and
                    // nothing downstream ever sees the packet; its slab
                    // entry stays (the message can never complete), which
                    // bounds bookkeeping at one entry per dropped packet.
                    FaultPolicy::Drop => {
                        self.out_buf[out as usize].pop_front();
                        self.total_dropped += 1;
                        if self.in_window() {
                            self.w_dropped += 1;
                        }
                        self.progress = true;
                        continue;
                    }
                }
            }
            let need = if f.is_head() {
                self.packets.get(f.pkt).len as u32
            } else {
                debug_assert!(
                    self.credits[out as usize] >= 1,
                    "credit reservation violated for a body flit"
                );
                1
            };
            if self.credits[out as usize] < need {
                continue;
            }
            let mut f = self.out_buf[out as usize].pop_front().unwrap();
            self.credits[out as usize] -= 1;
            self.progress = true;
            if self.in_window() {
                self.link_busy[out as usize] += 1;
            }
            f.hop += 1;
            f.entered = self.now;
            let dst_in = self.graph.peer(out);
            let voq = self.voq_of(dst_in, &f);
            self.in_buf[dst_in as usize][voq].push_back(f);
        }
    }

    /// VOQ a flit arriving on input port `in_gid` must join: the local
    /// output it will leave through, or queue 0 at a processing node
    /// (ejection).
    fn voq_of(&self, in_gid: u32, f: &Flit) -> usize {
        let owner = self.graph.port_owner(in_gid);
        if self.graph.is_pn(owner) {
            debug_assert_eq!(
                f.hop as usize,
                self.packets.get(f.pkt).route.len(),
                "a flit reaching a PN must be at its final hop"
            );
            0
        } else {
            self.packets.get(f.pkt).route[f.hop as usize] as usize
        }
    }

    // ------------------------------------------------------------------
    // Stage 4: message creation and source injection.
    // ------------------------------------------------------------------
    fn inject(&mut self) {
        let rate = self.cfg.message_rate();
        let num_pns = self.graph.num_pns();
        for pn in 0..num_pns {
            while self.sources[pn as usize].poll_arrival(self.now, rate) {
                self.create_message(pn);
            }
            self.stream_source_flits(pn);
        }
    }

    fn create_message(&mut self, pn: u32) {
        let src = PnId(pn);
        let traffic = std::mem::replace(&mut self.traffic, TrafficMode::Uniform);
        let picked =
            self.sources[pn as usize].pick_destination_mode(&traffic, pn, self.graph.num_pns());
        self.traffic = traffic;
        let Some(dst) = picked else {
            return; // self-mapped permutation entry: this source is silent
        };
        let dst = PnId(dst);
        let mut paths = std::mem::take(&mut self.path_buf);
        self.router.fill_paths(&self.topo, src, dst, &mut paths);
        if paths.is_empty() {
            // A fault-aware router found no surviving route: the message
            // is never materialized, only counted.
            self.path_buf = paths;
            if self.in_window() {
                self.w_disconnected += 1;
            }
            return;
        }
        let measured = self.in_window();
        if measured {
            self.w_created_messages += 1;
        }
        let msg = self.messages.insert(Message {
            created: self.now,
            remaining_flits: self.cfg.message_flits(),
            measured,
        });
        let per_message_choice = self.sources[pn as usize].pick_message_path(paths.len());
        for _ in 0..self.cfg.packets_per_message {
            let choice = self.sources[pn as usize].pick_path(
                self.cfg.path_policy,
                paths.len(),
                per_message_choice,
            );
            let route: Box<[u16]> = self
                .topo
                .path_output_ports(src, dst, paths[choice])
                .into_iter()
                .map(|p| p as u16)
                .collect();
            debug_assert!(!route.is_empty(), "uniform traffic never self-addresses");
            let first_port = route[0] as usize;
            let pkt = self.packets.insert(Packet {
                msg,
                len: self.cfg.packet_flits,
                route,
                dst,
            });
            self.sources[pn as usize].queues[first_port]
                .push_back(StreamingPacket { pkt, next_seq: 0 });
        }
        self.path_buf = paths;
    }

    fn stream_source_flits(&mut self, pn: u32) {
        let cap = self.cfg.buffer_flits();
        let n_ports = self.sources[pn as usize].queues.len();
        for local in 0..n_ports {
            let Some(&sp) = self.sources[pn as usize].queues[local].front() else {
                continue;
            };
            let len = self.packets.get(sp.pkt).len;
            let out = self.graph.port_gid(pn, local as u32) as usize;
            let _ = len;
            if cap == self.out_buf[out].len() as u32 {
                continue; // NIC staging buffer full
            }
            self.out_buf[out].push_back(Flit {
                pkt: sp.pkt,
                seq: sp.next_seq,
                hop: 0,
                entered: self.now,
            });
            self.total_injected += 1;
            self.progress = true;
            if self.in_window() {
                self.w_injected += 1;
            }
            let q = &mut self.sources[pn as usize].queues[local];
            let head = q.front_mut().unwrap();
            head.next_seq += 1;
            if head.next_seq == len {
                q.pop_front();
            }
        }
    }
}

/// Sort-and-query helper over an unsorted delay sample.
fn percentile_of(delays: &[u32], q: f64) -> f64 {
    let mut sorted = delays.to_vec();
    sorted.sort_unstable();
    percentile(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathPolicy;
    use lmpr_core::{DModK, Disjoint};
    use xgft::XgftSpec;

    fn small_topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
    }

    fn quick_cfg(load: f64) -> SimConfig {
        SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 6_000,
            offered_load: load,
            ..SimConfig::default()
        }
    }

    #[test]
    fn low_load_delivers_what_it_injects() {
        let topo = small_topo();
        let stats = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
        let t = stats.accepted_throughput();
        assert!(
            (t - 0.1).abs() < 0.02,
            "at 10% load throughput must track offered load, got {t}"
        );
        assert!(stats.completion_rate() > 0.95);
        assert!(stats.avg_message_delay() > 0.0);
    }

    #[test]
    fn conservation_of_flits() {
        let topo = small_topo();
        let mut sim = FlitSim::new(&topo, Disjoint::new(2), quick_cfg(0.6)).expect("valid config");
        for _ in 0..5_000 {
            sim.step();
        }
        let (injected, delivered) = sim.lifetime_counters();
        assert_eq!(
            injected,
            delivered + sim.flits_in_network(),
            "flits must be conserved"
        );
        assert!(delivered > 0);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_depth() {
        // At a vanishing load a message's delay approaches the no-
        // contention pipeline latency: each of the 2κ+1 link crossings
        // costs ~2 cycles (buffer + wire) and the message streams
        // message_flits flits behind its head.
        let topo = small_topo();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 60_000,
            offered_load: 0.005,
            ..SimConfig::default()
        };
        let stats = FlitSim::simulate(&topo, DModK, cfg).expect("valid config");
        assert!(stats.completed_messages > 10);
        let delay = stats.avg_message_delay();
        // Lower bound: serialization alone (64 flits) plus a couple of
        // hops; upper bound: generous contention-free envelope.
        assert!(delay > 64.0, "delay {delay} below serialization bound");
        assert!(delay < 110.0, "delay {delay} too high for near-zero load");
    }

    #[test]
    fn saturation_backlog_grows_with_overload() {
        let topo = small_topo();
        let low = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
        let high = FlitSim::simulate(&topo, DModK, quick_cfg(1.0)).expect("valid config");
        assert!(high.final_source_backlog > low.final_source_backlog);
        // Overloaded d-mod-k cannot deliver the full offered load.
        assert!(high.accepted_throughput() < 0.95);
    }

    #[test]
    fn multipath_beats_single_path_at_high_load() {
        // On the paper's 3-level Table-1 topology, limited multi-path
        // routing must outperform d-mod-k at high uniform load.
        let topo = Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap());
        let single = FlitSim::simulate(&topo, DModK, quick_cfg(0.8)).expect("valid config");
        let multi =
            FlitSim::simulate(&topo, Disjoint::new(4), quick_cfg(0.8)).expect("valid config");
        assert!(
            multi.accepted_throughput() > single.accepted_throughput(),
            "disjoint(4) {:.3} must beat d-mod-k {:.3} at 80% uniform load",
            multi.accepted_throughput(),
            single.accepted_throughput()
        );
    }

    #[test]
    fn policies_all_run() {
        let topo = small_topo();
        for policy in [
            PathPolicy::PerPacketRandom,
            PathPolicy::PerMessageRandom,
            PathPolicy::RoundRobin,
        ] {
            let cfg = SimConfig {
                path_policy: policy,
                ..quick_cfg(0.4)
            };
            let stats = FlitSim::simulate(&topo, Disjoint::new(4), cfg).expect("valid config");
            assert!(
                stats.delivered_flits > 0,
                "policy {policy:?} delivered nothing"
            );
        }
    }

    #[test]
    fn percentiles_bracket_the_mean_and_util_is_sane() {
        let topo = small_topo();
        let mut sim = FlitSim::new(&topo, DModK, quick_cfg(0.4)).expect("valid config");
        let stats = sim.run().expect("no deadlock");
        assert!(stats.delay_p50 > 0.0);
        assert!(stats.delay_p50 <= stats.delay_p95);
        assert!(stats.delay_p95 <= stats.delay_p99);
        assert!(stats.delay_p99 <= stats.max_message_delay as f64);
        assert!(stats.delay_p50 <= stats.avg_message_delay() * 1.5);
        let util = sim.link_utilization();
        assert_eq!(util.len(), sim.graph().num_ports() as usize);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
        // Injection links carry roughly the offered load.
        let pn0_out = util[sim.graph().port_gid(0, 0) as usize];
        assert!(
            (pn0_out - 0.4).abs() < 0.12,
            "PN0 injection utilization {pn0_out}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = small_topo();
        let a = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
        let b = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
        assert_eq!(a, b);
        let c = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5).with_seed(9))
            .expect("valid config");
        assert_ne!(a, c);
    }

    #[test]
    fn empty_fault_set_is_bit_identical() {
        let topo = small_topo();
        let a = FlitSim::simulate(&topo, DModK, quick_cfg(0.5)).expect("valid config");
        let b = FlitSim::with_faults(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            &FaultSet::default(),
            FaultPolicy::Block,
        )
        .expect("valid config")
        .run()
        .expect("no deadlock");
        assert_eq!(a, b);
        assert_eq!(a.dropped_flits, 0);
        assert_eq!(a.disconnected_messages, 0);
    }

    #[test]
    fn dropped_flits_balance_the_conservation_audit() {
        let topo = small_topo();
        // Fail one level-2 up-link: inter-group traffic whose d-mod-k
        // path climbs through it is discarded at the failure point.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(2, 0, 0));
        let mut sim = FlitSim::with_faults(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Drop,
        )
        .expect("valid config");
        for _ in 0..6_000 {
            sim.step();
        }
        let (injected, delivered) = sim.lifetime_counters();
        assert!(
            sim.dropped_in_lifetime() > 0,
            "the failed link saw no traffic"
        );
        assert!(delivered > 0);
        assert_eq!(
            injected,
            delivered + sim.flits_in_network() + sim.dropped_in_lifetime(),
            "conservation under faults: injected = delivered + in-flight + dropped"
        );
        assert!(sim.stats().dropped_flits > 0);
    }

    #[test]
    fn blocking_faults_trip_the_watchdog() {
        let topo = small_topo();
        // Sever every PN's injection cable with the blocking policy: the
        // NIC staging buffers fill, then nothing can ever move again.
        let mut faults = FaultSet::new();
        for pn in 0..topo.num_pns() {
            faults.fail_link(topo.up_link(1, pn, 0));
        }
        let cfg = SimConfig {
            watchdog_cycles: 500,
            ..quick_cfg(0.5)
        };
        let err = FlitSim::with_faults(
            &topo,
            DModK,
            cfg,
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Block,
        )
        .expect("valid config")
        .run()
        .unwrap_err();
        let SimError::Deadlock(report) = err else {
            panic!("expected a deadlock, got {err:?}")
        };
        assert!(report.stalled_for > 500);
        assert!(report.flits_in_network > 0);
        assert!(report.blocked_ports > 0);
        assert!(report.in_flight_packets > 0);
    }

    #[test]
    fn fault_aware_routing_counts_disconnected_messages() {
        use lmpr_core::FaultAware;
        let topo = small_topo();
        // PN 0 cannot send (its only up-link is down); a fault-aware
        // router reports its pairs as disconnected instead of panicking,
        // and the rest of the network keeps delivering.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0));
        let router = FaultAware::new(DModK, faults.clone());
        let stats = FlitSim::with_faults(
            &topo,
            router,
            quick_cfg(0.3),
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Drop,
        )
        .expect("valid config")
        .run()
        .expect("no deadlock");
        assert!(stats.disconnected_messages > 0);
        assert!(stats.delivered_flits > 0);
        // Routing around the failure means nothing is ever dropped.
        assert_eq!(stats.dropped_flits, 0);
    }

    #[test]
    fn bad_configs_are_typed_errors_not_panics() {
        let topo = small_topo();
        let bad = SimConfig {
            offered_load: 2.0,
            ..SimConfig::default()
        };
        assert!(matches!(
            FlitSim::simulate(&topo, DModK, bad),
            Err(SimError::Config(_))
        ));
        let bad_traffic = TrafficMode::Permutation(vec![0, 1]);
        assert!(matches!(
            FlitSim::with_traffic(&topo, DModK, quick_cfg(0.5), bad_traffic),
            Err(SimError::Traffic(_))
        ));
    }
}
