//! The cycle loop: ejection, crossbar traversal, link transfer,
//! injection — plus the runtime-resilience layer (dynamic fault
//! timelines, lagged online reconvergence, end-to-end retransmission and
//! invariant monitors).

use crate::config::{FaultPolicy, ResilienceConfig, RetxConfig, SimConfig};
use crate::error::{DeadlockReport, SimError};
use crate::inject::{Source, StreamingPacket};
use crate::monitor::{check_progress, ConservationLedger};
use crate::network::PortGraph;
use crate::packet::{Flit, Message, Packet, NO_XFER};
use crate::resilience::{
    backoff_deadline, route_key, route_key_pair, CachedRoute, DropCause, RetxLedger, Transfer,
    ViewBatch, XferState,
};
use crate::stats::{percentile, SimStats};
use crate::traffic_mode::TrafficMode;
use crate::util::Slab;
use lmpr_core::{degrade_selection, Router};
use lmpr_verify::{Diagnostic, RuleId, Severity, Witness};
use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};
use xgft::{DirectedLinkId, FaultChange, FaultSchedule, FaultSet, PathId, PnId, Topology};

/// Runtime-resilience state of one simulation: the fault timeline with
/// its replay cursor, the physical and (lagged) routing-view fault
/// states, the incremental SD route cache, and the retransmission
/// ledger. Present only for schedule-driven runs.
struct Resilience {
    schedule: FaultSchedule,
    /// Next not-yet-applied event index.
    cursor: usize,
    /// Fault state the cables obey (updated the cycle an event occurs).
    phys_faults: FaultSet,
    /// Fault state path selection is computed against (trails the
    /// physical state by `lag` cycles).
    view_faults: FaultSet,
    /// Detection + reconvergence delay, in cycles.
    lag: u64,
    /// Event batches awaiting routing-view application.
    pending_view: VecDeque<ViewBatch>,
    /// Cached surviving selections per SD pair (keyed by
    /// [`route_key`]); invalidated incrementally as the view changes.
    route_cache: HashMap<u64, CachedRoute>,
    /// End-to-end retransmission parameters (`None` = reliability off).
    retx: Option<RetxConfig>,
    ledger: RetxLedger,
    /// Event batches the routing view has reconverged on.
    reconv_events: u64,
    /// Sum / max of realized event→reconvergence lags.
    reconv_sum_lag: u64,
    reconv_max_lag: u64,
    /// Cached selections recomputed because an event invalidated them.
    routes_invalidated: u64,
}

/// A flit-level simulation of one routing scheme on one topology at one
/// offered load.
///
/// See the crate docs for the network model. Construct with
/// [`FlitSim::new`], drive with [`FlitSim::run`], or use the one-shot
/// [`FlitSim::simulate`]. For dynamic fault timelines construct with
/// [`FlitSim::with_schedule`] and drive with [`FlitSim::run_monitored`].
pub struct FlitSim<R: Router> {
    topo: Topology,
    router: R,
    cfg: SimConfig,
    traffic: TrafficMode,
    graph: PortGraph,
    now: u64,

    // Per-port state (indexed by port gid).
    //
    // Input buffers are organized as virtual output queues (VOQs): one
    // FIFO per local output port of the owning node, all sharing the
    // port's credit-managed capacity. Packets arrive contiguously per
    // link (upstream outputs are packet-atomic) and each packet lands
    // wholly in one VOQ, so packets stay contiguous per queue while
    // head-of-line blocking across outputs disappears — matching
    // shared-memory InfiniBand-style switches.
    in_buf: Vec<Vec<VecDeque<Flit>>>,
    out_buf: Vec<VecDeque<Flit>>,
    /// Free flit slots in the downstream input buffer of each output.
    credits: Vec<u32>,
    /// Packet-atomic output reservation: `(input port gid, packet key)`.
    grant: Vec<Option<(u32, u32)>>,
    /// Round-robin arbitration pointer per output port (local input
    /// index to scan first).
    rr_ptr: Vec<u32>,

    packets: Slab<Packet>,
    messages: Slab<Message>,
    sources: Vec<Source>,
    path_buf: Vec<PathId>,

    // Fault model: `failed_out[port]` marks output ports whose cable is
    // down; `fault_policy` decides whether flits reaching one are
    // discarded or jam (see [`FaultPolicy`]). Under a dynamic schedule
    // the flags track the *physical* fault state cycle by cycle.
    failed_out: Vec<bool>,
    fault_policy: FaultPolicy,
    /// Per output port: packet currently being discarded here. A packet
    /// truncated at a failed link keeps draining at the failure point —
    /// even after the cable recovers — so downstream never sees a
    /// headless packet.
    discarding: Vec<Option<u32>>,
    /// Per output port: packet that started crossing before the cable
    /// died. Failure takes effect at packet granularity: a packet
    /// already crossing completes, the *next* head sees the dead link.
    link_mid_packet: Vec<Option<u32>>,

    resil: Option<Resilience>,

    // No-progress watchdog state.
    last_progress: u64,
    progress: bool,

    // Lifetime counters (conservation audits).
    total_injected: u64,
    total_delivered: u64,
    total_dropped: u64,
    total_duplicate: u64,

    // Measurement-window counters.
    w_injected: u64,
    w_delivered: u64,
    w_dropped: u64,
    w_duplicate: u64,
    w_disconnected: u64,
    w_created_messages: u64,
    w_completed_messages: u64,
    w_sum_delay: f64,
    w_max_delay: u64,
    /// Delays of measured completed messages (percentile source).
    w_delays: Vec<u64>,
    /// Per-output-port busy cycles during the measurement window.
    link_busy: Vec<u64>,
}

/// The directed links whose up/down state a fault change toggles.
fn affected_links(topo: &Topology, change: FaultChange) -> Vec<DirectedLinkId> {
    match change {
        FaultChange::LinkDown(l) | FaultChange::LinkUp(l) => vec![l],
        FaultChange::SwitchDown(n) | FaultChange::SwitchUp(n) => (0..topo.num_links())
            .map(DirectedLinkId)
            .filter(|&l| {
                let e = topo.endpoints(l);
                e.from == n || e.to == n
            })
            .collect(),
    }
}

impl<R: Router> FlitSim<R> {
    /// Build a simulator with the paper's uniform random workload.
    /// Validates the configuration.
    pub fn new(topo: &Topology, router: R, cfg: SimConfig) -> Result<Self, SimError> {
        Self::with_traffic(topo, router, cfg, TrafficMode::Uniform)
    }

    /// Build a simulator with an explicit workload (permutation or
    /// hotspot traffic for cross-validation against the flow level).
    pub fn with_traffic(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
    ) -> Result<Self, SimError> {
        Self::with_faults(
            topo,
            router,
            cfg,
            traffic,
            &FaultSet::default(),
            FaultPolicy::Drop,
        )
    }

    /// Build a simulator with an explicit workload and a static fault
    /// set: output ports whose cable is in `faults` transfer nothing —
    /// their flits are discarded or jam according to `policy`. An empty
    /// fault set reproduces the fault-free simulator exactly.
    pub fn with_faults(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
        faults: &FaultSet,
        policy: FaultPolicy,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        traffic.validate(topo.num_pns())?;
        if topo.num_pns() < 2 {
            return Err(SimError::TooFewPns(topo.num_pns()));
        }
        let graph = PortGraph::new(topo);
        let ports = graph.num_ports() as usize;
        let rate = cfg.message_rate();
        let sources = (0..graph.num_pns())
            .map(|pn| Source::new(cfg.seed, pn, topo.up_ports(0), rate))
            .collect();
        // One VOQ per local output of the owning node (PNs eject through
        // a single queue).
        let in_buf = (0..ports as u32)
            .map(|p| {
                let owner = graph.port_owner(p);
                let voqs = if graph.is_pn(owner) {
                    1
                } else {
                    (graph.ports_of(owner).len()).max(1)
                };
                vec![VecDeque::new(); voqs]
            })
            .collect();
        // Map each failed directed link to the output port that feeds it.
        let mut failed_out = vec![false; ports];
        for link in faults.failed_links() {
            let e = topo.endpoints(link);
            let gid = graph.port_gid(graph.node_gid(e.from), e.from_port);
            failed_out[gid as usize] = true;
        }
        Ok(FlitSim {
            topo: topo.clone(),
            router,
            cfg,
            traffic,
            graph,
            now: 0,
            in_buf,
            out_buf: vec![VecDeque::new(); ports],
            credits: vec![cfg.buffer_flits(); ports],
            grant: vec![None; ports],
            rr_ptr: vec![0; ports],
            packets: Slab::new(),
            messages: Slab::new(),
            sources,
            path_buf: Vec::new(),
            failed_out,
            fault_policy: policy,
            discarding: vec![None; ports],
            link_mid_packet: vec![None; ports],
            resil: None,
            last_progress: 0,
            progress: false,
            total_injected: 0,
            total_delivered: 0,
            total_dropped: 0,
            total_duplicate: 0,
            w_injected: 0,
            w_delivered: 0,
            w_dropped: 0,
            w_duplicate: 0,
            w_disconnected: 0,
            w_created_messages: 0,
            w_completed_messages: 0,
            w_sum_delay: 0.0,
            w_max_delay: 0,
            w_delays: Vec::new(),
            link_busy: vec![0; ports],
        })
    }

    /// Build a simulator driven by a dynamic [`FaultSchedule`]: links and
    /// switches fail *and recover* mid-run. The physical fault state
    /// changes the cycle an event occurs; path selection only reacts
    /// `res.lag()` cycles later, when the affected cached SD selections
    /// are recomputed incrementally against the updated routing view.
    ///
    /// Takes the *base* router — the simulator degrades selections
    /// itself (surviving paths topped up to `min(K, X)` in canonical
    /// order), so wrap-in-[`FaultAware`](lmpr_core::FaultAware) is
    /// neither needed nor wanted here. With `res.retx` set, every packet
    /// becomes an end-to-end transfer with delivery timeout,
    /// exponential-backoff retransmission and duplicate suppression at
    /// the sink. An empty schedule with default resilience reproduces
    /// the fault-free simulator exactly.
    pub fn with_schedule(
        topo: &Topology,
        router: R,
        cfg: SimConfig,
        traffic: TrafficMode,
        schedule: FaultSchedule,
        policy: FaultPolicy,
        res: ResilienceConfig,
    ) -> Result<Self, SimError> {
        res.validate()?;
        let mut sim = Self::with_faults(topo, router, cfg, traffic, &FaultSet::default(), policy)?;
        sim.resil = Some(Resilience {
            schedule,
            cursor: 0,
            phys_faults: FaultSet::new(),
            view_faults: FaultSet::new(),
            lag: res.lag(),
            pending_view: VecDeque::new(),
            route_cache: HashMap::new(),
            retx: res.retx,
            ledger: RetxLedger::default(),
            reconv_events: 0,
            reconv_sum_lag: 0,
            reconv_max_lag: 0,
            routes_invalidated: 0,
        });
        Ok(sim)
    }

    /// One-shot: build, run warm-up plus measurement, return stats.
    pub fn simulate(topo: &Topology, router: R, cfg: SimConfig) -> Result<SimStats, SimError> {
        FlitSim::new(topo, router, cfg)?.run()
    }

    /// Run the configured warm-up and measurement phases and return the
    /// window statistics.
    ///
    /// Errors with [`SimError::Deadlock`] when the no-progress watchdog
    /// fires: no flit moved for `cfg.watchdog_cycles` cycles while flits
    /// were in flight or backlogged (e.g. blocking faults jam every
    /// route of a flow). Under a dynamic schedule with
    /// [`FaultPolicy::Block`], size the watchdog above the longest
    /// outage — a blocked port that will recover looks exactly like a
    /// deadlock until it does.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        let end = self.cfg.horizon();
        while self.now < end {
            self.step();
            if let Some(report) = self.watchdog_fired() {
                return Err(SimError::Deadlock(report));
            }
        }
        Ok(self.stats())
    }

    /// Like [`FlitSim::run`], but every `every` cycles (and once at the
    /// end) the runtime invariant monitors run; the findings come back
    /// with the stats. Error-severity findings abort the run at the
    /// failing checkpoint (the stats snapshot is the crash scene);
    /// warnings are deduplicated per rule and never abort.
    pub fn run_monitored(&mut self, every: u64) -> Result<(SimStats, Vec<Diagnostic>), SimError> {
        let every = every.max(1);
        let end = self.cfg.horizon();
        let mut warned: Vec<RuleId> = Vec::new();
        let mut report: Vec<Diagnostic> = Vec::new();
        while self.now < end {
            self.step();
            if let Some(r) = self.watchdog_fired() {
                return Err(SimError::Deadlock(r));
            }
            if self.now.is_multiple_of(every) {
                let mut fatal = false;
                for d in self.check_invariants() {
                    if d.severity == Severity::Error {
                        fatal = true;
                        report.push(d);
                    } else if !warned.contains(&d.rule) {
                        warned.push(d.rule);
                        report.push(d);
                    }
                }
                if fatal {
                    return Ok((self.stats(), report));
                }
            }
        }
        for d in self.check_invariants() {
            if d.severity == Severity::Error {
                report.push(d);
            } else if !warned.contains(&d.rule) {
                warned.push(d.rule);
                report.push(d);
            }
        }
        Ok((self.stats(), report))
    }

    /// Advance one cycle. Public so tests and harnesses can single-step.
    pub fn step(&mut self) {
        self.progress = false;
        self.advance_faults();
        self.process_timeouts();
        self.eject();
        self.crossbar();
        self.link_transfer();
        self.inject();
        self.now = self.now.saturating_add(1);
        if self.progress {
            self.last_progress = self.now;
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Snapshot of the window statistics (valid any time; final after
    /// [`FlitSim::run`]).
    pub fn stats(&self) -> SimStats {
        let (tc, td, tdr, rp, re, mean_rc, max_rc, ri) = match self.resil.as_ref() {
            Some(r) => (
                r.ledger.created,
                r.ledger.delivered,
                r.ledger.dropped,
                r.ledger.retransmitted,
                r.reconv_events,
                if r.reconv_events > 0 {
                    r.reconv_sum_lag as f64 / r.reconv_events as f64
                } else {
                    0.0
                },
                r.reconv_max_lag,
                r.routes_invalidated,
            ),
            None => (0, 0, 0, 0, 0, 0.0, 0, 0),
        };
        SimStats {
            offered_load: self.cfg.offered_load,
            measure_cycles: self.cfg.measure_cycles,
            num_pns: self.graph.num_pns(),
            injected_flits: self.w_injected,
            delivered_flits: self.w_delivered,
            dropped_flits: self.w_dropped,
            duplicate_flits: self.w_duplicate,
            disconnected_messages: self.w_disconnected,
            created_messages: self.w_created_messages,
            completed_messages: self.w_completed_messages,
            sum_message_delay: self.w_sum_delay,
            max_message_delay: self.w_max_delay,
            delay_p50: percentile_of(&self.w_delays, 0.50),
            delay_p95: percentile_of(&self.w_delays, 0.95),
            delay_p99: percentile_of(&self.w_delays, 0.99),
            final_source_backlog: self.sources.iter().map(|s| s.backlog() as u64).sum(),
            transfers_created: tc,
            transfers_delivered: td,
            transfers_dropped: tdr,
            retransmitted_packets: rp,
            reconvergence_events: re,
            mean_reconverge_cycles: mean_rc,
            max_reconverge_cycles: max_rc,
            routes_invalidated: ri,
        }
    }

    /// Fraction of the measurement window each directed cable (indexed
    /// by the *sending* port gid) spent transferring a flit. Only
    /// meaningful after a full run.
    pub fn link_utilization(&self) -> Vec<f64> {
        let window = self.cfg.measure_cycles.max(1) as f64;
        self.link_busy.iter().map(|&b| b as f64 / window).collect()
    }

    /// The port graph (to interpret [`FlitSim::link_utilization`]).
    pub fn graph(&self) -> &PortGraph {
        &self.graph
    }

    /// Conservation audit: every flit ever injected is either delivered
    /// (once or as a duplicate), dropped, or sitting in some buffer.
    pub fn flits_in_network(&self) -> u64 {
        let inputs: usize = self
            .in_buf
            .iter()
            .map(|voqs| voqs.iter().map(VecDeque::len).sum::<usize>())
            .sum();
        let outputs: usize = self.out_buf.iter().map(VecDeque::len).sum();
        (inputs + outputs) as u64
    }

    /// Lifetime injected/delivered counters (for audits).
    pub fn lifetime_counters(&self) -> (u64, u64) {
        (self.total_injected, self.total_delivered)
    }

    /// Lifetime count of flits discarded at failed links
    /// ([`FaultPolicy::Drop`]). The conservation invariant under faults
    /// is `injected = delivered + duplicate + in-network + dropped`.
    pub fn dropped_in_lifetime(&self) -> u64 {
        self.total_dropped
    }

    /// Lifetime count of flits suppressed at sinks as duplicates
    /// (end-to-end retransmission only).
    pub fn duplicates_in_lifetime(&self) -> u64 {
        self.total_duplicate
    }

    /// Packets currently queued at the sources (open-loop backlog).
    pub fn source_backlog(&self) -> u64 {
        self.sources.iter().map(|s| s.backlog() as u64).sum()
    }

    /// Snapshot of every counter the runtime conservation monitors
    /// reason about.
    pub fn conservation_ledger(&self) -> ConservationLedger {
        let (retx_enabled, created, delivered, dropped, in_flight) = match self.resil.as_ref() {
            Some(r) => (
                r.retx.is_some(),
                r.ledger.created,
                r.ledger.delivered,
                r.ledger.dropped,
                r.ledger.in_flight(),
            ),
            None => (false, 0, 0, 0, 0),
        };
        ConservationLedger {
            injected: self.total_injected,
            delivered: self.total_delivered,
            duplicate: self.total_duplicate,
            dropped: self.total_dropped,
            in_network: self.flits_in_network(),
            retx_enabled,
            transfers_created: created,
            transfers_delivered: delivered,
            transfers_dropped: dropped,
            transfers_in_flight: in_flight,
        }
    }

    /// Run every runtime invariant monitor against the current state:
    /// flit and transfer conservation (`RT-CONSERVE`), duplicate
    /// delivery (`RT-DUP`), online progress (`RT-PROGRESS`), and
    /// validity of every cached routing selection against the routing
    /// view's fault state (`RT-SELECT`). An empty result is the runtime
    /// analogue of a verification certificate.
    pub fn check_invariants(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.conservation_ledger().check(&mut out);
        check_progress(
            self.now.saturating_sub(self.last_progress),
            self.cfg.watchdog_cycles,
            self.flits_in_network() > 0 || self.source_backlog() > 0,
            &mut out,
        );
        if let Some(r) = self.resil.as_ref() {
            let mut keys: Vec<u64> = r.route_cache.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let Some(cr) = r.route_cache.get(&key) else {
                    continue;
                };
                let (s, d) = route_key_pair(key);
                for (i, &p) in cr.paths.iter().enumerate() {
                    if cr.paths[..i].contains(&p) {
                        out.push(Diagnostic::error(
                            RuleId::RtSelection,
                            format!(
                                "cached selection of ({}, {}) lists path {} twice",
                                s.0, d.0, p.0
                            ),
                            Witness::Path {
                                src: s,
                                dst: d,
                                path: p,
                            },
                        ));
                    }
                    if !r.view_faults.path_survives(&self.topo, s, d, p) {
                        out.push(Diagnostic::error(
                            RuleId::RtSelection,
                            format!(
                                "cached selection of ({}, {}) crosses a link the routing \
                                 view knows is dead (path {})",
                                s.0, d.0, p.0
                            ),
                            Witness::Path {
                                src: s,
                                dst: d,
                                path: p,
                            },
                        ));
                    }
                }
                if cr.paths.is_empty() && r.view_faults.num_surviving(&self.topo, s, d) > 0 {
                    out.push(Diagnostic::error(
                        RuleId::RtSelection,
                        format!(
                            "pair ({}, {}) cached as disconnected while paths survive \
                             in the routing view",
                            s.0, d.0
                        ),
                        Witness::Pair { src: s, dst: d },
                    ));
                }
            }
        }
        out
    }

    /// Snapshot for the watchdog's diagnostic report.
    fn deadlock_report(&self, stalled_for: u64) -> DeadlockReport {
        DeadlockReport {
            cycle: self.now,
            stalled_for,
            flits_in_network: self.flits_in_network(),
            in_flight_packets: self.packets.len(),
            blocked_ports: self.out_buf.iter().filter(|b| !b.is_empty()).count(),
            source_backlog: self.source_backlog(),
        }
    }

    fn watchdog_fired(&self) -> Option<DeadlockReport> {
        if self.cfg.watchdog_cycles == 0 {
            return None;
        }
        let stalled = self.now.saturating_sub(self.last_progress);
        if stalled > self.cfg.watchdog_cycles
            && (self.flits_in_network() > 0 || self.source_backlog() > 0)
        {
            Some(self.deadlock_report(stalled))
        } else {
            None
        }
    }

    fn in_window(&self) -> bool {
        self.now >= self.cfg.warmup_cycles && self.now < self.cfg.horizon()
    }

    fn retx_config(&self) -> Option<RetxConfig> {
        self.resil.as_ref().and_then(|r| r.retx)
    }

    // ------------------------------------------------------------------
    // Stage 0a: fault timeline — physical events now, view events after
    // the detection + reconvergence lag.
    // ------------------------------------------------------------------
    fn advance_faults(&mut self) {
        let Some(r) = self.resil.as_mut() else {
            return;
        };
        // Phase 1: events striking this cycle hit the cables immediately.
        let mut changes: Vec<FaultChange> = Vec::new();
        while let Some(e) = r.schedule.events().get(r.cursor) {
            if e.at > self.now {
                break;
            }
            e.change.apply(&self.topo, &mut r.phys_faults);
            changes.push(e.change);
            r.cursor += 1;
        }
        if !changes.is_empty() {
            for &change in &changes {
                for link in affected_links(&self.topo, change) {
                    let e = self.topo.endpoints(link);
                    let gid = self
                        .graph
                        .port_gid(self.graph.node_gid(e.from), e.from_port);
                    self.failed_out[gid as usize] = r.phys_faults.is_link_failed(link);
                }
            }
            let apply_at = self.now.saturating_add(r.lag);
            r.pending_view.push_back(ViewBatch {
                event_at: self.now,
                apply_at,
                changes,
            });
        }
        // Phase 2: the routing view catches up on due batches. Only
        // cached selections the batch actually touched are flushed —
        // incremental reconvergence, not a rebuild.
        while r
            .pending_view
            .front()
            .is_some_and(|b| b.apply_at <= self.now)
        {
            let Some(batch) = r.pending_view.pop_front() else {
                break;
            };
            let mut newly_down = FaultSet::new();
            let mut any_up = false;
            for &change in &batch.changes {
                match change {
                    FaultChange::LinkDown(_) | FaultChange::SwitchDown(_) => {
                        change.apply(&self.topo, &mut newly_down);
                    }
                    FaultChange::LinkUp(_) | FaultChange::SwitchUp(_) => any_up = true,
                }
                change.apply(&self.topo, &mut r.view_faults);
            }
            let before = r.route_cache.len();
            if !newly_down.is_empty() {
                let topo = &self.topo;
                r.route_cache.retain(|&key, cr| {
                    let (s, d) = route_key_pair(key);
                    cr.paths
                        .iter()
                        .all(|&p| newly_down.path_survives(topo, s, d, p))
                });
            }
            if any_up {
                // Degraded (and disconnected) selections may improve now
                // that something recovered; pristine ones cannot.
                r.route_cache.retain(|_, cr| !cr.degraded);
            }
            r.routes_invalidated += (before - r.route_cache.len()) as u64;
            r.reconv_events += 1;
            let lag = self.now.saturating_sub(batch.event_at);
            r.reconv_sum_lag = r.reconv_sum_lag.saturating_add(lag);
            r.reconv_max_lag = r.reconv_max_lag.max(lag);
        }
    }

    // ------------------------------------------------------------------
    // Stage 0b: end-to-end delivery timeouts and retransmission.
    // ------------------------------------------------------------------
    fn process_timeouts(&mut self) {
        let Some(rc) = self.retx_config() else {
            return;
        };
        loop {
            let due = match self.resil.as_ref().and_then(|r| r.ledger.timeouts.peek()) {
                Some(&Reverse((deadline, xfer, seq, sends))) if deadline <= self.now => {
                    (xfer, seq, sends)
                }
                _ => break,
            };
            if let Some(r) = self.resil.as_mut() {
                r.ledger.timeouts.pop();
            }
            self.handle_timeout(due.0, due.1, due.2, rc);
        }
    }

    fn handle_timeout(&mut self, xfer: u32, seq: u64, sends: u32, rc: RetxConfig) {
        let info = self
            .resil
            .as_ref()
            .and_then(|r| r.ledger.transfers.get(xfer))
            .map(|t| (t.seq, t.state, t.sends, t.ever_sent));
        // Reaped or slot reused by a different transfer: stale.
        let Some((cur_seq, state, cur_sends, ever_sent)) = info else {
            return;
        };
        // Resolved, superseded by a newer attempt, or a slot-reuse
        // collision (the armed transfer was reaped and an unrelated one
        // now lives at this key): stale either way.
        if cur_seq != seq || state != XferState::InFlight || cur_sends != sends {
            return;
        }
        if cur_sends > rc.max_retries {
            // The cap of 1 + max_retries total attempts is exhausted.
            let cause = if ever_sent {
                DropCause::RetryExhausted
            } else {
                DropCause::Disconnected
            };
            if let Some(r) = self.resil.as_mut() {
                if let Some(t) = r.ledger.transfers.get_mut(xfer) {
                    t.state = XferState::Dropped(cause);
                }
                r.ledger.dropped += 1;
                r.ledger.maybe_reap(xfer);
            }
            return;
        }
        self.retransmit(xfer);
    }

    fn retransmit(&mut self, xfer: u32) {
        let Some((src, dst, msg)) = self
            .resil
            .as_ref()
            .and_then(|r| r.ledger.transfers.get(xfer))
            .map(|t| (t.src, t.dst, t.msg))
        else {
            return;
        };
        self.ensure_routes(PnId(src), dst);
        let paths = std::mem::take(&mut self.path_buf);
        let sends = {
            let bumped = self
                .resil
                .as_mut()
                .and_then(|r| r.ledger.transfers.get_mut(xfer))
                .map(|t| {
                    t.sends += 1;
                    t.sends
                });
            let Some(sends) = bumped else {
                self.path_buf = paths;
                return;
            };
            sends
        };
        if paths.is_empty() {
            // Still disconnected in the routing view: the attempt is
            // burned (the backoff clock keeps ticking) and the next
            // timeout re-examines the — possibly reconverged — view.
            self.arm_timeout(xfer, sends);
            self.path_buf = paths;
            return;
        }
        let choice = self.sources[src as usize].pick_message_path(paths.len());
        let route: Box<[u16]> = self
            .topo
            .path_output_ports(PnId(src), dst, paths[choice])
            .into_iter()
            .map(|p| p as u16)
            .collect();
        if route.is_empty() {
            debug_assert!(false, "a transfer can never be a self-pair");
            self.arm_timeout(xfer, sends);
            self.path_buf = paths;
            return;
        }
        let first_port = route[0] as usize;
        let pkt = self.packets.insert(Packet {
            msg,
            len: self.cfg.packet_flits,
            route,
            dst,
            xfer,
        });
        if let Some(r) = self.resil.as_mut() {
            if let Some(t) = r.ledger.transfers.get_mut(xfer) {
                if t.ever_sent {
                    r.ledger.retransmitted += 1;
                }
                t.ever_sent = true;
                t.live_copies += 1;
            }
        }
        self.sources[src as usize].queues[first_port]
            .push_back(StreamingPacket { pkt, next_seq: 0 });
        self.arm_timeout(xfer, sends);
        self.path_buf = paths;
    }

    /// Create a transfer record for one reliable packet. `queued` marks
    /// whether a first copy is being queued right now.
    fn new_transfer(&mut self, src: u32, dst: PnId, msg: u32, queued: bool) -> u32 {
        let Some(r) = self.resil.as_mut() else {
            debug_assert!(false, "transfers exist only under a resilience config");
            return NO_XFER;
        };
        r.ledger.created += 1;
        r.ledger.transfers.insert(Transfer {
            seq: r.ledger.created,
            src,
            dst,
            msg,
            sends: 1,
            ever_sent: queued,
            live_copies: queued as u32,
            state: XferState::InFlight,
        })
    }

    fn arm_timeout(&mut self, xfer: u32, sends: u32) {
        let now = self.now;
        let Some(r) = self.resil.as_mut() else {
            return;
        };
        let Some(rc) = r.retx else {
            return;
        };
        let Some(seq) = r.ledger.transfers.get(xfer).map(|t| t.seq) else {
            return;
        };
        r.ledger.timeouts.push(Reverse((
            backoff_deadline(now, rc.timeout, sends),
            xfer,
            seq,
            sends,
        )));
    }

    /// Fill `self.path_buf` with the selection for the pair. Under a
    /// resilience config the result is the cached surviving selection
    /// computed against the routing view (base selection degraded: dead
    /// paths replaced by survivors scanned from the pair's d-mod-k
    /// index); otherwise the router's plain selection.
    fn ensure_routes(&mut self, s: PnId, d: PnId) {
        let mut paths = std::mem::take(&mut self.path_buf);
        paths.clear();
        if let Some(r) = self.resil.as_mut() {
            let key = route_key(s, d);
            if let Some(cached) = r.route_cache.get(&key) {
                paths.extend_from_slice(&cached.paths);
            } else {
                self.router.fill_paths(&self.topo, s, d, &mut paths);
                let degraded = match degrade_selection(&self.topo, s, d, &r.view_faults, &mut paths)
                {
                    Ok(modified) => modified,
                    Err(_) => {
                        paths.clear();
                        true
                    }
                };
                r.route_cache.insert(
                    key,
                    CachedRoute {
                        paths: paths.clone(),
                        degraded,
                    },
                );
            }
        } else {
            self.router.fill_paths(&self.topo, s, d, &mut paths);
        }
        self.path_buf = paths;
    }

    // ------------------------------------------------------------------
    // Stage 1: ejection at processing nodes.
    // ------------------------------------------------------------------
    fn eject(&mut self) {
        for pn in 0..self.graph.num_pns() {
            for port in self.graph.ports_of(pn) {
                let Some(&f) = self.in_buf[port as usize][0].front() else {
                    continue;
                };
                if f.entered >= self.now {
                    continue; // arrived this cycle; consumable next cycle
                }
                self.in_buf[port as usize][0].pop_front();
                self.credits[self.graph.peer(port) as usize] += 1;
                self.deliver(pn, f);
            }
        }
    }

    fn deliver(&mut self, pn: u32, f: Flit) {
        let Some(pkt) = self.packets.get(f.pkt) else {
            debug_assert!(false, "ejected flit references a vacant packet record");
            return;
        };
        debug_assert_eq!(pkt.dst, PnId(pn), "flit ejected at the wrong PN");
        debug_assert_eq!(f.hop as usize, pkt.route.len(), "flit ejected mid-route");
        let (msg_key, is_tail, len, xfer) = (pkt.msg, pkt.is_tail(f.seq), pkt.len, pkt.xfer);
        self.progress = true;
        if xfer != NO_XFER {
            self.deliver_reliable(f, msg_key, is_tail, len, xfer);
            return;
        }
        self.total_delivered += 1;
        if self.in_window() {
            self.w_delivered += 1;
        }
        if is_tail {
            self.packets.remove(f.pkt);
        }
        let Some(msg) = self.messages.get_mut(msg_key) else {
            debug_assert!(false, "delivered flit references a vacant message record");
            return;
        };
        msg.remaining_flits = msg.remaining_flits.saturating_sub(1);
        if msg.remaining_flits == 0 {
            self.complete_message(msg_key);
        }
    }

    /// Sink-side duplicate suppression: the first copy whose flits
    /// arrive while the transfer is unresolved counts as delivered; its
    /// tail resolves the transfer and advances the message. Copies of an
    /// already-resolved transfer (delivered by a sibling, or dropped
    /// because the source gave up) count as duplicates flit by flit.
    fn deliver_reliable(&mut self, f: Flit, msg_key: u32, is_tail: bool, len: u16, xfer: u32) {
        let state = self
            .resil
            .as_ref()
            .and_then(|r| r.ledger.transfers.get(xfer))
            .map(|t| t.state);
        debug_assert!(state.is_some(), "live copy of a reaped transfer");
        let first_copy = state == Some(XferState::InFlight);
        if first_copy {
            self.total_delivered += 1;
            if self.in_window() {
                self.w_delivered += 1;
            }
        } else {
            self.total_duplicate += 1;
            if self.in_window() {
                self.w_duplicate += 1;
            }
        }
        if !is_tail {
            return;
        }
        self.packets.remove(f.pkt);
        if let Some(r) = self.resil.as_mut() {
            if let Some(t) = r.ledger.transfers.get_mut(xfer) {
                t.live_copies = t.live_copies.saturating_sub(1);
                if first_copy {
                    t.state = XferState::Delivered;
                }
            }
            if first_copy {
                r.ledger.delivered += 1;
            }
            r.ledger.maybe_reap(xfer);
        }
        if first_copy {
            let Some(msg) = self.messages.get_mut(msg_key) else {
                debug_assert!(false, "transfer references a vacant message record");
                return;
            };
            msg.remaining_flits = msg.remaining_flits.saturating_sub(len as u32);
            if msg.remaining_flits == 0 {
                self.complete_message(msg_key);
            }
        }
    }

    fn complete_message(&mut self, msg_key: u32) {
        let Some(msg) = self.messages.remove(msg_key) else {
            return;
        };
        if msg.measured {
            let delay = self.now.saturating_sub(msg.created);
            self.w_completed_messages += 1;
            self.w_sum_delay += delay as f64;
            self.w_max_delay = self.w_max_delay.max(delay);
            self.w_delays.push(delay);
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: crossbar traversal at switches (input → output buffers).
    // ------------------------------------------------------------------
    fn crossbar(&mut self) {
        let cap = self.cfg.buffer_flits();
        for node in self.graph.num_pns()..self.graph.num_nodes() {
            let ports = self.graph.ports_of(node);
            let n_ports = (ports.end - ports.start) as usize;
            for out in ports.clone() {
                let out_local = (out - ports.start) as usize;
                if let Some((in_gid, pkt_key)) = self.grant[out as usize] {
                    // A packet holds this output until its tail passes.
                    let Some(&f) = self.in_buf[in_gid as usize][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert_eq!(
                        f.pkt, pkt_key,
                        "foreign packet at VOQ head while output is granted"
                    );
                    if self.out_buf[out as usize].len() as u32 == cap {
                        continue; // output staging full; packet waits at the input
                    }
                    self.move_through_crossbar(in_gid, out_local, out);
                    // A vacant record means the tail already passed some
                    // impossible way; releasing the grant keeps the port
                    // usable either way.
                    if self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq)) {
                        self.grant[out as usize] = None;
                    }
                    continue;
                }
                // No grant: round-robin over the node's inputs for a VOQ
                // head flit destined here.
                //
                // Note the whole-packet VCT reservation applies at the
                // *link* (downstream input buffer); within the switch a
                // blocked packet may straddle the input and output
                // buffers, as in real combined-queue VCT switches.
                if self.out_buf[out as usize].len() as u32 == cap {
                    continue;
                }
                let start = self.rr_ptr[out as usize] as usize;
                for k in 0..n_ports {
                    let local_in = (start + k) % n_ports;
                    let in_gid = ports.start + local_in as u32;
                    let Some(&f) = self.in_buf[in_gid as usize][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert!(f.is_head(), "VOQ head must be a packet head between grants");
                    let Some(pkt) = self.packets.get(f.pkt) else {
                        debug_assert!(false, "VOQ head references a vacant packet record");
                        continue;
                    };
                    let len = pkt.len;
                    debug_assert_eq!(
                        pkt.route.get(f.hop as usize).map(|&p| p as usize),
                        Some(out_local)
                    );
                    self.move_through_crossbar(in_gid, out_local, out);
                    if len > 1 {
                        self.grant[out as usize] = Some((in_gid, f.pkt));
                    }
                    self.rr_ptr[out as usize] = (local_in as u32 + 1) % n_ports as u32;
                    break;
                }
            }
        }
    }

    fn move_through_crossbar(&mut self, in_gid: u32, voq: usize, out_gid: u32) {
        let Some(mut f) = self.in_buf[in_gid as usize][voq].pop_front() else {
            debug_assert!(false, "VOQ head vanished between inspection and move");
            return;
        };
        self.credits[self.graph.peer(in_gid) as usize] += 1;
        f.entered = self.now;
        self.out_buf[out_gid as usize].push_back(f);
        self.progress = true;
    }

    // ------------------------------------------------------------------
    // Stage 3: link transfer (output buffer → downstream input buffer).
    // ------------------------------------------------------------------
    fn link_transfer(&mut self) {
        for out in 0..self.graph.num_ports() {
            let o = out as usize;
            let Some(&f) = self.out_buf[o].front() else {
                continue;
            };
            if f.entered >= self.now {
                continue;
            }
            // A packet truncated here earlier keeps draining here, even
            // if the cable has recovered since — downstream must never
            // see a headless packet.
            if self.discarding[o] == Some(f.pkt) {
                self.drop_front_flit(o);
                continue;
            }
            // Failure takes effect at packet granularity: a packet that
            // started crossing before the cable died completes.
            if self.failed_out[o] && self.link_mid_packet[o] != Some(f.pkt) {
                match self.fault_policy {
                    // A dead cable transfers nothing; traffic routed over
                    // it backs up until the link recovers (or the
                    // watchdog aborts the run).
                    FaultPolicy::Block => continue,
                    // Discard at the failure point. The rest of the
                    // packet drains via the `discarding` marker; no
                    // credit moves and nothing downstream ever sees the
                    // packet. The packet record is retired when its tail
                    // drops (a dropped *transfer* copy releases its pin
                    // on the transfer record there).
                    FaultPolicy::Drop => {
                        self.drop_front_flit(o);
                        continue;
                    }
                }
            }
            let need = if f.is_head() {
                self.packets.get(f.pkt).map_or(1, |p| p.len as u32)
            } else {
                debug_assert!(
                    self.credits[o] >= 1,
                    "credit reservation violated for a body flit"
                );
                1
            };
            if self.credits[o] < need {
                continue;
            }
            let Some(mut f) = self.out_buf[o].pop_front() else {
                continue;
            };
            self.credits[o] -= 1;
            self.progress = true;
            if self.in_window() {
                self.link_busy[o] += 1;
            }
            let is_tail = self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq));
            if is_tail {
                self.link_mid_packet[o] = None;
            } else if f.is_head() {
                self.link_mid_packet[o] = Some(f.pkt);
            }
            f.hop += 1;
            f.entered = self.now;
            let dst_in = self.graph.peer(out);
            let voq = self.voq_of(dst_in, &f);
            self.in_buf[dst_in as usize][voq].push_back(f);
        }
    }

    /// Discard the flit at the head of output `o`, maintaining the
    /// truncated-packet drain marker and the drop counters. When the
    /// tail goes, the packet record is retired.
    fn drop_front_flit(&mut self, o: usize) {
        let Some(f) = self.out_buf[o].pop_front() else {
            return;
        };
        self.total_dropped += 1;
        if self.in_window() {
            self.w_dropped += 1;
        }
        self.progress = true;
        let is_tail = self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq));
        if is_tail {
            self.discarding[o] = None;
            self.retire_dropped_packet(f.pkt);
        } else {
            self.discarding[o] = Some(f.pkt);
        }
    }

    /// Remove a fully-discarded packet's record; if end-to-end
    /// reliability tracks it, release the copy's pin on the transfer so
    /// the retransmission machinery (not this drop) decides its fate.
    fn retire_dropped_packet(&mut self, pkt_key: u32) {
        let Some(pkt) = self.packets.remove(pkt_key) else {
            return;
        };
        if pkt.xfer == NO_XFER {
            return;
        }
        if let Some(r) = self.resil.as_mut() {
            if let Some(t) = r.ledger.transfers.get_mut(pkt.xfer) {
                t.live_copies = t.live_copies.saturating_sub(1);
            }
            r.ledger.maybe_reap(pkt.xfer);
        }
    }

    /// VOQ a flit arriving on input port `in_gid` must join: the local
    /// output it will leave through, or queue 0 at a processing node
    /// (ejection).
    fn voq_of(&self, in_gid: u32, f: &Flit) -> usize {
        let owner = self.graph.port_owner(in_gid);
        if self.graph.is_pn(owner) {
            debug_assert!(
                self.packets
                    .get(f.pkt)
                    .is_some_and(|p| f.hop as usize == p.route.len()),
                "a flit reaching a PN must be at its final hop"
            );
            0
        } else {
            debug_assert!(
                self.packets
                    .get(f.pkt)
                    .is_some_and(|p| (f.hop as usize) < p.route.len()),
                "a flit at a switch must have a next hop"
            );
            self.packets
                .get(f.pkt)
                .and_then(|p| p.route.get(f.hop as usize))
                .map_or(0, |&p| p as usize)
        }
    }

    // ------------------------------------------------------------------
    // Stage 4: message creation and source injection.
    // ------------------------------------------------------------------
    fn inject(&mut self) {
        let rate = self.cfg.message_rate();
        let num_pns = self.graph.num_pns();
        for pn in 0..num_pns {
            while self.sources[pn as usize].poll_arrival(self.now, rate) {
                self.create_message(pn);
            }
            self.stream_source_flits(pn);
        }
    }

    fn create_message(&mut self, pn: u32) {
        let src = PnId(pn);
        let traffic = std::mem::replace(&mut self.traffic, TrafficMode::Uniform);
        let picked =
            self.sources[pn as usize].pick_destination_mode(&traffic, pn, self.graph.num_pns());
        self.traffic = traffic;
        let Some(dst) = picked else {
            return; // self-mapped permutation entry: this source is silent
        };
        let dst = PnId(dst);
        self.ensure_routes(src, dst);
        let paths = std::mem::take(&mut self.path_buf);
        let retx = self.retx_config();
        let measured = self.in_window();
        if paths.is_empty() {
            if measured {
                self.w_disconnected += 1;
            }
            if retx.is_none() {
                // No surviving route and no reliability: the message is
                // never materialized, only counted.
                self.path_buf = paths;
                return;
            }
            // Reliability keeps the bookkeeping alive: each packet
            // becomes a transfer that retries — and may succeed once the
            // view reconverges — or drops as Disconnected.
            if measured {
                self.w_created_messages += 1;
            }
            let msg = self.messages.insert(Message {
                created: self.now,
                remaining_flits: self.cfg.message_flits(),
                measured,
            });
            for _ in 0..self.cfg.packets_per_message {
                let xfer = self.new_transfer(pn, dst, msg, false);
                self.arm_timeout(xfer, 1);
            }
            self.path_buf = paths;
            return;
        }
        if measured {
            self.w_created_messages += 1;
        }
        let msg = self.messages.insert(Message {
            created: self.now,
            remaining_flits: self.cfg.message_flits(),
            measured,
        });
        let per_message_choice = self.sources[pn as usize].pick_message_path(paths.len());
        for _ in 0..self.cfg.packets_per_message {
            let choice = self.sources[pn as usize].pick_path(
                self.cfg.path_policy,
                paths.len(),
                per_message_choice,
            );
            let route: Box<[u16]> = self
                .topo
                .path_output_ports(src, dst, paths[choice])
                .into_iter()
                .map(|p| p as u16)
                .collect();
            debug_assert!(!route.is_empty(), "traffic modes never self-address");
            let xfer = if retx.is_some() {
                let x = self.new_transfer(pn, dst, msg, true);
                self.arm_timeout(x, 1);
                x
            } else {
                NO_XFER
            };
            let first_port = route[0] as usize;
            let pkt = self.packets.insert(Packet {
                msg,
                len: self.cfg.packet_flits,
                route,
                dst,
                xfer,
            });
            self.sources[pn as usize].queues[first_port]
                .push_back(StreamingPacket { pkt, next_seq: 0 });
        }
        self.path_buf = paths;
    }

    fn stream_source_flits(&mut self, pn: u32) {
        let cap = self.cfg.buffer_flits();
        let n_ports = self.sources[pn as usize].queues.len();
        for local in 0..n_ports {
            let Some(&sp) = self.sources[pn as usize].queues[local].front() else {
                continue;
            };
            let Some(len) = self.packets.get(sp.pkt).map(|p| p.len) else {
                debug_assert!(false, "queued packet references a vacant record");
                self.sources[pn as usize].queues[local].pop_front();
                continue;
            };
            let out = self.graph.port_gid(pn, local as u32) as usize;
            if cap == self.out_buf[out].len() as u32 {
                continue; // NIC staging buffer full
            }
            self.out_buf[out].push_back(Flit {
                pkt: sp.pkt,
                seq: sp.next_seq,
                hop: 0,
                entered: self.now,
            });
            self.total_injected += 1;
            self.progress = true;
            if self.in_window() {
                self.w_injected += 1;
            }
            let q = &mut self.sources[pn as usize].queues[local];
            if let Some(head) = q.front_mut() {
                head.next_seq += 1;
                if head.next_seq == len {
                    q.pop_front();
                }
            }
        }
    }
}

/// Sort-and-query helper over an unsorted delay sample.
fn percentile_of(delays: &[u64], q: f64) -> f64 {
    let mut sorted = delays.to_vec();
    sorted.sort_unstable();
    percentile(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathPolicy;
    use lmpr_core::{DModK, Disjoint};
    use xgft::{FaultEvent, XgftSpec};

    fn small_topo() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
    }

    fn quick_cfg(load: f64) -> SimConfig {
        SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 6_000,
            offered_load: load,
            ..SimConfig::default()
        }
    }

    #[test]
    fn low_load_delivers_what_it_injects() {
        let topo = small_topo();
        let stats = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
        let t = stats.accepted_throughput();
        assert!(
            (t - 0.1).abs() < 0.02,
            "at 10% load throughput must track offered load, got {t}"
        );
        assert!(stats.completion_rate() > 0.95);
        assert!(stats.avg_message_delay() > 0.0);
    }

    #[test]
    fn conservation_of_flits() {
        let topo = small_topo();
        let mut sim = FlitSim::new(&topo, Disjoint::new(2), quick_cfg(0.6)).expect("valid config");
        for _ in 0..5_000 {
            sim.step();
        }
        let (injected, delivered) = sim.lifetime_counters();
        assert_eq!(
            injected,
            delivered + sim.flits_in_network(),
            "flits must be conserved"
        );
        assert!(delivered > 0);
        let ledger = sim.conservation_ledger();
        assert!(ledger.flit_balance_holds());
        assert!(ledger.transfer_balance_holds());
        assert!(sim.check_invariants().is_empty());
    }

    #[test]
    fn zero_load_latency_matches_pipeline_depth() {
        // At a vanishing load a message's delay approaches the no-
        // contention pipeline latency: each of the 2κ+1 link crossings
        // costs ~2 cycles (buffer + wire) and the message streams
        // message_flits flits behind its head.
        let topo = small_topo();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 60_000,
            offered_load: 0.005,
            ..SimConfig::default()
        };
        let stats = FlitSim::simulate(&topo, DModK, cfg).expect("valid config");
        assert!(stats.completed_messages > 10);
        let delay = stats.avg_message_delay();
        // Lower bound: serialization alone (64 flits) plus a couple of
        // hops; upper bound: generous contention-free envelope.
        assert!(delay > 64.0, "delay {delay} below serialization bound");
        assert!(delay < 110.0, "delay {delay} too high for near-zero load");
    }

    #[test]
    fn saturation_backlog_grows_with_overload() {
        let topo = small_topo();
        let low = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
        let high = FlitSim::simulate(&topo, DModK, quick_cfg(1.0)).expect("valid config");
        assert!(high.final_source_backlog > low.final_source_backlog);
        // Overloaded d-mod-k cannot deliver the full offered load.
        assert!(high.accepted_throughput() < 0.95);
    }

    #[test]
    fn multipath_beats_single_path_at_high_load() {
        // On the paper's 3-level Table-1 topology, limited multi-path
        // routing must outperform d-mod-k at high uniform load.
        let topo = Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap());
        let single = FlitSim::simulate(&topo, DModK, quick_cfg(0.8)).expect("valid config");
        let multi =
            FlitSim::simulate(&topo, Disjoint::new(4), quick_cfg(0.8)).expect("valid config");
        assert!(
            multi.accepted_throughput() > single.accepted_throughput(),
            "disjoint(4) {:.3} must beat d-mod-k {:.3} at 80% uniform load",
            multi.accepted_throughput(),
            single.accepted_throughput()
        );
    }

    #[test]
    fn policies_all_run() {
        let topo = small_topo();
        for policy in [
            PathPolicy::PerPacketRandom,
            PathPolicy::PerMessageRandom,
            PathPolicy::RoundRobin,
        ] {
            let cfg = SimConfig {
                path_policy: policy,
                ..quick_cfg(0.4)
            };
            let stats = FlitSim::simulate(&topo, Disjoint::new(4), cfg).expect("valid config");
            assert!(
                stats.delivered_flits > 0,
                "policy {policy:?} delivered nothing"
            );
        }
    }

    #[test]
    fn percentiles_bracket_the_mean_and_util_is_sane() {
        let topo = small_topo();
        let mut sim = FlitSim::new(&topo, DModK, quick_cfg(0.4)).expect("valid config");
        let stats = sim.run().expect("no deadlock");
        assert!(stats.delay_p50 > 0.0);
        assert!(stats.delay_p50 <= stats.delay_p95);
        assert!(stats.delay_p95 <= stats.delay_p99);
        assert!(stats.delay_p99 <= stats.max_message_delay as f64);
        assert!(stats.delay_p50 <= stats.avg_message_delay() * 1.5);
        let util = sim.link_utilization();
        assert_eq!(util.len(), sim.graph().num_ports() as usize);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
        // Injection links carry roughly the offered load.
        let pn0_out = util[sim.graph().port_gid(0, 0) as usize];
        assert!(
            (pn0_out - 0.4).abs() < 0.12,
            "PN0 injection utilization {pn0_out}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = small_topo();
        let a = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
        let b = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
        assert_eq!(a, b);
        let c = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5).with_seed(9))
            .expect("valid config");
        assert_ne!(a, c);
    }

    #[test]
    fn empty_fault_set_is_bit_identical() {
        let topo = small_topo();
        let a = FlitSim::simulate(&topo, DModK, quick_cfg(0.5)).expect("valid config");
        let b = FlitSim::with_faults(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            &FaultSet::default(),
            FaultPolicy::Block,
        )
        .expect("valid config")
        .run()
        .expect("no deadlock");
        assert_eq!(a, b);
        assert_eq!(a.dropped_flits, 0);
        assert_eq!(a.disconnected_messages, 0);
    }

    #[test]
    fn empty_schedule_matches_plain_run() {
        // The resilience layer with nothing to do must be invisible:
        // same RNG consumption, same stats, all resilience counters 0.
        let topo = small_topo();
        let plain = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid");
        let sched = FlitSim::with_schedule(
            &topo,
            Disjoint::new(2),
            quick_cfg(0.5),
            TrafficMode::Uniform,
            FaultSchedule::default(),
            FaultPolicy::Drop,
            ResilienceConfig::default(),
        )
        .expect("valid config")
        .run()
        .expect("no deadlock");
        assert_eq!(plain, sched);
        assert_eq!(sched.reconvergence_events, 0);
        assert_eq!(sched.transfers_created, 0);
        assert_eq!(sched.duplicate_flits, 0);
    }

    #[test]
    fn scripted_outage_dips_and_recovers() {
        // One level-2 up-link dies mid-run and is repaired. Under the
        // blocking policy nothing is lost: traffic jams, the routing
        // view reconverges after the configured lag, and the backlog
        // drains after repair — the run completes with clean invariants.
        let topo = small_topo();
        let link = topo.up_link(2, 0, 0);
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 3_000,
                change: FaultChange::LinkDown(link),
            },
            FaultEvent {
                at: 5_000,
                change: FaultChange::LinkUp(link),
            },
        ]);
        let res = ResilienceConfig {
            detect_cycles: 100,
            reconverge_cycles: 100,
            retx: None,
        };
        let mut sim = FlitSim::with_schedule(
            &topo,
            DModK,
            quick_cfg(0.3),
            TrafficMode::Uniform,
            schedule,
            FaultPolicy::Block,
            res,
        )
        .expect("valid config");
        let stats = sim
            .run()
            .expect("no deadlock: the outage is shorter than the watchdog");
        assert_eq!(stats.reconvergence_events, 2, "one batch down, one up");
        assert!(
            (stats.mean_reconverge_cycles - 200.0).abs() < 1e-9,
            "realized lag must equal detect + reconverge, got {}",
            stats.mean_reconverge_cycles
        );
        assert_eq!(stats.max_reconverge_cycles, 200);
        assert!(
            stats.routes_invalidated > 0,
            "d-mod-k selections crossing the dead link must be flushed"
        );
        assert_eq!(stats.dropped_flits, 0, "blocking policy loses nothing");
        assert!(stats.delivered_flits > 0);
        let diags = sim.check_invariants();
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn retransmission_recovers_drops() {
        // Drop policy + a long outage: packets routed over the dead link
        // are discarded until the view reconverges; end-to-end
        // retransmission resends them and the ledger accounts for every
        // transfer exactly once.
        let topo = small_topo();
        let link = topo.up_link(2, 0, 0);
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 2_500,
                change: FaultChange::LinkDown(link),
            },
            FaultEvent {
                at: 6_000,
                change: FaultChange::LinkUp(link),
            },
        ]);
        let res = ResilienceConfig {
            detect_cycles: 50,
            reconverge_cycles: 50,
            retx: Some(RetxConfig {
                timeout: 600,
                max_retries: 6,
            }),
        };
        let mut sim = FlitSim::with_schedule(
            &topo,
            DModK,
            quick_cfg(0.4),
            TrafficMode::Uniform,
            schedule,
            FaultPolicy::Drop,
            res,
        )
        .expect("valid config");
        let stats = sim.run().expect("no deadlock");
        assert!(stats.dropped_flits > 0, "the outage must discard something");
        assert!(
            stats.retransmitted_packets > 0,
            "dropped transfers must be retried"
        );
        assert!(stats.transfers_created > 0);
        let ledger = sim.conservation_ledger();
        assert!(ledger.flit_balance_holds(), "flit ledger: {ledger:?}");
        assert!(
            ledger.transfer_balance_holds(),
            "transfer ledger: {ledger:?}"
        );
        let diags = sim.check_invariants();
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn generous_timeout_never_retransmits_without_faults() {
        // Regression: timeout-heap entries identify transfers by slab
        // slot, and resolved transfers are reaped, so slots are reused
        // long before old deadlines expire. Without the per-transfer
        // sequence tag a stale entry would match the fresh occupant
        // (also on its first send) and retransmit a perfectly healthy
        // packet. With a timeout far above the worst-case delay and no
        // faults, any retransmission at all is the ABA bug.
        let topo = small_topo();
        let res = ResilienceConfig {
            detect_cycles: 0,
            reconverge_cycles: 0,
            retx: Some(RetxConfig {
                timeout: 50_000,
                max_retries: 4,
            }),
        };
        let mut sim = FlitSim::with_schedule(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            FaultSchedule::default(),
            FaultPolicy::Drop,
            res,
        )
        .expect("valid config");
        let stats = sim.run().expect("no deadlock");
        assert_eq!(
            stats.retransmitted_packets, 0,
            "stale timeout entries acted on reused transfer slots"
        );
        assert_eq!(stats.duplicate_flits, 0);
        assert_eq!(stats.transfers_dropped, 0);
    }

    #[test]
    fn duplicates_are_suppressed() {
        // A timeout shorter than the congested delivery delay forces
        // spurious retransmissions: both copies arrive, exactly one
        // counts, and the duplicate monitors stay quiet.
        let topo = small_topo();
        let res = ResilienceConfig {
            detect_cycles: 0,
            reconverge_cycles: 0,
            retx: Some(RetxConfig {
                timeout: 60,
                max_retries: 4,
            }),
        };
        let mut sim = FlitSim::with_schedule(
            &topo,
            DModK,
            quick_cfg(0.8),
            TrafficMode::Uniform,
            FaultSchedule::default(),
            FaultPolicy::Drop,
            res,
        )
        .expect("valid config");
        let stats = sim.run().expect("no deadlock");
        assert!(
            stats.duplicate_flits > 0,
            "a 60-cycle timeout under congestion must produce duplicates"
        );
        assert!(stats.retransmit_ratio() > 0.0);
        let ledger = sim.conservation_ledger();
        assert!(ledger.flit_balance_holds(), "flit ledger: {ledger:?}");
        assert!(
            ledger.transfer_balance_holds(),
            "transfer ledger: {ledger:?}"
        );
        assert!(
            ledger.transfers_delivered + ledger.transfers_dropped <= ledger.transfers_created,
            "no transfer resolves twice"
        );
        let diags = sim.check_invariants();
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn monitored_chaos_run_is_clean_and_deterministic() {
        let topo = small_topo();
        let cfg = quick_cfg(0.4);
        let run = || {
            let schedule = FaultSchedule::poisson(&topo, 2e-5, 400.0, cfg.horizon(), 11);
            let res = ResilienceConfig {
                detect_cycles: 50,
                reconverge_cycles: 100,
                retx: Some(RetxConfig::default()),
            };
            FlitSim::with_schedule(
                &topo,
                Disjoint::new(2),
                cfg,
                TrafficMode::Uniform,
                schedule,
                FaultPolicy::Drop,
                res,
            )
            .expect("valid config")
            .run_monitored(500)
            .expect("no deadlock")
        };
        let (a, diags_a) = run();
        let (b, _) = run();
        assert_eq!(a, b, "chaos runs must be deterministic in the seed");
        assert!(
            !diags_a.iter().any(|d| d.severity == Severity::Error),
            "invariant errors: {diags_a:?}"
        );
        assert!(a.reconvergence_events > 0, "the schedule must fire");
    }

    #[test]
    fn dropped_flits_balance_the_conservation_audit() {
        let topo = small_topo();
        // Fail one level-2 up-link: inter-group traffic whose d-mod-k
        // path climbs through it is discarded at the failure point.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(2, 0, 0));
        let mut sim = FlitSim::with_faults(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Drop,
        )
        .expect("valid config");
        for _ in 0..6_000 {
            sim.step();
        }
        let (injected, delivered) = sim.lifetime_counters();
        assert!(
            sim.dropped_in_lifetime() > 0,
            "the failed link saw no traffic"
        );
        assert!(delivered > 0);
        assert_eq!(
            injected,
            delivered + sim.flits_in_network() + sim.dropped_in_lifetime(),
            "conservation under faults: injected = delivered + in-flight + dropped"
        );
        assert!(sim.stats().dropped_flits > 0);
        assert!(sim.conservation_ledger().flit_balance_holds());
    }

    #[test]
    fn blocking_faults_trip_the_watchdog() {
        let topo = small_topo();
        // Sever every PN's injection cable with the blocking policy: the
        // NIC staging buffers fill, then nothing can ever move again.
        let mut faults = FaultSet::new();
        for pn in 0..topo.num_pns() {
            faults.fail_link(topo.up_link(1, pn, 0));
        }
        let cfg = SimConfig {
            watchdog_cycles: 500,
            ..quick_cfg(0.5)
        };
        let err = FlitSim::with_faults(
            &topo,
            DModK,
            cfg,
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Block,
        )
        .expect("valid config")
        .run()
        .unwrap_err();
        let SimError::Deadlock(report) = err else {
            panic!("expected a deadlock, got {err:?}")
        };
        assert!(report.stalled_for > 500);
        assert!(report.flits_in_network > 0);
        assert!(report.blocked_ports > 0);
        assert!(report.in_flight_packets > 0);
    }

    #[test]
    fn fault_aware_routing_counts_disconnected_messages() {
        use lmpr_core::FaultAware;
        let topo = small_topo();
        // PN 0 cannot send (its only up-link is down); a fault-aware
        // router reports its pairs as disconnected instead of panicking,
        // and the rest of the network keeps delivering.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0));
        let router = FaultAware::new(DModK, faults.clone());
        let stats = FlitSim::with_faults(
            &topo,
            router,
            quick_cfg(0.3),
            TrafficMode::Uniform,
            &faults,
            FaultPolicy::Drop,
        )
        .expect("valid config")
        .run()
        .expect("no deadlock");
        assert!(stats.disconnected_messages > 0);
        assert!(stats.delivered_flits > 0);
        // Routing around the failure means nothing is ever dropped.
        assert_eq!(stats.dropped_flits, 0);
    }

    #[test]
    fn persistent_disconnection_drops_with_cause() {
        // PN 0's only up-link dies at cycle 0 and never recovers, with a
        // tiny lag: PN 0's transfers can never be sent and must resolve
        // as dropped (cause: disconnected), keeping the ledger balanced.
        let topo = small_topo();
        let link = topo.up_link(1, 0, 0);
        let schedule = FaultSchedule::scripted(vec![FaultEvent {
            at: 0,
            change: FaultChange::LinkDown(link),
        }]);
        let res = ResilienceConfig {
            detect_cycles: 0,
            reconverge_cycles: 10,
            retx: Some(RetxConfig {
                timeout: 200,
                max_retries: 2,
            }),
        };
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 8_000,
            offered_load: 0.3,
            watchdog_cycles: 0,
            ..SimConfig::default()
        };
        let mut sim = FlitSim::with_schedule(
            &topo,
            DModK,
            cfg,
            TrafficMode::Uniform,
            schedule,
            FaultPolicy::Drop,
            res,
        )
        .expect("valid config");
        let stats = sim.run().expect("watchdog disabled");
        assert!(
            stats.transfers_dropped > 0,
            "PN 0's transfers must exhaust their retries"
        );
        assert!(stats.disconnected_messages > 0);
        let ledger = sim.conservation_ledger();
        assert!(ledger.flit_balance_holds());
        assert!(ledger.transfer_balance_holds());
        let diags = sim.check_invariants();
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn bad_configs_are_typed_errors_not_panics() {
        let topo = small_topo();
        let bad = SimConfig {
            offered_load: 2.0,
            ..SimConfig::default()
        };
        assert!(matches!(
            FlitSim::simulate(&topo, DModK, bad),
            Err(SimError::Config(_))
        ));
        let bad_traffic = TrafficMode::Permutation(vec![0, 1]);
        assert!(matches!(
            FlitSim::with_traffic(&topo, DModK, quick_cfg(0.5), bad_traffic),
            Err(SimError::Traffic(_))
        ));
        let bad_res = ResilienceConfig {
            retx: Some(RetxConfig {
                timeout: 0,
                max_retries: 1,
            }),
            ..ResilienceConfig::default()
        };
        assert!(matches!(
            FlitSim::with_schedule(
                &topo,
                DModK,
                quick_cfg(0.5),
                TrafficMode::Uniform,
                FaultSchedule::default(),
                FaultPolicy::Drop,
                bad_res,
            )
            .map(|_| ()),
            Err(SimError::Config(crate::ConfigError::ZeroRetxTimeout))
        ));
    }
}
