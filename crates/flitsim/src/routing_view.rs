//! The lagged routing view: a [`SelectionEngine`] whose fault view
//! trails the physical fault state of a dynamic timeline.
//!
//! The simulator keeps **two** fault states when driven by a
//! [`FaultSchedule`]:
//!
//! * the *physical* state — which cables actually move flits — updated
//!   the cycle an event occurs (it flips the simulator's per-port
//!   `failed_out` flags);
//! * the *routing view* — what path selection is computed against —
//!   which trails the physical state by the configured detection +
//!   reconvergence lag ([`ResilienceConfig`](crate::ResilienceConfig)).
//!
//! When the view catches up with a batch of events the shared
//! [`SelectionEngine`] flushes only the cached SD selections the batch
//! actually touched (blast-radius invalidation) — incremental
//! reconvergence, not a full rebuild.

use crate::network::PortGraph;
use lmpr_core::{CachedSelection, Router, SelectionEngine, SelectionStats};
use std::collections::VecDeque;
use xgft::{
    DirectedLinkId, FaultChange, FaultEvent, FaultSchedule, FaultSet, PathId, PnId, Topology,
};

/// Fault events that happened at one physical instant, queued until the
/// routing view is allowed to act on them.
#[derive(Debug, Clone)]
pub(crate) struct ViewBatch {
    /// Cycle the events physically occurred.
    pub(crate) event_at: u64,
    /// Cycle the routing view applies them (`event_at + lag`,
    /// saturating).
    pub(crate) apply_at: u64,
    /// The changes, in timeline order.
    pub(crate) changes: Vec<FaultChange>,
}

/// The directed links whose up/down state a fault change toggles.
pub(crate) fn affected_links(topo: &Topology, change: FaultChange) -> Vec<DirectedLinkId> {
    match change {
        FaultChange::LinkDown(l) | FaultChange::LinkUp(l) => vec![l],
        FaultChange::SwitchDown(n) | FaultChange::SwitchUp(n) => (0..topo.num_links())
            .map(DirectedLinkId)
            .filter(|&l| {
                let e = topo.endpoints(l);
                e.from == n || e.to == n
            })
            .collect(),
    }
}

/// The dynamic part of a scheduled run: the timeline with its replay
/// cursor, the physical fault state, and the batches waiting out the
/// detection + reconvergence lag.
struct Timeline {
    schedule: FaultSchedule,
    /// Next not-yet-applied event index.
    cursor: usize,
    /// Fault state the cables obey (updated the cycle an event occurs).
    phys_faults: FaultSet,
    /// Detection + reconvergence delay, in cycles.
    lag: u64,
    /// Event batches awaiting routing-view application.
    pending_view: VecDeque<ViewBatch>,
    /// Event batches the routing view has reconverged on.
    reconv_events: u64,
    /// Sum / max of realized event→reconvergence lags.
    reconv_sum_lag: u64,
    reconv_max_lag: u64,
}

/// Path selection as the simulator sees it: the shared
/// [`SelectionEngine`] plus, for schedule-driven runs, the lagged fault
/// timeline feeding it.
///
/// A plain view (no timeline) is an uncached pass-through of the router
/// — static-fault runs keep their fault model entirely in the
/// simulator's `failed_out` port flags, exactly as before the engine
/// existed.
pub(crate) struct RoutingView<R> {
    engine: SelectionEngine<R>,
    timeline: Option<Timeline>,
}

impl<R: Router> RoutingView<R> {
    /// A static view: the router's selections, recomputed per query.
    pub(crate) fn plain(router: R) -> Self {
        RoutingView {
            engine: SelectionEngine::new(router),
            timeline: None,
        }
    }

    /// A dynamic view over a fault timeline: selections are cached per
    /// SD pair and invalidated incrementally as the view reconverges,
    /// `lag` cycles behind the physical events.
    pub(crate) fn scheduled(router: R, schedule: FaultSchedule, lag: u64) -> Self {
        RoutingView {
            engine: SelectionEngine::cached(router, FaultSet::new()),
            timeline: Some(Timeline {
                schedule,
                cursor: 0,
                phys_faults: FaultSet::new(),
                lag,
                pending_view: VecDeque::new(),
                reconv_events: 0,
                reconv_sum_lag: 0,
                reconv_max_lag: 0,
            }),
        }
    }

    /// Unwrap the view, recovering the router.
    pub(crate) fn into_router(self) -> R {
        self.engine.into_router()
    }

    /// Whether a fault timeline drives this view.
    pub(crate) fn is_dynamic(&self) -> bool {
        self.timeline.is_some()
    }

    /// Fill `out` with the selection for the pair against the current
    /// view (empty = the view considers the pair disconnected).
    pub(crate) fn select(&mut self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        self.engine.select(topo, s, d, out);
    }

    /// The fault state path selection is computed against.
    pub(crate) fn view_faults(&self) -> &FaultSet {
        self.engine.view()
    }

    /// The cached selections in deterministic order (for `RT-SELECT`).
    pub(crate) fn cached_selections(&self) -> Vec<(PnId, PnId, &CachedSelection)> {
        self.engine.cached_selections()
    }

    /// The engine's lifetime hit/miss/invalidation counters.
    pub(crate) fn selection_stats(&self) -> SelectionStats {
        self.engine.stats()
    }

    /// `(events, sum lag, max lag)` of routing-view reconvergence.
    pub(crate) fn reconv_counters(&self) -> (u64, u64, u64) {
        match self.timeline.as_ref() {
            Some(t) => (t.reconv_events, t.reconv_sum_lag, t.reconv_max_lag),
            None => (0, 0, 0),
        }
    }

    /// Snapshot view of the timeline (`None` for a plain view): the
    /// schedule, replay cursor, lag, pending batches and reconvergence
    /// counters. The physical fault set and the engine's view are *not*
    /// exposed — both are rebuilt on restore by replaying schedule
    /// prefixes, which is exact because every event enters exactly one
    /// batch in timeline order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn timeline_parts(
        &self,
    ) -> Option<(
        &[FaultEvent],
        usize,
        u64,
        &VecDeque<ViewBatch>,
        (u64, u64, u64),
    )> {
        self.timeline.as_ref().map(|t| {
            (
                t.schedule.events(),
                t.cursor,
                t.lag,
                &t.pending_view,
                (t.reconv_events, t.reconv_sum_lag, t.reconv_max_lag),
            )
        })
    }

    /// The engine's cache key set (sorted) and lifetime counters — the
    /// serialized half of the selection state. Selections themselves are
    /// recomputed on restore.
    pub(crate) fn engine_cache_parts(&self) -> (Vec<u64>, SelectionStats) {
        (self.engine.cached_keys(), self.engine.stats())
    }

    /// Rebuild a scheduled view from snapshot parts. The physical fault
    /// state is replayed from `events[..cursor]`; the engine's (lagged)
    /// view from the same prefix minus the changes still queued in
    /// `pending` — the invariant `applied-to-view ++ pending == applied-
    /// to-phys` holds because [`RoutingView::advance`] drains events into
    /// batches in timeline order and pops batches FIFO. Returns `None`
    /// when the parts are inconsistent (cursor past the schedule end, or
    /// more pending changes than applied events).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_scheduled(
        router: R,
        topo: &Topology,
        schedule: FaultSchedule,
        cursor: usize,
        lag: u64,
        pending_view: VecDeque<ViewBatch>,
        reconv: (u64, u64, u64),
        cache_keys: &[u64],
        stats: SelectionStats,
    ) -> Option<Self> {
        let events = schedule.events();
        if cursor > events.len() {
            return None;
        }
        let pending_changes: usize = pending_view.iter().map(|b| b.changes.len()).sum();
        let view_cursor = cursor.checked_sub(pending_changes)?;
        let mut phys_faults = FaultSet::new();
        let mut view_faults = FaultSet::new();
        for (i, e) in events.iter().take(cursor).enumerate() {
            e.change.apply(topo, &mut phys_faults);
            if i < view_cursor {
                e.change.apply(topo, &mut view_faults);
            }
        }
        let engine = SelectionEngine::restore_cached(router, view_faults, topo, cache_keys, stats);
        Some(RoutingView {
            engine,
            timeline: Some(Timeline {
                schedule,
                cursor,
                phys_faults,
                lag,
                pending_view,
                reconv_events: reconv.0,
                reconv_sum_lag: reconv.1,
                reconv_max_lag: reconv.2,
            }),
        })
    }

    /// Advance the fault timeline to `now`: events striking this cycle
    /// hit the cables (via `failed_out`) immediately; the routing view
    /// catches up on batches whose lag has elapsed, flushing only the
    /// cached selections each batch actually touched.
    pub(crate) fn advance(
        &mut self,
        now: u64,
        topo: &Topology,
        graph: &PortGraph,
        failed_out: &mut [bool],
    ) {
        let Some(t) = self.timeline.as_mut() else {
            return;
        };
        // Phase 1: events striking this cycle hit the cables immediately.
        let mut changes: Vec<FaultChange> = Vec::new();
        while let Some(e) = t.schedule.events().get(t.cursor) {
            if e.at > now {
                break;
            }
            e.change.apply(topo, &mut t.phys_faults);
            changes.push(e.change);
            t.cursor += 1;
        }
        if !changes.is_empty() {
            for &change in &changes {
                for link in affected_links(topo, change) {
                    let e = topo.endpoints(link);
                    let gid = graph.port_gid(graph.node_gid(e.from), e.from_port);
                    failed_out[gid as usize] = t.phys_faults.is_link_failed(link);
                }
            }
            let apply_at = now.saturating_add(t.lag);
            t.pending_view.push_back(ViewBatch {
                event_at: now,
                apply_at,
                changes,
            });
        }
        // Phase 2: the routing view catches up on due batches. The
        // engine flushes only the cached selections each batch touched —
        // incremental reconvergence, not a rebuild.
        while t.pending_view.front().is_some_and(|b| b.apply_at <= now) {
            let Some(batch) = t.pending_view.pop_front() else {
                break;
            };
            self.engine.apply_changes(topo, &batch.changes);
            t.reconv_events += 1;
            let lag = now.saturating_sub(batch.event_at);
            t.reconv_sum_lag = t.reconv_sum_lag.saturating_add(lag);
            t.reconv_max_lag = t.reconv_max_lag.max(lag);
        }
    }
}
