//! Simulator configuration.

use crate::error::ConfigError;

/// What happens to a flit that reaches a failed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// The flit is discarded and counted in
    /// [`SimStats::dropped_flits`](crate::SimStats::dropped_flits) — the
    /// conservation invariant becomes
    /// `injected = delivered + duplicate + in-flight + dropped` (default).
    #[default]
    Drop,
    /// The link transfers nothing; traffic routed over it backs up. With
    /// a static fault set this ends in the no-progress watchdog aborting
    /// the run with a [`DeadlockReport`](crate::DeadlockReport); with a
    /// dynamic [`FaultSchedule`](xgft::FaultSchedule) the backlog drains
    /// once the link recovers.
    Block,
}

/// How a source spreads packets over its SD pair's path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// Each packet independently picks a uniformly random path from the
    /// set. Matches the paper's fractions in expectation but adds
    /// sampling variance that measurably hurts large path sets (see the
    /// `ablation` bench).
    PerPacketRandom,
    /// All packets of a message follow one randomly chosen path
    /// (in-order delivery per message; coarser spreading).
    PerMessageRandom,
    /// Deterministic per-source rotation over the path set — the exact
    /// flit-level realization of the paper's "fraction `1/K` of the
    /// traffic on each path" (default).
    RoundRobin,
}

/// End-to-end reliability parameters (per-packet transfers).
///
/// Every packet becomes a *transfer*: the source arms a delivery timeout
/// when it first queues the packet and retransmits a fresh copy each
/// time the timeout expires, doubling the timeout per attempt
/// (exponential backoff, saturating). After `1 + max_retries` total
/// transmission attempts the transfer is dropped with a recorded cause.
/// The sink suppresses duplicate copies, so every transfer resolves as
/// delivered-exactly-once, dropped-with-cause, or still in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxConfig {
    /// Base delivery timeout in cycles (doubled per retransmission).
    pub timeout: u64,
    /// Retransmissions allowed after the initial attempt.
    pub max_retries: u32,
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig {
            timeout: 2_000,
            max_retries: 4,
        }
    }
}

/// Runtime-resilience parameters for a simulation driven by a
/// [`FaultSchedule`](xgft::FaultSchedule).
///
/// Fault events hit the physical layer (cables stop or resume moving
/// flits) the cycle they occur; the *routing* layer only learns of them
/// `detect_cycles + reconverge_cycles` later, when affected SD pairs
/// recompute their surviving `min(K, X)` selection incrementally. The
/// window models failure detection (sweep / timeout) plus subnet-manager
/// reprogramming, the reaction time that decides delivered throughput
/// under churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceConfig {
    /// Cycles until a fault event is *detected*.
    pub detect_cycles: u64,
    /// Further cycles until rerouting takes effect after detection.
    pub reconverge_cycles: u64,
    /// End-to-end retransmission; `None` leaves reliability to the
    /// fault policy alone (drops stay dropped).
    pub retx: Option<RetxConfig>,
}

impl ResilienceConfig {
    /// Total routing-view lag behind the physical fault state.
    pub fn lag(&self) -> u64 {
        self.detect_cycles.saturating_add(self.reconverge_cycles)
    }

    /// Validate: a zero retransmission timeout would re-arm every cycle.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(r) = self.retx {
            if r.timeout == 0 {
                return Err(ConfigError::ZeroRetxTimeout);
            }
        }
        Ok(())
    }
}

/// Flit-level simulation parameters.
///
/// The defaults reproduce the paper's §5 setup. The OCR of the source
/// text drops the exact constants ("a packet size of … flits and a
/// fixed message size of … packets", buffers of "… packets each"); the
/// chosen values — 16-flit packets, 4-packet messages, 4-packet buffers
/// — preserve the only property the conclusions rely on: buffers hold a
/// small whole number of packets and messages span several packets
/// (documented in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Flits per packet.
    pub packet_flits: u16,
    /// Packets per message (fixed message size, as in the paper).
    pub packets_per_message: u16,
    /// Input- and output-buffer capacity per port, in packets.
    pub buffer_packets: u16,
    /// Cycles simulated before statistics collection starts.
    pub warmup_cycles: u64,
    /// Length of the measurement window, in cycles.
    pub measure_cycles: u64,
    /// Offered load as a fraction of injection bandwidth
    /// (1 flit/node/cycle), in `(0, 1]`.
    pub offered_load: f64,
    /// RNG seed (message arrivals, destinations, path choices).
    pub seed: u64,
    /// Path-selection policy across a pair's path set.
    pub path_policy: PathPolicy,
    /// No-progress watchdog horizon in cycles: if no flit moves for this
    /// long while flits are in flight or backlogged, the run aborts with
    /// a [`DeadlockReport`](crate::DeadlockReport). `0` disables the
    /// watchdog.
    pub watchdog_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_flits: 16,
            packets_per_message: 4,
            buffer_packets: 4,
            warmup_cycles: 20_000,
            measure_cycles: 50_000,
            offered_load: 0.5,
            seed: 0xF117_F00D, // arbitrary fixed default
            path_policy: PathPolicy::RoundRobin,
            watchdog_cycles: 25_000,
        }
    }
}

impl SimConfig {
    /// Buffer capacity per port in flits.
    pub fn buffer_flits(&self) -> u32 {
        self.buffer_packets as u32 * self.packet_flits as u32
    }

    /// Flits per message.
    pub fn message_flits(&self) -> u32 {
        self.packets_per_message as u32 * self.packet_flits as u32
    }

    /// Message arrival rate per node, in messages per cycle.
    pub fn message_rate(&self) -> f64 {
        self.offered_load / self.message_flits() as f64
    }

    /// End of the simulated horizon (warm-up plus measurement window),
    /// saturating so extreme windows cannot wrap the timeline.
    pub fn horizon(&self) -> u64 {
        self.warmup_cycles.saturating_add(self.measure_cycles)
    }

    /// Validate parameter consistency: non-positive sizes, buffers
    /// smaller than one packet (VCT could never forward a head flit) and
    /// an offered load outside `(0, 1]` are rejected with a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.packet_flits < 1 {
            return Err(ConfigError::ZeroPacketFlits);
        }
        if self.packets_per_message < 1 {
            return Err(ConfigError::ZeroPacketsPerMessage);
        }
        if self.buffer_packets < 1 {
            return Err(ConfigError::BufferBelowOnePacket);
        }
        if !(self.offered_load > 0.0 && self.offered_load <= 1.0) {
            return Err(ConfigError::BadOfferedLoad(self.offered_load));
        }
        if self.measure_cycles == 0 {
            return Err(ConfigError::EmptyMeasureWindow);
        }
        Ok(())
    }

    /// Copy with a different offered load (sweep helper).
    pub fn with_load(mut self, offered_load: f64) -> Self {
        self.offered_load = offered_load;
        self
    }

    /// Copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let c = SimConfig::default();
        assert_eq!(c.buffer_flits(), 64);
        assert_eq!(c.message_flits(), 64);
        assert!((c.message_rate() - 0.5 / 64.0).abs() < 1e-15);
        assert_eq!(c.horizon(), 70_000);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn zero_load_rejected() {
        let err = SimConfig {
            offered_load: 0.0,
            ..SimConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::BadOfferedLoad(0.0));
        assert!(err.to_string().contains("offered load"));
    }

    #[test]
    fn zero_buffer_rejected() {
        let err = SimConfig {
            buffer_packets: 0,
            ..SimConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::BufferBelowOnePacket);
        assert!(err.to_string().contains("whole packet"));
    }

    #[test]
    fn nan_load_rejected() {
        let err = SimConfig {
            offered_load: f64::NAN,
            ..SimConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, ConfigError::BadOfferedLoad(_)));
    }

    #[test]
    fn horizon_saturates() {
        let c = SimConfig {
            warmup_cycles: u64::MAX,
            measure_cycles: 10,
            ..SimConfig::default()
        };
        assert_eq!(c.horizon(), u64::MAX);
    }

    #[test]
    fn resilience_validation() {
        assert_eq!(ResilienceConfig::default().validate(), Ok(()));
        let bad = ResilienceConfig {
            retx: Some(RetxConfig {
                timeout: 0,
                max_retries: 1,
            }),
            ..ResilienceConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroRetxTimeout));
        let lagged = ResilienceConfig {
            detect_cycles: u64::MAX,
            reconverge_cycles: 5,
            retx: None,
        };
        assert_eq!(lagged.lag(), u64::MAX, "lag saturates");
    }

    #[test]
    fn builders() {
        let c = SimConfig::default().with_load(0.25).with_seed(7);
        assert_eq!(c.offered_load, 0.25);
        assert_eq!(c.seed, 7);
    }
}
