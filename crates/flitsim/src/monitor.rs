//! Runtime invariant monitors.
//!
//! The static analyzer (`lmpr-verify`) certifies routing properties
//! before a run; these monitors certify the *running* system, firing as
//! the same structured [`Diagnostic`]s so chaos harnesses and CI can
//! gate on them uniformly:
//!
//! | Rule | Invariant |
//! |---|---|
//! | `RT-CONSERVE` | injected = delivered + duplicate + dropped + in-network, and created transfers = delivered-once + dropped-with-cause + in-flight |
//! | `RT-DUP` | duplicates can only exist under retransmission; resolved transfers never exceed created ones |
//! | `RT-PROGRESS` | flits keep moving while work is pending (online watchdog) |
//! | `RT-SELECT` | every cached live selection is duplicate-free and survives the routing view's fault state (checked in the simulator, which owns the cache) |

use crate::sim::FlitSim;
use lmpr_core::Router;
use lmpr_verify::{Diagnostic, RuleId, Severity, Witness};

/// Snapshot of every counter the conservation monitors reason about.
/// Built by [`FlitSim::conservation_ledger`](crate::FlitSim::conservation_ledger);
/// all checks are pure functions of this snapshot, so they can also be
/// asserted against recorded ledgers post-hoc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Lifetime flits that left a source queue into the network.
    pub injected: u64,
    /// Lifetime flits delivered while their transfer was unresolved (or
    /// any delivery when reliability is off).
    pub delivered: u64,
    /// Lifetime flits suppressed at the sink as duplicates.
    pub duplicate: u64,
    /// Lifetime flits discarded at failed links.
    pub dropped: u64,
    /// Flits currently buffered anywhere in the network.
    pub in_network: u64,
    /// Whether end-to-end retransmission is active.
    pub retx_enabled: bool,
    /// Lifetime transfers created (0 when reliability is off).
    pub transfers_created: u64,
    /// Lifetime transfers delivered exactly once.
    pub transfers_delivered: u64,
    /// Lifetime transfers dropped with cause.
    pub transfers_dropped: u64,
    /// Transfers currently unresolved (measured from live records).
    pub transfers_in_flight: u64,
}

impl ConservationLedger {
    /// The flit-granularity conservation equation.
    pub fn flit_balance_holds(&self) -> bool {
        self.injected
            == self
                .delivered
                .wrapping_add(self.duplicate)
                .wrapping_add(self.dropped)
                .wrapping_add(self.in_network)
    }

    /// The transfer-granularity conservation equation (trivially true
    /// when reliability is off).
    pub fn transfer_balance_holds(&self) -> bool {
        self.transfers_created
            == self
                .transfers_delivered
                .wrapping_add(self.transfers_dropped)
                .wrapping_add(self.transfers_in_flight)
    }

    /// Run the conservation and duplicate-delivery monitors, appending
    /// findings to `out`.
    pub fn check(&self, out: &mut Vec<Diagnostic>) {
        if !self.flit_balance_holds() {
            out.push(Diagnostic::error(
                RuleId::RtConservation,
                format!(
                    "flit conservation broke: injected {} != delivered {} + duplicate {} \
                     + dropped {} + in-network {}",
                    self.injected, self.delivered, self.duplicate, self.dropped, self.in_network
                ),
                Witness::None,
            ));
        }
        if !self.transfer_balance_holds() {
            out.push(Diagnostic::error(
                RuleId::RtConservation,
                format!(
                    "transfer ledger lost a packet: created {} != delivered-once {} \
                     + dropped-with-cause {} + in-flight {}",
                    self.transfers_created,
                    self.transfers_delivered,
                    self.transfers_dropped,
                    self.transfers_in_flight
                ),
                Witness::None,
            ));
        }
        if !self.retx_enabled && self.duplicate > 0 {
            out.push(Diagnostic::error(
                RuleId::RtDuplicate,
                format!(
                    "{} duplicate flits reached sinks with retransmission disabled",
                    self.duplicate
                ),
                Witness::None,
            ));
        }
        if self
            .transfers_delivered
            .saturating_add(self.transfers_dropped)
            > self.transfers_created
        {
            out.push(Diagnostic::error(
                RuleId::RtDuplicate,
                format!(
                    "more transfers resolved ({} delivered + {} dropped) than created ({}): \
                     some packet was delivered or dropped twice",
                    self.transfers_delivered, self.transfers_dropped, self.transfers_created
                ),
                Witness::None,
            ));
        }
    }
}

/// Accumulator for monitor findings across run segments.
///
/// Warnings are deduplicated per rule for the log's lifetime; errors are
/// always recorded. A resumable run
/// ([`FlitSim::run_monitored_until`](crate::FlitSim::run_monitored_until))
/// threads one log through all of its segments so the combined report
/// matches what an uninterrupted [`FlitSim::run_monitored`](crate::FlitSim::run_monitored)
/// would have produced.
#[derive(Debug, Clone, Default)]
pub struct MonitorLog {
    warned: Vec<RuleId>,
    report: Vec<Diagnostic>,
}

impl MonitorLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a batch of findings from one checkpoint. Errors are kept
    /// verbatim; warnings only on their rule's first occurrence. Returns
    /// whether the batch contained an error (the caller's abort signal).
    pub fn absorb(&mut self, findings: Vec<Diagnostic>) -> bool {
        let mut fatal = false;
        for d in findings {
            if d.severity == Severity::Error {
                fatal = true;
                self.report.push(d);
            } else if !self.warned.contains(&d.rule) {
                self.warned.push(d.rule);
                self.report.push(d);
            }
        }
        fatal
    }

    /// Findings recorded so far.
    pub fn findings(&self) -> &[Diagnostic] {
        &self.report
    }

    /// Consume the log, yielding the recorded findings.
    pub fn into_findings(self) -> Vec<Diagnostic> {
        self.report
    }
}

/// The online progress monitor: warn at half the watchdog horizon, error
/// once the horizon is exceeded while work is pending. A disabled
/// watchdog (`horizon == 0`) checks nothing.
pub fn check_progress(
    stalled_for: u64,
    horizon: u64,
    work_pending: bool,
    out: &mut Vec<Diagnostic>,
) {
    if horizon == 0 || !work_pending {
        return;
    }
    if stalled_for > horizon {
        out.push(Diagnostic::error(
            RuleId::RtProgress,
            format!(
                "no flit moved for {stalled_for} cycles (watchdog horizon {horizon}) \
                 while work is pending"
            ),
            Witness::None,
        ));
    } else if stalled_for > horizon / 2 {
        out.push(Diagnostic {
            rule: RuleId::RtProgress,
            severity: Severity::Warning,
            message: format!(
                "progress stalled for {stalled_for} cycles, past half the \
                 watchdog horizon ({horizon})"
            ),
            witness: Witness::None,
        });
    }
}

impl<R: Router> FlitSim<R> {
    /// Snapshot of every counter the runtime conservation monitors
    /// reason about.
    pub fn conservation_ledger(&self) -> ConservationLedger {
        ConservationLedger {
            injected: self.total_injected,
            delivered: self.total_delivered,
            duplicate: self.total_duplicate,
            dropped: self.total_dropped,
            in_network: self.flits_in_network(),
            retx_enabled: self.retx.is_some(),
            transfers_created: self.ledger.created,
            transfers_delivered: self.ledger.delivered,
            transfers_dropped: self.ledger.dropped,
            transfers_in_flight: self.ledger.in_flight(),
        }
    }

    /// Run every runtime invariant monitor against the current state:
    /// flit and transfer conservation (`RT-CONSERVE`), duplicate
    /// delivery (`RT-DUP`), online progress (`RT-PROGRESS`), and
    /// validity of every cached routing selection against the routing
    /// view's fault state (`RT-SELECT`). An empty result is the runtime
    /// analogue of a verification certificate.
    pub fn check_invariants(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.conservation_ledger().check(&mut out);
        check_progress(
            self.now.saturating_sub(self.last_progress),
            self.cfg.watchdog_cycles,
            self.flits_in_network() > 0 || self.source_backlog() > 0,
            &mut out,
        );
        if self.routing.is_dynamic() {
            let view = self.routing.view_faults();
            for (s, d, sel) in self.routing.cached_selections() {
                for (i, &p) in sel.paths.iter().enumerate() {
                    if sel.paths[..i].contains(&p) {
                        out.push(Diagnostic::error(
                            RuleId::RtSelection,
                            format!(
                                "cached selection of ({}, {}) lists path {} twice",
                                s.0, d.0, p.0
                            ),
                            Witness::Path {
                                src: s,
                                dst: d,
                                path: p,
                            },
                        ));
                    }
                    if !view.path_survives(&self.topo, s, d, p) {
                        out.push(Diagnostic::error(
                            RuleId::RtSelection,
                            format!(
                                "cached selection of ({}, {}) crosses a link the routing \
                                 view knows is dead (path {})",
                                s.0, d.0, p.0
                            ),
                            Witness::Path {
                                src: s,
                                dst: d,
                                path: p,
                            },
                        ));
                    }
                }
                if sel.paths.is_empty() && view.num_surviving(&self.topo, s, d) > 0 {
                    out.push(Diagnostic::error(
                        RuleId::RtSelection,
                        format!(
                            "pair ({}, {}) cached as disconnected while paths survive \
                             in the routing view",
                            s.0, d.0
                        ),
                        Witness::Pair { src: s, dst: d },
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> ConservationLedger {
        ConservationLedger {
            injected: 100,
            delivered: 60,
            duplicate: 5,
            dropped: 15,
            in_network: 20,
            retx_enabled: true,
            transfers_created: 10,
            transfers_delivered: 6,
            transfers_dropped: 1,
            transfers_in_flight: 3,
        }
    }

    #[test]
    fn clean_ledger_is_silent() {
        let mut out = Vec::new();
        clean().check(&mut out);
        assert!(out.is_empty(), "unexpected findings: {out:?}");
    }

    #[test]
    fn broken_flit_balance_fires_rt_conserve() {
        let mut l = clean();
        l.delivered -= 1;
        let mut out = Vec::new();
        l.check(&mut out);
        assert!(out
            .iter()
            .any(|d| d.rule == RuleId::RtConservation && d.severity == Severity::Error));
    }

    #[test]
    fn lost_transfer_fires_rt_conserve() {
        let mut l = clean();
        l.transfers_in_flight = 2;
        let mut out = Vec::new();
        l.check(&mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("transfer ledger"));
    }

    #[test]
    fn duplicates_without_retx_fire_rt_dup() {
        let mut l = clean();
        l.retx_enabled = false;
        let mut out = Vec::new();
        l.check(&mut out);
        assert!(out.iter().any(|d| d.rule == RuleId::RtDuplicate));
    }

    #[test]
    fn over_resolution_fires_rt_dup() {
        let mut l = clean();
        l.transfers_delivered = 12; // > created
        let mut out = Vec::new();
        l.check(&mut out);
        assert!(out
            .iter()
            .any(|d| d.rule == RuleId::RtDuplicate && d.message.contains("twice")));
    }

    #[test]
    fn progress_monitor_escalates() {
        let mut out = Vec::new();
        check_progress(10, 0, true, &mut out);
        assert!(out.is_empty(), "disabled watchdog checks nothing");
        check_progress(600, 1000, false, &mut out);
        assert!(out.is_empty(), "idle network is fine");
        check_progress(600, 1000, true, &mut out);
        assert_eq!(out.last().map(|d| d.severity), Some(Severity::Warning));
        check_progress(1500, 1000, true, &mut out);
        assert_eq!(out.last().map(|d| d.severity), Some(Severity::Error));
    }
}
