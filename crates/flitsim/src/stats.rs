//! Measurement-window statistics.

/// Statistics collected over the measurement window of one simulation.
///
/// The resilience fields (`duplicate_flits`, `retransmitted_packets`,
/// `transfers_*`, `reconvergence_*`) are all zero for a plain run —
/// stats of a fault-free simulation compare equal whether or not the
/// resilience layer was compiled in the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Offered load the run was driven at (flits/node/cycle).
    pub offered_load: f64,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
    /// Number of processing nodes.
    pub num_pns: u32,
    /// Flits entering the network during the window.
    pub injected_flits: u64,
    /// Flits delivered to destinations during the window (first copy of
    /// each transfer; duplicates are counted separately).
    pub delivered_flits: u64,
    /// Flits discarded at failed links during the window (only non-zero
    /// under [`FaultPolicy::Drop`](crate::FaultPolicy::Drop)).
    pub dropped_flits: u64,
    /// Flits reaching the sink for an already-resolved transfer during
    /// the window (suppressed duplicates; end-to-end retransmission
    /// only).
    pub duplicate_flits: u64,
    /// Messages whose pair had no surviving route (fault-aware routing
    /// declined them) during the window.
    pub disconnected_messages: u64,
    /// Messages created during the window.
    pub created_messages: u64,
    /// Window-created messages fully delivered before the run ended.
    pub completed_messages: u64,
    /// Sum of completed messages' delays (creation → last flit), cycles.
    pub sum_message_delay: f64,
    /// Largest completed message delay, cycles.
    pub max_message_delay: u64,
    /// Median completed-message delay, cycles (0 if none completed).
    pub delay_p50: f64,
    /// 95th-percentile completed-message delay, cycles.
    pub delay_p95: f64,
    /// 99th-percentile completed-message delay, cycles.
    pub delay_p99: f64,
    /// Packets still queued at sources when the run ended (saturation
    /// indicator).
    pub final_source_backlog: u64,
    /// Lifetime packet transfers created (end-to-end retransmission
    /// only; one per packet first queued).
    pub transfers_created: u64,
    /// Lifetime transfers whose first copy fully arrived.
    pub transfers_delivered: u64,
    /// Lifetime transfers dropped with cause (retry cap or persistent
    /// disconnection).
    pub transfers_dropped: u64,
    /// Lifetime retransmission copies queued (beyond first attempts).
    pub retransmitted_packets: u64,
    /// Lifetime fault-event batches the routing layer reconverged on.
    pub reconvergence_events: u64,
    /// Mean cycles from a fault event to the routing layer acting on it
    /// (detection + reconvergence lag actually realized; 0 if no
    /// events).
    pub mean_reconverge_cycles: f64,
    /// Largest realized reconvergence lag, cycles.
    pub max_reconverge_cycles: u64,
    /// Lifetime cached route selections recomputed because a fault event
    /// invalidated them.
    pub routes_invalidated: u64,
}

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

impl SimStats {
    /// Accepted throughput as a fraction of injection bandwidth
    /// (delivered flits per node per cycle; the paper's Table 1 values
    /// are this × 100). Duplicates never count.
    pub fn accepted_throughput(&self) -> f64 {
        self.delivered_flits as f64 / (self.measure_cycles as f64 * self.num_pns as f64)
    }

    /// Average message delay in cycles over completed, window-created
    /// messages (`NaN` if none completed).
    pub fn avg_message_delay(&self) -> f64 {
        self.sum_message_delay / self.completed_messages as f64
    }

    /// Fraction of window-created messages that completed (drops below
    /// one beyond saturation).
    pub fn completion_rate(&self) -> f64 {
        if self.created_messages == 0 {
            1.0
        } else {
            self.completed_messages as f64 / self.created_messages as f64
        }
    }

    /// Retransmitted copies per transfer created (0 when reliability is
    /// off or nothing was sent). A ratio of 0.1 means one packet in ten
    /// needed a second attempt.
    pub fn retransmit_ratio(&self) -> f64 {
        if self.transfers_created == 0 {
            0.0
        } else {
            self.retransmitted_packets as f64 / self.transfers_created as f64
        }
    }

    /// Condensed form for sweep outputs.
    pub fn load_point(&self) -> LoadPoint {
        LoadPoint {
            offered: self.offered_load,
            throughput: self.accepted_throughput(),
            avg_delay: self.avg_message_delay(),
            completion_rate: self.completion_rate(),
        }
    }
}

/// One point of an offered-load sweep (one column of Figure 5 / one
/// input to a Table 1 cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load (fraction of injection bandwidth).
    pub offered: f64,
    /// Accepted throughput (fraction of injection bandwidth).
    pub throughput: f64,
    /// Average completed-message delay, cycles (`NaN` when nothing
    /// completed).
    pub avg_delay: f64,
    /// Fraction of measured messages that completed.
    pub completion_rate: f64,
}

/// The paper's Table 1 metric: the maximum accepted throughput achieved
/// anywhere on the sweep (throughput peaks at saturation and then
/// degrades under tree saturation).
pub fn saturation_throughput(points: &[LoadPoint]) -> f64 {
    points.iter().map(|p| p.throughput).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            offered_load: 0.5,
            measure_cycles: 1000,
            num_pns: 10,
            injected_flits: 5000,
            delivered_flits: 4000,
            dropped_flits: 0,
            duplicate_flits: 0,
            disconnected_messages: 0,
            created_messages: 80,
            completed_messages: 64,
            sum_message_delay: 6400.0,
            max_message_delay: 300,
            delay_p50: 90.0,
            delay_p95: 250.0,
            delay_p99: 290.0,
            final_source_backlog: 2,
            transfers_created: 0,
            transfers_delivered: 0,
            transfers_dropped: 0,
            retransmitted_packets: 0,
            reconvergence_events: 0,
            mean_reconverge_cycles: 0.0,
            max_reconverge_cycles: 0,
            routes_invalidated: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.5), 7.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.5), 2.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.95), 4.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.0), 1.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 1.0), 4.0);
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.accepted_throughput() - 0.4).abs() < 1e-12);
        assert!((s.avg_message_delay() - 100.0).abs() < 1e-12);
        assert!((s.completion_rate() - 0.8).abs() < 1e-12);
        let p = s.load_point();
        assert_eq!(p.offered, 0.5);
        assert!((p.throughput - 0.4).abs() < 1e-12);
    }

    #[test]
    fn retransmit_ratio_is_zero_safe() {
        let mut s = stats();
        assert_eq!(s.retransmit_ratio(), 0.0);
        s.transfers_created = 100;
        s.retransmitted_packets = 10;
        assert!((s.retransmit_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn saturation_is_the_sweep_max() {
        let mk = |t: f64| LoadPoint {
            offered: 0.0,
            throughput: t,
            avg_delay: 0.0,
            completion_rate: 1.0,
        };
        assert_eq!(saturation_throughput(&[mk(0.2), mk(0.55), mk(0.4)]), 0.55);
        assert_eq!(saturation_throughput(&[]), 0.0);
    }

    #[test]
    fn zero_created_messages_is_full_completion() {
        let mut s = stats();
        s.created_messages = 0;
        s.completed_messages = 0;
        assert_eq!(s.completion_rate(), 1.0);
    }
}
