//! Cycle-driven flit-level network simulator for XGFTs.
//!
//! Models the network the paper's §5 flit-level experiments target:
//! InfiniBand-like switches with **virtual cut-through (VCT) switching**,
//! **credit-based link-level flow control**, a **single virtual
//! channel**, per-port input and output buffers, and round-robin
//! crossbar arbitration. Traffic is **uniform random**: each processing
//! node generates messages by a Poisson process, each message addressed
//! to a uniformly random other node, split into fixed-size packets that
//! are source-routed along a path chosen from the routing scheme's path
//! set.
//!
//! # Model
//!
//! * Time advances in cycles; every link moves at most one flit per
//!   cycle; a flit needs one cycle in a buffer before it can move again
//!   (so the per-hop latency is one link cycle plus one switch cycle).
//! * VCT rule: a packet's *head* flit may enter an output buffer (or
//!   cross a link) only when the target buffer has room for the whole
//!   packet; body flits then stream behind it one per cycle. Once an
//!   output port is granted to a packet it stays granted until the tail
//!   flit passes (packet-atomic switching, as in real VCT switches).
//! * Credits: each output port tracks the free space of the downstream
//!   input buffer; credits return as the downstream buffer drains
//!   (return latency 0 — a simplification that shifts absolute delays
//!   slightly but preserves all relative comparisons).
//! * Open-loop injection: source queues are unbounded, so offered loads
//!   beyond saturation show the classic throughput collapse / delay
//!   blow-up ("tree saturation") the paper discusses.
//!
//! # Metrics
//!
//! [`SimStats`] reports accepted throughput (flits/node/cycle, i.e. the
//! fraction of injection bandwidth delivered) and average message delay
//! (creation to last-flit delivery) over a measurement window following
//! a warm-up phase — the two quantities plotted in Table 1 and Figure 5
//! of the paper. [`sweep::run_sweep`] drives a whole offered-load sweep,
//! one simulator per load point, across worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod config;
mod engine;
mod error;
mod inject;
mod monitor;
mod network;
mod packet;
mod resilience;
mod routing_view;
mod sim;
mod snapshot;
mod stats;
pub mod sweep;
mod traffic_mode;
mod util;

pub use config::{FaultPolicy, PathPolicy, ResilienceConfig, RetxConfig, SimConfig};
pub use error::{ConfigError, DeadlockReport, SimError, TrafficError};
pub use monitor::{check_progress, ConservationLedger, MonitorLog};
pub use network::PortGraph;
pub use resilience::{DropCause, XferState};
pub use sim::FlitSim;
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stats::{saturation_throughput, LoadPoint, SimStats};
pub use sweep::{load_grid, run_sweep, run_sweep_with_preflight, SweepError};
pub use traffic_mode::TrafficMode;
pub use util::Slab;
