//! End-to-end retransmission state: transfer records, the timeout heap
//! and the lifetime ledger.
//!
//! (The lagged routing view and the incremental selection cache that
//! used to live here are now the shared
//! [`SelectionEngine`](lmpr_core::SelectionEngine) in `lmpr-core`,
//! driven by [`routing_view`](crate::routing_view).)

use crate::util::Slab;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xgft::PnId;

/// Why a transfer was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The retry cap was reached after at least one copy was sent.
    RetryExhausted,
    /// Every attempt found the pair disconnected; no copy was ever sent.
    Disconnected,
}

/// Lifecycle of one end-to-end packet transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XferState {
    /// Unresolved: a copy may be in flight, queued, or awaiting retry.
    InFlight,
    /// The first complete copy arrived; later copies are duplicates.
    Delivered,
    /// Abandoned with a cause; late copies are counted as duplicates
    /// (the source already gave up on the packet).
    Dropped(DropCause),
}

/// One reliable packet transfer. Each retransmission creates a fresh
/// [`Packet`](crate::Slab) copy pointing back at this record.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    /// Creation sequence number, unique over the simulation lifetime.
    /// Timeout-heap entries carry it so an entry armed for a reaped
    /// transfer can never act on an unrelated transfer that happens to
    /// reuse the same slab slot.
    pub seq: u64,
    /// Source processing node.
    pub src: u32,
    /// Destination processing node.
    pub dst: PnId,
    /// Message slab key the packet belongs to.
    pub msg: u32,
    /// Transmission attempts consumed (including attempts skipped while
    /// the pair was disconnected). The cap is `1 + max_retries`.
    pub sends: u32,
    /// Whether any copy was actually queued (distinguishes the
    /// [`DropCause`] variants).
    pub ever_sent: bool,
    /// Copies whose packet record is still alive (queued, in flight, or
    /// draining); the record may be reaped only when this hits zero.
    pub live_copies: u32,
    /// Resolution state.
    pub state: XferState,
}

/// A timeout-heap entry: `(deadline, transfer key, transfer seq,
/// sends-at-arming)`. Min-heap via `Reverse`; entries whose `seq` does
/// not match the transfer in the slot are stale (the slot was reaped
/// and reused), as are entries whose `sends` no longer match (a newer
/// attempt re-armed).
pub type TimeoutEntry = Reverse<(u64, u32, u64, u32)>;

/// Exponential-backoff deadline: `timeout · 2^(sends-1)` cycles after
/// `now`, saturating at every step so extreme retry counts can never
/// wrap the timeline.
pub fn backoff_deadline(now: u64, timeout: u64, sends: u32) -> u64 {
    let exp = sends.saturating_sub(1).min(62);
    let factor = 1u64 << exp;
    now.saturating_add(timeout.saturating_mul(factor))
}

/// The retransmission ledger: transfers plus the timeout heap.
#[derive(Debug, Clone, Default)]
pub struct RetxLedger {
    /// Live transfer records (resolved records are reaped once their
    /// last copy drains, so memory tracks in-flight work, not history).
    pub transfers: Slab<Transfer>,
    /// Pending delivery timeouts.
    pub timeouts: BinaryHeap<TimeoutEntry>,
    /// Lifetime transfers created.
    pub created: u64,
    /// Lifetime transfers delivered exactly once.
    pub delivered: u64,
    /// Lifetime transfers dropped with cause.
    pub dropped: u64,
    /// Lifetime retransmission copies queued (sends beyond the first).
    pub retransmitted: u64,
}

impl RetxLedger {
    /// Reap a resolved transfer once no copy references it. No-op while
    /// the transfer is unresolved or copies remain.
    pub fn maybe_reap(&mut self, xfer: u32) {
        let resolved = self
            .transfers
            .get(xfer)
            .is_some_and(|t| t.state != XferState::InFlight && t.live_copies == 0);
        if resolved {
            self.transfers.remove(xfer);
        }
    }

    /// Transfers currently unresolved (measured by walking the slab, so
    /// the count is independent of the lifetime counters it is audited
    /// against).
    pub fn in_flight(&self) -> u64 {
        self.transfers
            .iter()
            .filter(|(_, t)| t.state == XferState::InFlight)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        assert_eq!(backoff_deadline(100, 50, 1), 150);
        assert_eq!(backoff_deadline(100, 50, 2), 200);
        assert_eq!(backoff_deadline(100, 50, 3), 300);
        assert_eq!(backoff_deadline(100, 50, 0), 150, "send 0 clamps to base");
        assert_eq!(backoff_deadline(u64::MAX - 1, 50, 4), u64::MAX);
        assert_eq!(backoff_deadline(0, u64::MAX, 63), u64::MAX);
    }

    #[test]
    fn ledger_reaps_only_resolved_copyless_transfers() {
        let mut l = RetxLedger::default();
        let x = l.transfers.insert(Transfer {
            seq: 1,
            src: 0,
            dst: PnId(1),
            msg: 0,
            sends: 1,
            ever_sent: true,
            live_copies: 1,
            state: XferState::InFlight,
        });
        l.created += 1;
        l.maybe_reap(x);
        assert!(l.transfers.get(x).is_some(), "in-flight is never reaped");
        assert_eq!(l.in_flight(), 1);
        if let Some(t) = l.transfers.get_mut(x) {
            t.state = XferState::Delivered;
        }
        l.maybe_reap(x);
        assert!(l.transfers.get(x).is_some(), "a live copy pins the record");
        if let Some(t) = l.transfers.get_mut(x) {
            t.live_copies = 0;
        }
        l.maybe_reap(x);
        assert!(l.transfers.get(x).is_none());
        assert_eq!(l.in_flight(), 0);
    }
}
