//! Small utilities: a free-list slab for packet and message records.

/// A minimal slab allocator: O(1) insert/remove with stable `u32` keys,
/// reusing freed slots so long simulations do not grow memory with the
/// total number of packets ever injected.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value and return its key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(key) = self.free.pop() {
            debug_assert!(self.slots[key as usize].is_none());
            self.slots[key as usize] = Some(value);
            key
        } else {
            self.slots.push(Some(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Remove and return the value under `key`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (a double-free is a simulator bug).
    pub fn remove(&mut self, key: u32) -> T {
        let v = self.slots[key as usize]
            .take()
            .expect("slab slot already vacant");
        self.free.push(key);
        self.len -= 1;
        v
    }

    /// Shared access to a live slot.
    pub fn get(&self, key: u32) -> &T {
        self.slots[key as usize].as_ref().expect("slab slot vacant")
    }

    /// Mutable access to a live slot.
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        self.slots[key as usize].as_mut().expect("slab slot vacant")
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity high-water mark (total slots ever allocated).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(*s.get(a), "a");
        assert_eq!(*s.get(b), "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    fn high_water_mark_bounded_by_live_peak() {
        let mut s = Slab::new();
        for round in 0..10 {
            let keys: Vec<u32> = (0..5).map(|i| s.insert(round * 10 + i)).collect();
            for k in keys {
                s.remove(k);
            }
        }
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 5);
    }

    #[test]
    #[should_panic(expected = "already vacant")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(());
        s.remove(a);
        s.remove(a);
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = Slab::new();
        let a = s.insert(5);
        *s.get_mut(a) += 1;
        assert_eq!(*s.get(a), 6);
    }
}
