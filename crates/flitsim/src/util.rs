//! Small utilities: index-width conversion helpers and a free-list
//! slab for packet and message records.

// ---------------------------------------------------------------------
// Index-width helpers.
//
// flitsim identifies nodes, ports, PNs and slab records with `u32`
// keys and stores their state in `Vec`s, so u32 -> usize index
// conversions are pervasive. They are lossless on every supported
// target:
const _: () = assert!(
    usize::BITS >= 32,
    "flitsim indexes Vecs with u32 ids; a 16-bit usize cannot hold them"
);

/// Index a `Vec` with a `u32` entity id (lossless; see the width
/// assertion above).
#[inline]
pub(crate) const fn ix(v: u32) -> usize {
    v as usize
}

/// Narrow a `usize` bounded by a `u32`-keyed collection back to `u32`.
/// Ids are issued as `u32` in the first place, so the bound holds by
/// construction; debug builds re-check it.
#[inline]
pub(crate) fn small_u32(v: usize) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "collection outgrew u32 ids");
    v as u32
}

/// Narrow a local output-port id to the `u16` stored in packed routes.
/// Switch radixes sit far below `u16::MAX`; debug builds re-check it.
#[inline]
pub(crate) fn route_port(v: u32) -> u16 {
    debug_assert!(u16::try_from(v).is_ok(), "port index outgrew u16 routes");
    v as u16
}

/// Narrow a tree level to the `u8` carried in `NodeId`. XGFT heights
/// are single digits; debug builds re-check it.
#[inline]
pub(crate) fn small_u8(v: usize) -> u8 {
    debug_assert!(u8::try_from(v).is_ok(), "tree height outgrew u8 levels");
    v as u8
}

/// A minimal slab allocator: O(1) insert/remove with stable `u32` keys,
/// reusing freed slots so long simulations do not grow memory with the
/// total number of packets ever injected.
///
/// Access is Option-returning: a vacant slot is reported to the caller
/// instead of panicking, so the simulator can degrade gracefully (skip
/// the orphaned flit, keep the run alive) while debug builds still
/// assert the invariant at every call site.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value and return its key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(key) = self.free.pop() {
            debug_assert!(self.slots[ix(key)].is_none());
            self.slots[ix(key)] = Some(value);
            key
        } else {
            self.slots.push(Some(value));
            small_u32(self.slots.len() - 1)
        }
    }

    /// Remove and return the value under `key`, or `None` if the slot is
    /// vacant or the key was never issued (a double-free is a simulator
    /// bug the caller surfaces).
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let v = self.slots.get_mut(ix(key))?.take()?;
        self.free.push(key);
        self.len -= 1;
        Some(v)
    }

    /// Shared access to a live slot (`None` if vacant).
    pub fn get(&self, key: u32) -> Option<&T> {
        self.slots.get(ix(key))?.as_ref()
    }

    /// Mutable access to a live slot (`None` if vacant).
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.slots.get_mut(ix(key))?.as_mut()
    }

    /// Iterate over live entries as `(key, &value)`, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (small_u32(i), v)))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity high-water mark (total slots ever allocated).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot view: the raw slot array and the free list, exactly as
    /// stored. The free-list *order* is behavioral state — keys are
    /// reused LIFO, and key values flow into downstream identifiers — so
    /// both halves must round-trip verbatim through a snapshot.
    pub fn parts(&self) -> (&[Option<T>], &[u32]) {
        (&self.slots, &self.free)
    }

    /// Rebuild a slab from [`Slab::parts`] output. Returns `None` when
    /// the halves are inconsistent (a free-list entry pointing at an
    /// occupied or out-of-range slot, or listed twice), so a corrupted
    /// snapshot surfaces as a typed error instead of corrupting later
    /// insertions.
    pub fn from_parts(slots: Vec<Option<T>>, free: Vec<u32>) -> Option<Self> {
        let occupied = slots.iter().filter(|s| s.is_some()).count();
        if occupied + free.len() != slots.len() {
            return None;
        }
        let mut seen = vec![false; slots.len()];
        for &key in &free {
            let slot = slots.get(ix(key))?;
            if slot.is_some() || std::mem::replace(&mut seen[ix(key)], true) {
                return None;
            }
        }
        Some(Slab {
            len: occupied,
            slots,
            free,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    fn high_water_mark_bounded_by_live_peak() {
        let mut s = Slab::new();
        for round in 0..10 {
            let keys: Vec<u32> = (0..5).map(|i| s.insert(round * 10 + i)).collect();
            for k in keys {
                s.remove(k);
            }
        }
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 5);
    }

    #[test]
    fn vacant_access_is_none_not_a_panic() {
        let mut s = Slab::new();
        let a = s.insert(());
        assert_eq!(s.remove(a), Some(()));
        assert_eq!(s.remove(a), None, "double-free is reported, not fatal");
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.get(99), None, "unissued keys are vacant too");
    }

    #[test]
    fn parts_roundtrip_preserves_free_list_order() {
        let mut s = Slab::new();
        let keys: Vec<u32> = (0..5).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        let (slots, free) = s.parts();
        let rebuilt = Slab::from_parts(slots.to_vec(), free.to_vec()).unwrap();
        assert_eq!(rebuilt.len(), s.len());
        // LIFO reuse order must match the original exactly.
        let mut a = s;
        let mut b = rebuilt;
        assert_eq!(a.insert(100), b.insert(100));
        assert_eq!(a.insert(101), b.insert(101));
        assert_eq!(a.insert(102), b.insert(102));
    }

    #[test]
    fn from_parts_rejects_inconsistent_halves() {
        // Free entry points at an occupied slot.
        assert!(Slab::from_parts(vec![Some(1)], vec![0]).is_none());
        // Free entry out of range.
        assert!(Slab::<i32>::from_parts(vec![None], vec![3]).is_none());
        // Duplicate free entry.
        assert!(Slab::<i32>::from_parts(vec![None, None], vec![0, 0]).is_none());
        // Vacant slot missing from the free list.
        assert!(Slab::<i32>::from_parts(vec![None], vec![]).is_none());
        // Consistent halves round-trip.
        assert!(Slab::from_parts(vec![Some(1), None], vec![1]).is_some());
    }

    #[test]
    fn get_mut_mutates_and_iter_walks_live_slots() {
        let mut s = Slab::new();
        let a = s.insert(5);
        let b = s.insert(7);
        if let Some(v) = s.get_mut(a) {
            *v += 1;
        }
        assert_eq!(s.get(a), Some(&6));
        s.remove(a);
        let live: Vec<(u32, &i32)> = s.iter().collect();
        assert_eq!(live, vec![(b, &7)]);
    }
}
