//! Typed simulator errors: configuration problems, workload problems
//! and the no-progress watchdog's deadlock report.

use std::fmt;

/// A rejected [`SimConfig`](crate::SimConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `packet_flits == 0`.
    ZeroPacketFlits,
    /// `packets_per_message == 0`.
    ZeroPacketsPerMessage,
    /// Buffers smaller than one packet: virtual cut-through could never
    /// forward a head flit.
    BufferBelowOnePacket,
    /// Offered load outside `(0, 1]`.
    BadOfferedLoad(f64),
    /// `measure_cycles == 0`.
    EmptyMeasureWindow,
    /// A retransmission timeout of zero cycles would re-arm every cycle.
    ZeroRetxTimeout,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPacketFlits => write!(f, "packets need at least one flit"),
            ConfigError::ZeroPacketsPerMessage => {
                write!(f, "messages need at least one packet")
            }
            ConfigError::BufferBelowOnePacket => write!(
                f,
                "virtual cut-through requires room for at least one whole packet per buffer"
            ),
            ConfigError::BadOfferedLoad(l) => {
                write!(f, "offered load must be in (0, 1], got {l}")
            }
            ConfigError::EmptyMeasureWindow => {
                write!(f, "measurement window must be non-empty")
            }
            ConfigError::ZeroRetxTimeout => {
                write!(f, "retransmission timeout must be at least one cycle")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A rejected [`TrafficMode`](crate::TrafficMode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficError {
    /// Permutation vector length differs from the node count.
    PermutationLength {
        /// Expected length (node count).
        expected: u32,
        /// Supplied length.
        got: usize,
    },
    /// A permutation target is not a valid node.
    TargetOutOfRange {
        /// The offending target.
        target: u32,
        /// Node count.
        nodes: u32,
    },
    /// A destination appears twice — the permutation is not a bijection.
    NotABijection {
        /// The duplicated destination.
        duplicate: u32,
    },
    /// A hotspot needs at least one hot node.
    EmptyHotSet,
    /// A hot node is not a valid node.
    HotNodeOutOfRange {
        /// The offending hot node.
        node: u32,
        /// Node count.
        nodes: u32,
    },
    /// Hotspot fraction outside `[0, 1]`.
    BadFraction(f64),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::PermutationLength { expected, got } => write!(
                f,
                "permutation length must equal node count (expected {expected}, got {got})"
            ),
            TrafficError::TargetOutOfRange { target, nodes } => {
                write!(f, "permutation target {target} out of range (< {nodes})")
            }
            TrafficError::NotABijection { duplicate } => {
                write!(f, "not a bijection: destination {duplicate} appears twice")
            }
            TrafficError::EmptyHotSet => write!(f, "hotspot needs at least one hot node"),
            TrafficError::HotNodeOutOfRange { node, nodes } => {
                write!(f, "hot node {node} out of range (< {nodes})")
            }
            TrafficError::BadFraction(v) => {
                write!(f, "fraction must be in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

/// Diagnostic snapshot taken when the no-progress watchdog aborts a
/// stuck simulation (e.g. blocking faults jam every route of a flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Cycles since the last flit movement.
    pub stalled_for: u64,
    /// Flits sitting in network buffers.
    pub flits_in_network: u64,
    /// Packets created but not fully delivered (in-flight).
    pub in_flight_packets: usize,
    /// Output ports holding flits that cannot move.
    pub blocked_ports: usize,
    /// Packets still queued at the sources.
    pub source_backlog: u64,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no progress for {} cycles at cycle {}: {} flits in network, \
             {} in-flight packets, {} blocked ports, {} packets backlogged at sources",
            self.stalled_for,
            self.cycle,
            self.flits_in_network,
            self.in_flight_packets,
            self.blocked_ports,
            self.source_backlog
        )
    }
}

/// Everything that can go wrong constructing or running a
/// [`FlitSim`](crate::FlitSim).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid simulation parameters.
    Config(ConfigError),
    /// Invalid workload for the topology.
    Traffic(TrafficError),
    /// The topology has fewer than two processing nodes, so no traffic
    /// pattern can be generated.
    TooFewPns(u32),
    /// The no-progress watchdog aborted a stuck simulation.
    Deadlock(DeadlockReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::Traffic(e) => write!(f, "invalid workload: {e}"),
            SimError::TooFewPns(n) => {
                write!(
                    f,
                    "traffic generation needs at least two PNs, topology has {n}"
                )
            }
            SimError::Deadlock(r) => write!(f, "simulation deadlocked: {r}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_numbers() {
        let e = SimError::from(ConfigError::BadOfferedLoad(1.5));
        assert!(e.to_string().contains("1.5"));
        let e = SimError::from(TrafficError::NotABijection { duplicate: 7 });
        assert!(e.to_string().contains("7"));
        let r = DeadlockReport {
            cycle: 900,
            stalled_for: 500,
            flits_in_network: 64,
            in_flight_packets: 4,
            blocked_ports: 2,
            source_backlog: 10,
        };
        let msg = SimError::Deadlock(r).to_string();
        assert!(msg.contains("900") && msg.contains("64") && msg.contains("blocked"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        assert!(SimError::from(ConfigError::EmptyMeasureWindow)
            .source()
            .is_some());
        assert!(SimError::TooFewPns(1).source().is_none());
    }
}
