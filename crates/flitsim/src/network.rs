//! Explicit port graph derived from the implicit XGFT topology.

use crate::util::{ix, small_u32, small_u8};
use xgft::{NodeId, Topology};

/// Flattened node/port indexing for the simulator.
///
/// * Node gids: processing nodes first (`0 .. N`, equal to their
///   [`xgft::PnId`]), then switches level by level.
/// * Port gids: per node, `port_base[node] + local_port`, with local
///   port numbering identical to the paper's (up ports first).
/// * `peer[port]` is the port gid at the other end of the cable; since
///   every cable is a full-duplex pair, the same table maps an output
///   unit to the downstream input unit and an input unit to the
///   upstream output unit.
#[derive(Debug, Clone)]
pub struct PortGraph {
    node_level_base: Vec<u32>,
    port_base: Vec<u32>,
    node_of_port: Vec<u32>,
    peer: Vec<u32>,
    nodes: Vec<NodeId>,
    num_pns: u32,
}

impl PortGraph {
    /// Build the port graph of a topology.
    pub fn new(topo: &Topology) -> Self {
        let h = topo.height();
        let mut node_level_base = vec![0u32; h + 2];
        for l in 0..=h {
            node_level_base[l + 1] = node_level_base[l] + topo.nodes_at_level(l);
        }
        let num_nodes = ix(node_level_base[h + 1]);
        let mut nodes = Vec::with_capacity(num_nodes);
        let mut port_base = Vec::with_capacity(num_nodes + 1);
        let mut node_of_port = Vec::new();
        let mut next_port = 0u32;
        for l in 0..=h {
            let ports = topo.ports_at_level(l);
            for rank in 0..topo.nodes_at_level(l) {
                nodes.push(NodeId {
                    level: small_u8(l),
                    rank,
                });
                port_base.push(next_port);
                let gid = small_u32(nodes.len() - 1);
                for _ in 0..ports {
                    node_of_port.push(gid);
                }
                next_port += ports;
            }
        }
        port_base.push(next_port);
        let mut graph = PortGraph {
            node_level_base,
            port_base,
            node_of_port,
            peer: vec![u32::MAX; ix(next_port)],
            nodes,
            num_pns: topo.num_pns(),
        };
        // Wire every cable once, from the up-link's endpoints (the
        // down-link mirrors it).
        for l in 1..=h {
            for child in 0..topo.nodes_at_level(l - 1) {
                for port in 0..topo.spec().w_at(l) {
                    let link = topo.up_link(l, child, port);
                    let e = topo.endpoints(link);
                    let a = graph.port_gid(graph.node_gid(e.from), e.from_port);
                    let b = graph.port_gid(graph.node_gid(e.to), e.to_port);
                    graph.peer[ix(a)] = b;
                    graph.peer[ix(b)] = a;
                }
            }
        }
        debug_assert!(graph.peer.iter().all(|&p| p != u32::MAX), "unwired port");
        graph
    }

    /// Global node id of a topology node.
    pub fn node_gid(&self, node: NodeId) -> u32 {
        self.node_level_base[usize::from(node.level)] + node.rank
    }

    /// Topology node behind a global node id.
    pub fn node(&self, gid: u32) -> NodeId {
        self.nodes[ix(gid)]
    }

    /// Total number of nodes (PNs + switches).
    pub fn num_nodes(&self) -> u32 {
        small_u32(self.nodes.len())
    }

    /// Number of processing nodes.
    pub fn num_pns(&self) -> u32 {
        self.num_pns
    }

    /// Whether a node gid is a processing node.
    pub fn is_pn(&self, gid: u32) -> bool {
        gid < self.num_pns
    }

    /// Total number of ports (each is one input unit + one output unit).
    pub fn num_ports(&self) -> u32 {
        self.port_base.last().copied().unwrap_or(0)
    }

    /// Global port id of a node's local port.
    pub fn port_gid(&self, node_gid: u32, local_port: u32) -> u32 {
        debug_assert!(self.port_base[ix(node_gid)] + local_port < self.port_base[ix(node_gid) + 1]);
        self.port_base[ix(node_gid)] + local_port
    }

    /// Node gid owning a port.
    pub fn port_owner(&self, port_gid: u32) -> u32 {
        self.node_of_port[ix(port_gid)]
    }

    /// The node's local port index of a global port id.
    pub fn local_port(&self, port_gid: u32) -> u32 {
        port_gid - self.port_base[ix(self.port_owner(port_gid))]
    }

    /// The port at the other end of the cable.
    pub fn peer(&self, port_gid: u32) -> u32 {
        self.peer[ix(port_gid)]
    }

    /// The range of port gids of a node.
    pub fn ports_of(&self, node_gid: u32) -> std::ops::Range<u32> {
        self.port_base[ix(node_gid)]..self.port_base[ix(node_gid) + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::{PnId, XgftSpec};

    fn graph() -> (Topology, PortGraph) {
        let t = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let g = PortGraph::new(&t);
        (t, g)
    }

    #[test]
    fn node_counts_and_pn_prefix() {
        let (t, g) = graph();
        assert_eq!(g.num_nodes(), 16 + 4 + 4);
        assert_eq!(g.num_pns(), 16);
        for p in 0..t.num_pns() {
            assert_eq!(g.node_gid(NodeId::pn(PnId(p))), p);
            assert!(g.is_pn(p));
        }
        assert!(!g.is_pn(16));
    }

    #[test]
    fn port_counts() {
        let (_t, g) = graph();
        // 16 PNs × 1 + 4 level-1 × (4+4) + 4 level-2 × 4 = 64 ports.
        assert_eq!(g.num_ports(), 16 + 32 + 16);
    }

    #[test]
    fn peer_is_an_involution_without_fixpoints() {
        let (_t, g) = graph();
        for p in 0..g.num_ports() {
            let q = g.peer(p);
            assert_ne!(p, q);
            assert_eq!(g.peer(q), p);
        }
    }

    #[test]
    fn owner_and_local_port_roundtrip() {
        let (_t, g) = graph();
        for node in 0..g.num_nodes() {
            for port in g.ports_of(node) {
                assert_eq!(g.port_owner(port), node);
                assert_eq!(g.port_gid(node, g.local_port(port)), port);
            }
        }
    }

    #[test]
    fn wiring_matches_topology_adjacency() {
        let (t, g) = graph();
        // PN 0's only port must reach its level-1 parent.
        let pn_port = g.port_gid(0, 0);
        let peer = g.peer(pn_port);
        let parent = g.node(g.port_owner(peer));
        assert_eq!(parent, t.parent(NodeId::pn(PnId(0)), 0));
        // And the parent's receiving port is a down port for child 0.
        assert_eq!(g.local_port(peer), t.down_port_offset(1));
    }

    #[test]
    fn route_ports_walk_the_graph() {
        // Following path_output_ports through the port graph ends at the
        // destination PN for every path of a far pair.
        let (t, g) = graph();
        let (s, d) = (PnId(0), PnId(15));
        for p in t.all_paths(s, d) {
            let route = t.path_output_ports(s, d, p);
            let mut node = g.node_gid(NodeId::pn(s));
            for &port in &route {
                let out = g.port_gid(node, port);
                node = g.port_owner(g.peer(out));
            }
            assert_eq!(node, g.node_gid(NodeId::pn(d)));
        }
    }
}
