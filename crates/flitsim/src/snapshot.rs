//! Crash-consistent simulator snapshots: versioned, checksummed
//! serialization of complete [`FlitSim`] state with a byte-identical
//! resume guarantee.
//!
//! # Format
//!
//! A snapshot is `magic (8) · version (u32) · payload length (u64) ·
//! FNV-1a-64 checksum of the payload (u64) · payload`, all
//! little-endian. [`FlitSim::restore`] verifies magic, version, length
//! and checksum *before* decoding a single payload byte, so a truncated
//! or bit-flipped file is rejected with a typed [`SnapshotError`] —
//! never a panic, never a silently wrong simulator.
//!
//! # Serialized vs. rebuilt
//!
//! Everything whose *value* is behavioral state is serialized exactly:
//! the cycle counter, every statistic (f64s as raw bits), the packet and
//! message slabs **including free-list order** (keys are reused LIFO and
//! leak into future identifiers), per-source RNG positions, arrival
//! clocks and queues, the arbiter's VOQs/credits/grants/round-robin
//! pointers, the retransmission ledger with its timeout heap (as a
//! sorted sequence — entries are totally ordered and pairwise distinct,
//! so heap pop order is a function of the *set*), the fault-schedule
//! replay cursor, the pending routing-view batches and the selection
//! cache's key set and counters.
//!
//! Everything *derivable* is rebuilt on restore: the [`Topology`] from
//! its spec, the port graph, the physical and routing-view fault sets
//! (by replaying schedule prefixes), and the cached selections
//! themselves (recomputed per key against the rebuilt view — the
//! cached-vs-cold property test certifies the recomputation equals the
//! original cache).

use crate::arbiter::Arbiter;
use crate::config::{FaultPolicy, PathPolicy, RetxConfig, SimConfig};
use crate::inject::{Source, StreamingPacket};
use crate::network::PortGraph;
use crate::packet::{Flit, Message, Packet};
use crate::resilience::{DropCause, RetxLedger, Transfer, XferState};
use crate::routing_view::{RoutingView, ViewBatch};
use crate::sim::FlitSim;
use crate::traffic_mode::TrafficMode;
use crate::util::Slab;
use lmpr_core::{Router, SelectionStats};
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use xgft::{
    DirectedLinkId, FaultChange, FaultEvent, FaultSchedule, NodeId, PnId, Topology, XgftSpec,
};

/// File magic identifying an LMPR flit-simulator snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"LMPRSNAP";

/// Current snapshot format version. Bumped on any layout change; older
/// readers reject newer snapshots with a typed error instead of
/// misinterpreting bytes.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a snapshot could not be restored. Every variant is a structured
/// rejection — restoring never panics and never yields a simulator
/// built from unverified bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream is shorter than the fixed header.
    TooShort,
    /// The magic bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The declared payload length disagrees with the actual bytes.
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match — the bytes were corrupted.
    ChecksumMismatch {
        /// Checksum the header declares.
        declared: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// The payload ended mid-field (corruption the checksum caught a
    /// different way, or an internal decoder bug).
    Truncated,
    /// A decoded value is structurally impossible (bad enum tag,
    /// inconsistent slab free list, cursor past the schedule end, …).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than its header"),
            SnapshotError::BadMagic => write!(f, "not a flit-simulator snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (reader supports {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::LengthMismatch { declared, actual } => write!(
                f,
                "snapshot payload length mismatch: header declares {declared} bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch { declared, actual } => write!(
                f,
                "snapshot checksum mismatch: header declares {declared:#018x}, payload hashes to \
                 {actual:#018x}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot payload truncated mid-field"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes` — dependency-free corruption detection.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Byte writer / fallible reader
// ---------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// f64 as raw IEEE bits: bit-exact round-trip, NaN-safe.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn seq_len(&mut self, len: usize) {
        self.u64(len as u64);
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, SnapshotError>;

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("boolean out of range")),
        }
    }

    fn u16(&mut self) -> DecResult<u16> {
        let b = self.take(2)?;
        b.try_into()
            .map(u16::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated)
    }

    fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated)
    }

    fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated)
    }

    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length prefix of a sequence whose elements occupy at least
    /// `min_elem` bytes each — bounds allocation by the bytes actually
    /// present, so a corrupted length cannot demand absurd memory.
    fn seq_len(&mut self, min_elem: usize) -> DecResult<usize> {
        let len = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        let min_elem = min_elem.max(1) as u64;
        if len > remaining / min_elem {
            return Err(SnapshotError::Corrupt("sequence length exceeds payload"));
        }
        Ok(len as usize)
    }

    fn opt_u32(&mut self) -> DecResult<Option<u32>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Corrupt("option tag out of range")),
        }
    }

    fn finish(self) -> DecResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------
// Field-group encoders / decoders
// ---------------------------------------------------------------------

fn enc_config(e: &mut Enc, cfg: &SimConfig) {
    e.u16(cfg.packet_flits);
    e.u16(cfg.packets_per_message);
    e.u16(cfg.buffer_packets);
    e.u64(cfg.warmup_cycles);
    e.u64(cfg.measure_cycles);
    e.f64(cfg.offered_load);
    e.u64(cfg.seed);
    e.u8(match cfg.path_policy {
        PathPolicy::PerPacketRandom => 0,
        PathPolicy::PerMessageRandom => 1,
        PathPolicy::RoundRobin => 2,
    });
    e.u64(cfg.watchdog_cycles);
}

fn dec_config(d: &mut Dec<'_>) -> DecResult<SimConfig> {
    Ok(SimConfig {
        packet_flits: d.u16()?,
        packets_per_message: d.u16()?,
        buffer_packets: d.u16()?,
        warmup_cycles: d.u64()?,
        measure_cycles: d.u64()?,
        offered_load: d.f64()?,
        seed: d.u64()?,
        path_policy: match d.u8()? {
            0 => PathPolicy::PerPacketRandom,
            1 => PathPolicy::PerMessageRandom,
            2 => PathPolicy::RoundRobin,
            _ => return Err(SnapshotError::Corrupt("path-policy tag out of range")),
        },
        watchdog_cycles: d.u64()?,
    })
}

fn enc_traffic(e: &mut Enc, t: &TrafficMode) {
    match t {
        TrafficMode::Uniform => e.u8(0),
        TrafficMode::Permutation(p) => {
            e.u8(1);
            e.seq_len(p.len());
            for &d in p {
                e.u32(d);
            }
        }
        TrafficMode::Hotspot { hot, fraction } => {
            e.u8(2);
            e.seq_len(hot.len());
            for &h in hot {
                e.u32(h);
            }
            e.f64(*fraction);
        }
    }
}

fn dec_traffic(d: &mut Dec<'_>) -> DecResult<TrafficMode> {
    match d.u8()? {
        0 => Ok(TrafficMode::Uniform),
        1 => {
            let n = d.seq_len(4)?;
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(d.u32()?);
            }
            Ok(TrafficMode::Permutation(p))
        }
        2 => {
            let n = d.seq_len(4)?;
            let mut hot = Vec::with_capacity(n);
            for _ in 0..n {
                hot.push(d.u32()?);
            }
            Ok(TrafficMode::Hotspot {
                hot,
                fraction: d.f64()?,
            })
        }
        _ => Err(SnapshotError::Corrupt("traffic-mode tag out of range")),
    }
}

fn enc_flit(e: &mut Enc, f: &Flit) {
    e.u32(f.pkt);
    e.u16(f.seq);
    e.u8(f.hop);
    e.u64(f.entered);
}

fn dec_flit(d: &mut Dec<'_>) -> DecResult<Flit> {
    Ok(Flit {
        pkt: d.u32()?,
        seq: d.u16()?,
        hop: d.u8()?,
        entered: d.u64()?,
    })
}

fn enc_flit_queue(e: &mut Enc, q: &VecDeque<Flit>) {
    e.seq_len(q.len());
    for f in q {
        enc_flit(e, f);
    }
}

fn dec_flit_queue(d: &mut Dec<'_>) -> DecResult<VecDeque<Flit>> {
    let n = d.seq_len(15)?;
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        q.push_back(dec_flit(d)?);
    }
    Ok(q)
}

fn enc_packet_slab(e: &mut Enc, slab: &Slab<Packet>) {
    let (slots, free) = slab.parts();
    e.seq_len(slots.len());
    for slot in slots {
        match slot {
            None => e.u8(0),
            Some(p) => {
                e.u8(1);
                e.u32(p.msg);
                e.u16(p.len);
                e.seq_len(p.route.len());
                for &port in p.route.iter() {
                    e.u16(port);
                }
                e.u32(p.dst.0);
                e.u32(p.xfer);
            }
        }
    }
    e.seq_len(free.len());
    for &k in free {
        e.u32(k);
    }
}

fn dec_packet_slab(d: &mut Dec<'_>) -> DecResult<Slab<Packet>> {
    let n = d.seq_len(1)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(match d.u8()? {
            0 => None,
            1 => {
                let msg = d.u32()?;
                let len = d.u16()?;
                let hops = d.seq_len(2)?;
                let mut route = Vec::with_capacity(hops);
                for _ in 0..hops {
                    route.push(d.u16()?);
                }
                Some(Packet {
                    msg,
                    len,
                    route: route.into_boxed_slice(),
                    dst: PnId(d.u32()?),
                    xfer: d.u32()?,
                })
            }
            _ => return Err(SnapshotError::Corrupt("packet-slot tag out of range")),
        });
    }
    let nf = d.seq_len(4)?;
    let mut free = Vec::with_capacity(nf);
    for _ in 0..nf {
        free.push(d.u32()?);
    }
    Slab::from_parts(slots, free).ok_or(SnapshotError::Corrupt("packet slab free list"))
}

fn enc_message_slab(e: &mut Enc, slab: &Slab<Message>) {
    let (slots, free) = slab.parts();
    e.seq_len(slots.len());
    for slot in slots {
        match slot {
            None => e.u8(0),
            Some(m) => {
                e.u8(1);
                e.u64(m.created);
                e.u32(m.remaining_flits);
                e.bool(m.measured);
            }
        }
    }
    e.seq_len(free.len());
    for &k in free {
        e.u32(k);
    }
}

fn dec_message_slab(d: &mut Dec<'_>) -> DecResult<Slab<Message>> {
    let n = d.seq_len(1)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(match d.u8()? {
            0 => None,
            1 => Some(Message {
                created: d.u64()?,
                remaining_flits: d.u32()?,
                measured: d.bool()?,
            }),
            _ => return Err(SnapshotError::Corrupt("message-slot tag out of range")),
        });
    }
    let nf = d.seq_len(4)?;
    let mut free = Vec::with_capacity(nf);
    for _ in 0..nf {
        free.push(d.u32()?);
    }
    Slab::from_parts(slots, free).ok_or(SnapshotError::Corrupt("message slab free list"))
}

fn enc_sources(e: &mut Enc, sources: &[Source]) {
    e.seq_len(sources.len());
    for s in sources {
        let (rng, next_arrival, rr) = s.snapshot_parts();
        for w in rng {
            e.u64(w);
        }
        e.f64(next_arrival);
        e.u64(rr);
        e.seq_len(s.queues.len());
        for q in &s.queues {
            e.seq_len(q.len());
            for sp in q {
                e.u32(sp.pkt);
                e.u16(sp.next_seq);
            }
        }
    }
}

fn dec_sources(d: &mut Dec<'_>) -> DecResult<Vec<Source>> {
    let n = d.seq_len(8)?;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let next_arrival = d.f64()?;
        let rr = d.u64()?;
        let nq = d.seq_len(8)?;
        let mut queues = Vec::with_capacity(nq);
        for _ in 0..nq {
            let np = d.seq_len(6)?;
            let mut q = VecDeque::with_capacity(np);
            for _ in 0..np {
                q.push_back(StreamingPacket {
                    pkt: d.u32()?,
                    next_seq: d.u16()?,
                });
            }
            queues.push(q);
        }
        sources.push(Source::from_parts(rng, next_arrival, queues, rr));
    }
    Ok(sources)
}

fn enc_arbiter(e: &mut Enc, arb: &Arbiter) {
    e.seq_len(arb.in_buf.len());
    for voqs in &arb.in_buf {
        e.seq_len(voqs.len());
        for q in voqs {
            enc_flit_queue(e, q);
        }
    }
    e.seq_len(arb.out_buf.len());
    for q in &arb.out_buf {
        enc_flit_queue(e, q);
    }
    e.seq_len(arb.credits.len());
    for &c in &arb.credits {
        e.u32(c);
    }
    e.seq_len(arb.grant.len());
    for g in &arb.grant {
        match g {
            None => e.u8(0),
            Some((input, pkt)) => {
                e.u8(1);
                e.u32(*input);
                e.u32(*pkt);
            }
        }
    }
    e.seq_len(arb.rr_ptr.len());
    for &p in &arb.rr_ptr {
        e.u32(p);
    }
}

fn dec_arbiter(d: &mut Dec<'_>) -> DecResult<Arbiter> {
    let np = d.seq_len(8)?;
    let mut in_buf = Vec::with_capacity(np);
    for _ in 0..np {
        let nv = d.seq_len(8)?;
        let mut voqs = Vec::with_capacity(nv);
        for _ in 0..nv {
            voqs.push(dec_flit_queue(d)?);
        }
        in_buf.push(voqs);
    }
    let no = d.seq_len(8)?;
    let mut out_buf = Vec::with_capacity(no);
    for _ in 0..no {
        out_buf.push(dec_flit_queue(d)?);
    }
    let nc = d.seq_len(4)?;
    let mut credits = Vec::with_capacity(nc);
    for _ in 0..nc {
        credits.push(d.u32()?);
    }
    let ng = d.seq_len(1)?;
    let mut grant = Vec::with_capacity(ng);
    for _ in 0..ng {
        grant.push(match d.u8()? {
            0 => None,
            1 => Some((d.u32()?, d.u32()?)),
            _ => return Err(SnapshotError::Corrupt("grant tag out of range")),
        });
    }
    let nr = d.seq_len(4)?;
    let mut rr_ptr = Vec::with_capacity(nr);
    for _ in 0..nr {
        rr_ptr.push(d.u32()?);
    }
    Ok(Arbiter {
        in_buf,
        out_buf,
        credits,
        grant,
        rr_ptr,
    })
}

fn enc_ledger(e: &mut Enc, ledger: &RetxLedger) {
    let (slots, free) = ledger.transfers.parts();
    e.seq_len(slots.len());
    for slot in slots {
        match slot {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                e.u64(t.seq);
                e.u32(t.src);
                e.u32(t.dst.0);
                e.u32(t.msg);
                e.u32(t.sends);
                e.bool(t.ever_sent);
                e.u32(t.live_copies);
                e.u8(match t.state {
                    XferState::InFlight => 0,
                    XferState::Delivered => 1,
                    XferState::Dropped(DropCause::RetryExhausted) => 2,
                    XferState::Dropped(DropCause::Disconnected) => 3,
                });
            }
        }
    }
    e.seq_len(free.len());
    for &k in free {
        e.u32(k);
    }
    // The heap is serialized as its *sorted* element sequence. Entries
    // are pairwise distinct (each transfer arms at most one live entry
    // per sends count, and seqs disambiguate slot reuse) and totally
    // ordered, so the rebuilt heap pops in exactly the original order
    // even though its internal array layout may differ.
    let mut entries: Vec<(u64, u32, u64, u32)> = ledger.timeouts.iter().map(|r| r.0).collect();
    entries.sort_unstable();
    e.seq_len(entries.len());
    for (deadline, xfer, seq, sends) in entries {
        e.u64(deadline);
        e.u32(xfer);
        e.u64(seq);
        e.u32(sends);
    }
    e.u64(ledger.created);
    e.u64(ledger.delivered);
    e.u64(ledger.dropped);
    e.u64(ledger.retransmitted);
}

fn dec_ledger(d: &mut Dec<'_>) -> DecResult<RetxLedger> {
    let n = d.seq_len(1)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(match d.u8()? {
            0 => None,
            1 => Some(Transfer {
                seq: d.u64()?,
                src: d.u32()?,
                dst: PnId(d.u32()?),
                msg: d.u32()?,
                sends: d.u32()?,
                ever_sent: d.bool()?,
                live_copies: d.u32()?,
                state: match d.u8()? {
                    0 => XferState::InFlight,
                    1 => XferState::Delivered,
                    2 => XferState::Dropped(DropCause::RetryExhausted),
                    3 => XferState::Dropped(DropCause::Disconnected),
                    _ => return Err(SnapshotError::Corrupt("transfer-state tag out of range")),
                },
            }),
            _ => return Err(SnapshotError::Corrupt("transfer-slot tag out of range")),
        });
    }
    let nf = d.seq_len(4)?;
    let mut free = Vec::with_capacity(nf);
    for _ in 0..nf {
        free.push(d.u32()?);
    }
    let transfers =
        Slab::from_parts(slots, free).ok_or(SnapshotError::Corrupt("transfer slab free list"))?;
    let ne = d.seq_len(24)?;
    let mut timeouts = BinaryHeap::with_capacity(ne);
    for _ in 0..ne {
        timeouts.push(std::cmp::Reverse((d.u64()?, d.u32()?, d.u64()?, d.u32()?)));
    }
    Ok(RetxLedger {
        transfers,
        timeouts,
        created: d.u64()?,
        delivered: d.u64()?,
        dropped: d.u64()?,
        retransmitted: d.u64()?,
    })
}

fn enc_fault_change(e: &mut Enc, c: FaultChange) {
    match c {
        FaultChange::LinkDown(l) => {
            e.u8(0);
            e.u32(l.0);
        }
        FaultChange::LinkUp(l) => {
            e.u8(1);
            e.u32(l.0);
        }
        FaultChange::SwitchDown(n) => {
            e.u8(2);
            e.u8(n.level);
            e.u32(n.rank);
        }
        FaultChange::SwitchUp(n) => {
            e.u8(3);
            e.u8(n.level);
            e.u32(n.rank);
        }
    }
}

fn dec_fault_change(d: &mut Dec<'_>) -> DecResult<FaultChange> {
    Ok(match d.u8()? {
        0 => FaultChange::LinkDown(DirectedLinkId(d.u32()?)),
        1 => FaultChange::LinkUp(DirectedLinkId(d.u32()?)),
        2 => FaultChange::SwitchDown(NodeId {
            level: d.u8()?,
            rank: d.u32()?,
        }),
        3 => FaultChange::SwitchUp(NodeId {
            level: d.u8()?,
            rank: d.u32()?,
        }),
        _ => return Err(SnapshotError::Corrupt("fault-change tag out of range")),
    })
}

fn enc_routing<R: Router>(e: &mut Enc, routing: &RoutingView<R>) {
    match routing.timeline_parts() {
        None => e.u8(0),
        Some((events, cursor, lag, pending, reconv)) => {
            e.u8(1);
            e.seq_len(events.len());
            for ev in events {
                e.u64(ev.at);
                enc_fault_change(e, ev.change);
            }
            e.u64(cursor as u64);
            e.u64(lag);
            e.seq_len(pending.len());
            for b in pending {
                e.u64(b.event_at);
                e.u64(b.apply_at);
                e.seq_len(b.changes.len());
                for &c in &b.changes {
                    enc_fault_change(e, c);
                }
            }
            e.u64(reconv.0);
            e.u64(reconv.1);
            e.u64(reconv.2);
            let (keys, stats) = routing.engine_cache_parts();
            e.seq_len(keys.len());
            for k in keys {
                e.u64(k);
            }
            e.u64(stats.hits);
            e.u64(stats.misses);
            e.u64(stats.invalidated);
        }
    }
}

fn dec_routing<R: Router>(
    d: &mut Dec<'_>,
    topo: &Topology,
    router: R,
) -> DecResult<RoutingView<R>> {
    match d.u8()? {
        0 => Ok(RoutingView::plain(router)),
        1 => {
            let n = d.seq_len(13)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(FaultEvent {
                    at: d.u64()?,
                    change: dec_fault_change(d)?,
                });
            }
            let cursor = d.u64()? as usize;
            let lag = d.u64()?;
            let nb = d.seq_len(24)?;
            let mut pending = VecDeque::with_capacity(nb);
            for _ in 0..nb {
                let event_at = d.u64()?;
                let apply_at = d.u64()?;
                let nc = d.seq_len(5)?;
                let mut changes = Vec::with_capacity(nc);
                for _ in 0..nc {
                    changes.push(dec_fault_change(d)?);
                }
                pending.push_back(ViewBatch {
                    event_at,
                    apply_at,
                    changes,
                });
            }
            let reconv = (d.u64()?, d.u64()?, d.u64()?);
            let nk = d.seq_len(8)?;
            let mut keys = Vec::with_capacity(nk);
            for _ in 0..nk {
                keys.push(d.u64()?);
            }
            let stats = SelectionStats {
                hits: d.u64()?,
                misses: d.u64()?,
                invalidated: d.u64()?,
            };
            // The schedule was serialized in its already-sorted event
            // order; `scripted` sorts stably by cycle, so the round-trip
            // is the identity.
            let schedule = FaultSchedule::scripted(events);
            RoutingView::restore_scheduled(
                router, topo, schedule, cursor, lag, pending, reconv, &keys, stats,
            )
            .ok_or(SnapshotError::Corrupt("routing-view timeline inconsistent"))
        }
        _ => Err(SnapshotError::Corrupt("routing-view tag out of range")),
    }
}

// ---------------------------------------------------------------------
// FlitSim entry points
// ---------------------------------------------------------------------

impl<R: Router> FlitSim<R> {
    /// Serialize the complete simulator state into a versioned,
    /// checksummed byte stream. Taken between cycles (never mid-step),
    /// the snapshot is *crash-consistent*: restoring it and running to
    /// any horizon produces byte-identical statistics, ledgers and
    /// emitted JSON to the uninterrupted run.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::default();
        // Topology spec (the topology itself is rebuilt on restore).
        let spec = self.topo.spec();
        e.seq_len(spec.m().len());
        for &m in spec.m() {
            e.u32(m);
        }
        e.seq_len(spec.w().len());
        for &w in spec.w() {
            e.u32(w);
        }
        enc_config(&mut e, &self.cfg);
        enc_traffic(&mut e, &self.traffic);
        e.u8(match self.fault_policy {
            FaultPolicy::Drop => 0,
            FaultPolicy::Block => 1,
        });
        match self.retx {
            None => e.u8(0),
            Some(r) => {
                e.u8(1);
                e.u64(r.timeout);
                e.u32(r.max_retries);
            }
        }
        e.u64(self.now);
        e.u64(self.last_progress);
        e.bool(self.progress);
        e.u64(self.total_injected);
        e.u64(self.total_delivered);
        e.u64(self.total_dropped);
        e.u64(self.total_duplicate);
        e.u64(self.w_injected);
        e.u64(self.w_delivered);
        e.u64(self.w_dropped);
        e.u64(self.w_duplicate);
        e.u64(self.w_disconnected);
        e.u64(self.w_created_messages);
        e.u64(self.w_completed_messages);
        e.f64(self.w_sum_delay);
        e.u64(self.w_max_delay);
        e.seq_len(self.w_delays.len());
        for &dl in &self.w_delays {
            e.u64(dl);
        }
        e.seq_len(self.link_busy.len());
        for &b in &self.link_busy {
            e.u64(b);
        }
        e.seq_len(self.failed_out.len());
        for &f in &self.failed_out {
            e.bool(f);
        }
        e.seq_len(self.discarding.len());
        for &v in &self.discarding {
            e.opt_u32(v);
        }
        e.seq_len(self.link_mid_packet.len());
        for &v in &self.link_mid_packet {
            e.opt_u32(v);
        }
        enc_packet_slab(&mut e, &self.packets);
        enc_message_slab(&mut e, &self.messages);
        enc_sources(&mut e, &self.sources);
        enc_arbiter(&mut e, &self.arb);
        enc_ledger(&mut e, &self.ledger);
        enc_routing(&mut e, &self.routing);

        let payload = e.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Restore a simulator from [`FlitSim::snapshot`] bytes. The caller
    /// supplies the router (routers are pure functions of the topology
    /// and are not serialized); everything else — including RNG stream
    /// positions, slab free lists and the lagged routing view — resumes
    /// exactly where the snapshot left it.
    ///
    /// Magic, version, length and checksum are verified *before* any
    /// payload decoding; every failure is a typed [`SnapshotError`].
    pub fn restore(router: R, bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::TooShort);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = bytes[8..12]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| SnapshotError::TooShort)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let declared_len = bytes[12..20]
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SnapshotError::TooShort)?;
        let declared_sum = bytes[20..28]
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SnapshotError::TooShort)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != declared_len {
            return Err(SnapshotError::LengthMismatch {
                declared: declared_len,
                actual: payload.len() as u64,
            });
        }
        let actual_sum = fnv1a64(payload);
        if actual_sum != declared_sum {
            return Err(SnapshotError::ChecksumMismatch {
                declared: declared_sum,
                actual: actual_sum,
            });
        }

        let mut d = Dec::new(payload);
        let nm = d.seq_len(4)?;
        let mut m = Vec::with_capacity(nm);
        for _ in 0..nm {
            m.push(d.u32()?);
        }
        let nw = d.seq_len(4)?;
        let mut w = Vec::with_capacity(nw);
        for _ in 0..nw {
            w.push(d.u32()?);
        }
        let spec =
            XgftSpec::new(&m, &w).map_err(|_| SnapshotError::Corrupt("invalid topology spec"))?;
        let topo = Topology::new(spec);
        let graph = PortGraph::new(&topo);
        let ports = graph.num_ports() as usize;

        let cfg = dec_config(&mut d)?;
        let traffic = dec_traffic(&mut d)?;
        let fault_policy = match d.u8()? {
            0 => FaultPolicy::Drop,
            1 => FaultPolicy::Block,
            _ => return Err(SnapshotError::Corrupt("fault-policy tag out of range")),
        };
        let retx = match d.u8()? {
            0 => None,
            1 => Some(RetxConfig {
                timeout: d.u64()?,
                max_retries: d.u32()?,
            }),
            _ => return Err(SnapshotError::Corrupt("retx tag out of range")),
        };
        let now = d.u64()?;
        let last_progress = d.u64()?;
        let progress = d.bool()?;
        let total_injected = d.u64()?;
        let total_delivered = d.u64()?;
        let total_dropped = d.u64()?;
        let total_duplicate = d.u64()?;
        let w_injected = d.u64()?;
        let w_delivered = d.u64()?;
        let w_dropped = d.u64()?;
        let w_duplicate = d.u64()?;
        let w_disconnected = d.u64()?;
        let w_created_messages = d.u64()?;
        let w_completed_messages = d.u64()?;
        let w_sum_delay = d.f64()?;
        let w_max_delay = d.u64()?;
        let nd = d.seq_len(8)?;
        let mut w_delays = Vec::with_capacity(nd);
        for _ in 0..nd {
            w_delays.push(d.u64()?);
        }
        let nb = d.seq_len(8)?;
        let mut link_busy = Vec::with_capacity(nb);
        for _ in 0..nb {
            link_busy.push(d.u64()?);
        }
        let nf = d.seq_len(1)?;
        let mut failed_out = Vec::with_capacity(nf);
        for _ in 0..nf {
            failed_out.push(d.bool()?);
        }
        let ndc = d.seq_len(1)?;
        let mut discarding = Vec::with_capacity(ndc);
        for _ in 0..ndc {
            discarding.push(d.opt_u32()?);
        }
        let nmp = d.seq_len(1)?;
        let mut link_mid_packet = Vec::with_capacity(nmp);
        for _ in 0..nmp {
            link_mid_packet.push(d.opt_u32()?);
        }
        let packets = dec_packet_slab(&mut d)?;
        let messages = dec_message_slab(&mut d)?;
        let sources = dec_sources(&mut d)?;
        let arb = dec_arbiter(&mut d)?;
        let ledger = dec_ledger(&mut d)?;
        let routing = dec_routing(&mut d, &topo, router)?;
        d.finish()?;

        // Cross-check the port-indexed vectors against the rebuilt
        // graph; a mismatch means the payload, though checksum-clean,
        // does not describe this topology.
        if failed_out.len() != ports
            || discarding.len() != ports
            || link_mid_packet.len() != ports
            || link_busy.len() != ports
            || arb.in_buf.len() != ports
            || arb.out_buf.len() != ports
            || arb.credits.len() != ports
            || arb.grant.len() != ports
            || arb.rr_ptr.len() != ports
            || sources.len() != graph.num_pns() as usize
        {
            return Err(SnapshotError::Corrupt(
                "port-indexed state does not match the topology",
            ));
        }

        Ok(FlitSim {
            topo,
            cfg,
            traffic,
            graph,
            now,
            arb,
            packets,
            messages,
            sources,
            path_buf: Vec::new(),
            failed_out,
            fault_policy,
            discarding,
            link_mid_packet,
            routing,
            retx,
            ledger,
            last_progress,
            progress,
            total_injected,
            total_delivered,
            total_dropped,
            total_duplicate,
            w_injected,
            w_delivered,
            w_dropped,
            w_duplicate,
            w_disconnected,
            w_created_messages,
            w_completed_messages,
            w_sum_delay,
            w_max_delay,
            w_delays,
            link_busy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn header_rejections_are_typed() {
        assert_eq!(
            FlitSim::restore(lmpr_core::DModK, &[]).err(),
            Some(SnapshotError::TooShort)
        );
        let mut junk = vec![0u8; HEADER_LEN + 4];
        junk[..8].copy_from_slice(b"NOTASNAP");
        assert_eq!(
            FlitSim::restore(lmpr_core::DModK, &junk).err(),
            Some(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn decoder_guards_lengths() {
        let mut e = Enc::default();
        e.seq_len(1_000_000);
        let mut d = Dec::new(&e.buf);
        assert_eq!(
            d.seq_len(8),
            Err(SnapshotError::Corrupt("sequence length exceeds payload"))
        );
        let mut d = Dec::new(&[2]);
        assert!(matches!(d.bool(), Err(SnapshotError::Corrupt(_))));
        let mut d = Dec::new(&[]);
        assert_eq!(d.u64(), Err(SnapshotError::Truncated));
    }
}
