//! Workload selection for the flit simulator.
//!
//! The paper's flit-level experiments use uniform random traffic only;
//! permutation and hotspot modes are provided so flit-level results can
//! be cross-validated against the flow-level analysis (a permutation
//! with flow-level maximum link load `L` saturates near `1/L` of
//! injection bandwidth at the flit level).

use rand::rngs::SmallRng;
use rand::Rng;

/// How sources pick message destinations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficMode {
    /// Every message goes to a uniformly random other node (the paper's
    /// §5 flit workload).
    Uniform,
    /// Node `i` always sends to `perm[i]`; self-mapped nodes stay
    /// silent (matches the flow-level permutation semantics).
    Permutation(Vec<u32>),
    /// With probability `fraction` a message targets a uniformly chosen
    /// hot node, otherwise a uniform other node.
    Hotspot {
        /// The hot destinations.
        hot: Vec<u32>,
        /// Fraction of traffic redirected to the hot set.
        fraction: f64,
    },
}

impl TrafficMode {
    /// Validate against a node count.
    ///
    /// # Panics
    ///
    /// Panics on malformed permutations, out-of-range hot nodes or a
    /// fraction outside `[0, 1]`.
    pub fn validate(&self, n: u32) {
        match self {
            TrafficMode::Uniform => {}
            TrafficMode::Permutation(p) => {
                assert_eq!(p.len() as u32, n, "permutation length must equal node count");
                let mut seen = vec![false; n as usize];
                for &d in p {
                    assert!(d < n, "permutation target out of range");
                    assert!(!std::mem::replace(&mut seen[d as usize], true), "not a bijection");
                }
            }
            TrafficMode::Hotspot { hot, fraction } => {
                assert!(!hot.is_empty(), "hotspot needs at least one hot node");
                assert!(hot.iter().all(|&h| h < n), "hot node out of range");
                assert!((0.0..=1.0).contains(fraction), "fraction must be in [0, 1]");
            }
        }
    }

    /// Destination for the next message from `src`, or `None` when this
    /// source does not send (self-mapped permutation entry).
    pub fn pick(&self, src: u32, n: u32, rng: &mut SmallRng) -> Option<u32> {
        match self {
            TrafficMode::Uniform => Some(uniform_other(src, n, rng)),
            TrafficMode::Permutation(p) => {
                let d = p[src as usize];
                (d != src).then_some(d)
            }
            TrafficMode::Hotspot { hot, fraction } => {
                if rng.gen::<f64>() < *fraction {
                    let h = hot[rng.gen_range(0..hot.len())];
                    if h != src {
                        return Some(h);
                    }
                }
                Some(uniform_other(src, n, rng))
            }
        }
    }
}

fn uniform_other(src: u32, n: u32, rng: &mut SmallRng) -> u32 {
    let d = rng.gen_range(0..n - 1);
    if d >= src {
        d + 1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self() {
        let mut r = rng();
        for _ in 0..200 {
            let d = TrafficMode::Uniform.pick(3, 8, &mut r).unwrap();
            assert_ne!(d, 3);
            assert!(d < 8);
        }
    }

    #[test]
    fn permutation_is_fixed_and_silent_on_self() {
        let mode = TrafficMode::Permutation(vec![1, 0, 2, 3]);
        mode.validate(4);
        let mut r = rng();
        assert_eq!(mode.pick(0, 4, &mut r), Some(1));
        assert_eq!(mode.pick(1, 4, &mut r), Some(0));
        assert_eq!(mode.pick(2, 4, &mut r), None);
    }

    #[test]
    fn hotspot_biases_toward_hot_nodes() {
        let mode = TrafficMode::Hotspot { hot: vec![0], fraction: 0.8 };
        mode.validate(16);
        let mut r = rng();
        let hits = (0..1000)
            .filter(|_| mode.pick(5, 16, &mut r).unwrap() == 0)
            .count();
        assert!(hits > 600, "expected ~80% hot hits, got {hits}");
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn invalid_permutation_rejected() {
        TrafficMode::Permutation(vec![0, 0, 1]).validate(3);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_length_rejected() {
        TrafficMode::Permutation(vec![0, 1]).validate(3);
    }
}
