//! Workload selection for the flit simulator.
//!
//! The paper's flit-level experiments use uniform random traffic only;
//! permutation and hotspot modes are provided so flit-level results can
//! be cross-validated against the flow-level analysis (a permutation
//! with flow-level maximum link load `L` saturates near `1/L` of
//! injection bandwidth at the flit level).

use crate::error::TrafficError;
use rand::rngs::SmallRng;
use rand::Rng;

/// How sources pick message destinations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficMode {
    /// Every message goes to a uniformly random other node (the paper's
    /// §5 flit workload).
    Uniform,
    /// Node `i` always sends to `perm[i]`; self-mapped nodes stay
    /// silent (matches the flow-level permutation semantics).
    Permutation(Vec<u32>),
    /// With probability `fraction` a message targets a uniformly chosen
    /// hot node, otherwise a uniform other node.
    Hotspot {
        /// The hot destinations.
        hot: Vec<u32>,
        /// Fraction of traffic redirected to the hot set.
        fraction: f64,
    },
}

impl TrafficMode {
    /// Validate against a node count: malformed permutations,
    /// out-of-range hot nodes and a fraction outside `[0, 1]` are
    /// rejected with a typed error.
    pub fn validate(&self, n: u32) -> Result<(), TrafficError> {
        match self {
            TrafficMode::Uniform => {}
            TrafficMode::Permutation(p) => {
                if p.len() as u32 != n {
                    return Err(TrafficError::PermutationLength {
                        expected: n,
                        got: p.len(),
                    });
                }
                let mut seen = vec![false; n as usize];
                for &d in p {
                    if d >= n {
                        return Err(TrafficError::TargetOutOfRange {
                            target: d,
                            nodes: n,
                        });
                    }
                    if std::mem::replace(&mut seen[d as usize], true) {
                        return Err(TrafficError::NotABijection { duplicate: d });
                    }
                }
            }
            TrafficMode::Hotspot { hot, fraction } => {
                if hot.is_empty() {
                    return Err(TrafficError::EmptyHotSet);
                }
                if let Some(&h) = hot.iter().find(|&&h| h >= n) {
                    return Err(TrafficError::HotNodeOutOfRange { node: h, nodes: n });
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err(TrafficError::BadFraction(*fraction));
                }
            }
        }
        Ok(())
    }

    /// Destination for the next message from `src`, or `None` when this
    /// source does not send (self-mapped permutation entry).
    pub fn pick(&self, src: u32, n: u32, rng: &mut SmallRng) -> Option<u32> {
        match self {
            TrafficMode::Uniform => Some(uniform_other(src, n, rng)),
            TrafficMode::Permutation(p) => {
                let d = p[src as usize];
                (d != src).then_some(d)
            }
            TrafficMode::Hotspot { hot, fraction } => {
                if rng.gen::<f64>() < *fraction {
                    let h = hot[rng.gen_range(0..hot.len())];
                    if h != src {
                        return Some(h);
                    }
                }
                Some(uniform_other(src, n, rng))
            }
        }
    }
}

fn uniform_other(src: u32, n: u32, rng: &mut SmallRng) -> u32 {
    let d = rng.gen_range(0..n - 1);
    if d >= src {
        d + 1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self() {
        let mut r = rng();
        for _ in 0..200 {
            let d = TrafficMode::Uniform.pick(3, 8, &mut r).unwrap();
            assert_ne!(d, 3);
            assert!(d < 8);
        }
    }

    #[test]
    fn permutation_is_fixed_and_silent_on_self() {
        let mode = TrafficMode::Permutation(vec![1, 0, 2, 3]);
        assert_eq!(mode.validate(4), Ok(()));
        let mut r = rng();
        assert_eq!(mode.pick(0, 4, &mut r), Some(1));
        assert_eq!(mode.pick(1, 4, &mut r), Some(0));
        assert_eq!(mode.pick(2, 4, &mut r), None);
    }

    #[test]
    fn hotspot_biases_toward_hot_nodes() {
        let mode = TrafficMode::Hotspot {
            hot: vec![0],
            fraction: 0.8,
        };
        assert_eq!(mode.validate(16), Ok(()));
        let mut r = rng();
        let hits = (0..1000)
            .filter(|_| mode.pick(5, 16, &mut r).unwrap() == 0)
            .count();
        assert!(hits > 600, "expected ~80% hot hits, got {hits}");
    }

    #[test]
    fn invalid_permutation_rejected() {
        let err = TrafficMode::Permutation(vec![0, 0, 1])
            .validate(3)
            .unwrap_err();
        assert_eq!(err, TrafficError::NotABijection { duplicate: 0 });
        assert!(err.to_string().contains("bijection"));
    }

    #[test]
    fn wrong_length_rejected() {
        let err = TrafficMode::Permutation(vec![0, 1])
            .validate(3)
            .unwrap_err();
        assert_eq!(
            err,
            TrafficError::PermutationLength {
                expected: 3,
                got: 2
            }
        );
        assert!(err.to_string().contains("length"));
    }

    #[test]
    fn hotspot_errors_are_typed() {
        let e = TrafficMode::Hotspot {
            hot: vec![],
            fraction: 0.5,
        }
        .validate(4);
        assert_eq!(e, Err(TrafficError::EmptyHotSet));
        let e = TrafficMode::Hotspot {
            hot: vec![9],
            fraction: 0.5,
        }
        .validate(4);
        assert_eq!(
            e,
            Err(TrafficError::HotNodeOutOfRange { node: 9, nodes: 4 })
        );
        let e = TrafficMode::Hotspot {
            hot: vec![1],
            fraction: 1.5,
        }
        .validate(4);
        assert_eq!(e, Err(TrafficError::BadFraction(1.5)));
    }
}
