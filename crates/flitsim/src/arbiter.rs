//! Per-port switching state: buffers, credits, grants and round-robin
//! pointers — the arbitration half of the VCT switch model.
//!
//! The [`Arbiter`] owns everything indexed by port gid that the
//! crossbar and link stages contend over. Pulling it out of the
//! simulator struct gives the cycle stages one narrow seam for buffer
//! state and gives the monitors ([`Arbiter::flits_in_network`],
//! [`Arbiter::blocked_ports`]) their occupancy answers without
//! reaching into stage internals.

use crate::network::PortGraph;
use crate::packet::Flit;
use std::collections::VecDeque;

/// Buffer, credit and arbitration state of every port in the network.
pub(crate) struct Arbiter {
    /// Input buffers, organized as virtual output queues (VOQs): one
    /// FIFO per local output port of the owning node, all sharing the
    /// port's credit-managed capacity. Packets arrive contiguously per
    /// link (upstream outputs are packet-atomic) and each packet lands
    /// wholly in one VOQ, so packets stay contiguous per queue while
    /// head-of-line blocking across outputs disappears — matching
    /// shared-memory InfiniBand-style switches.
    pub(crate) in_buf: Vec<Vec<VecDeque<Flit>>>,
    /// Output staging buffers.
    pub(crate) out_buf: Vec<VecDeque<Flit>>,
    /// Free flit slots in the downstream input buffer of each output.
    pub(crate) credits: Vec<u32>,
    /// Packet-atomic output reservation: `(input port gid, packet key)`.
    pub(crate) grant: Vec<Option<(u32, u32)>>,
    /// Round-robin arbitration pointer per output port (local input
    /// index to scan first).
    pub(crate) rr_ptr: Vec<u32>,
}

impl Arbiter {
    /// Empty buffers with full credit, sized to the port graph: one VOQ
    /// per local output of the owning node (PNs eject through a single
    /// queue).
    pub(crate) fn new(graph: &PortGraph, buffer_flits: u32) -> Self {
        let ports = graph.num_ports() as usize;
        let in_buf = (0..ports as u32)
            .map(|p| {
                let owner = graph.port_owner(p);
                let voqs = if graph.is_pn(owner) {
                    1
                } else {
                    (graph.ports_of(owner).len()).max(1)
                };
                vec![VecDeque::new(); voqs]
            })
            .collect();
        Arbiter {
            in_buf,
            out_buf: vec![VecDeque::new(); ports],
            credits: vec![buffer_flits; ports],
            grant: vec![None; ports],
            rr_ptr: vec![0; ports],
        }
    }

    /// Flits currently occupying any input or output buffer.
    pub(crate) fn flits_in_network(&self) -> u64 {
        let inputs: usize = self
            .in_buf
            .iter()
            .map(|voqs| voqs.iter().map(VecDeque::len).sum::<usize>())
            .sum();
        let outputs: usize = self.out_buf.iter().map(VecDeque::len).sum();
        (inputs + outputs) as u64
    }

    /// Output ports holding at least one flit (the watchdog's blocked-
    /// port count).
    pub(crate) fn blocked_ports(&self) -> usize {
        self.out_buf.iter().filter(|b| !b.is_empty()).count()
    }
}
