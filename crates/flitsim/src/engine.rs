//! The cycle stages: fault-timeline advance, delivery timeouts,
//! ejection, crossbar traversal, link transfer and source injection —
//! the event wheel one [`FlitSim::step`] spin drives, in that order.
//!
//! Each stage is a method on [`FlitSim`]; the control loop itself
//! (run/step/stats) lives in [`sim`](crate::sim), buffer state in
//! [`arbiter`](crate::arbiter), path selection in
//! [`routing_view`](crate::routing_view), and the invariant monitors in
//! [`monitor`](crate::monitor).

use crate::inject::StreamingPacket;
use crate::packet::{Flit, Message, Packet, NO_XFER};
use crate::resilience::{backoff_deadline, DropCause, Transfer, XferState};
use crate::sim::FlitSim;
use crate::traffic_mode::TrafficMode;
use crate::util::{ix, route_port, small_u32};
use lmpr_core::Router;
use std::cmp::Reverse;
use xgft::PnId;

use crate::config::{FaultPolicy, RetxConfig};

impl<R: Router> FlitSim<R> {
    // ------------------------------------------------------------------
    // Stage 0a: fault timeline — physical events now, view events after
    // the detection + reconvergence lag.
    // ------------------------------------------------------------------
    pub(crate) fn advance_faults(&mut self) {
        self.routing
            .advance(self.now, &self.topo, &self.graph, &mut self.failed_out);
    }

    // ------------------------------------------------------------------
    // Stage 0b: end-to-end delivery timeouts and retransmission.
    // ------------------------------------------------------------------
    pub(crate) fn process_timeouts(&mut self) {
        let Some(rc) = self.retx else {
            return;
        };
        loop {
            let due = match self.ledger.timeouts.peek() {
                Some(&Reverse((deadline, xfer, seq, sends))) if deadline <= self.now => {
                    (xfer, seq, sends)
                }
                _ => break,
            };
            self.ledger.timeouts.pop();
            self.handle_timeout(due.0, due.1, due.2, rc);
        }
    }

    fn handle_timeout(&mut self, xfer: u32, seq: u64, sends: u32, rc: RetxConfig) {
        let info = self
            .ledger
            .transfers
            .get(xfer)
            .map(|t| (t.seq, t.state, t.sends, t.ever_sent));
        // Reaped or slot reused by a different transfer: stale.
        let Some((cur_seq, state, cur_sends, ever_sent)) = info else {
            return;
        };
        // Resolved, superseded by a newer attempt, or a slot-reuse
        // collision (the armed transfer was reaped and an unrelated one
        // now lives at this key): stale either way.
        if cur_seq != seq || state != XferState::InFlight || cur_sends != sends {
            return;
        }
        if cur_sends > rc.max_retries {
            // The cap of 1 + max_retries total attempts is exhausted.
            let cause = if ever_sent {
                DropCause::RetryExhausted
            } else {
                DropCause::Disconnected
            };
            if let Some(t) = self.ledger.transfers.get_mut(xfer) {
                t.state = XferState::Dropped(cause);
            }
            self.ledger.dropped += 1;
            self.ledger.maybe_reap(xfer);
            return;
        }
        self.retransmit(xfer);
    }

    fn retransmit(&mut self, xfer: u32) {
        let Some((src, dst, msg)) = self
            .ledger
            .transfers
            .get(xfer)
            .map(|t| (t.src, t.dst, t.msg))
        else {
            return;
        };
        self.ensure_routes(PnId(src), dst);
        let paths = std::mem::take(&mut self.path_buf);
        let sends = {
            let bumped = self.ledger.transfers.get_mut(xfer).map(|t| {
                t.sends += 1;
                t.sends
            });
            let Some(sends) = bumped else {
                self.path_buf = paths;
                return;
            };
            sends
        };
        if paths.is_empty() {
            // Still disconnected in the routing view: the attempt is
            // burned (the backoff clock keeps ticking) and the next
            // timeout re-examines the — possibly reconverged — view.
            self.arm_timeout(xfer, sends);
            self.path_buf = paths;
            return;
        }
        let choice = self.sources[ix(src)].pick_message_path(paths.len());
        let route: Box<[u16]> = self
            .topo
            .path_output_ports(PnId(src), dst, paths[choice])
            .into_iter()
            .map(route_port)
            .collect();
        if route.is_empty() {
            debug_assert!(false, "a transfer can never be a self-pair");
            self.arm_timeout(xfer, sends);
            self.path_buf = paths;
            return;
        }
        let first_port = usize::from(route[0]);
        let pkt = self.packets.insert(Packet {
            msg,
            len: self.cfg.packet_flits,
            route,
            dst,
            xfer,
        });
        if let Some(t) = self.ledger.transfers.get_mut(xfer) {
            if t.ever_sent {
                self.ledger.retransmitted += 1;
            }
            t.ever_sent = true;
            t.live_copies += 1;
        }
        self.sources[ix(src)].queues[first_port].push_back(StreamingPacket { pkt, next_seq: 0 });
        self.arm_timeout(xfer, sends);
        self.path_buf = paths;
    }

    /// Create a transfer record for one reliable packet. `queued` marks
    /// whether a first copy is being queued right now.
    fn new_transfer(&mut self, src: u32, dst: PnId, msg: u32, queued: bool) -> u32 {
        debug_assert!(
            self.retx.is_some(),
            "transfers exist only under a resilience config"
        );
        self.ledger.created += 1;
        self.ledger.transfers.insert(Transfer {
            seq: self.ledger.created,
            src,
            dst,
            msg,
            sends: 1,
            ever_sent: queued,
            live_copies: u32::from(queued),
            state: XferState::InFlight,
        })
    }

    fn arm_timeout(&mut self, xfer: u32, sends: u32) {
        let Some(rc) = self.retx else {
            return;
        };
        let Some(seq) = self.ledger.transfers.get(xfer).map(|t| t.seq) else {
            return;
        };
        self.ledger.timeouts.push(Reverse((
            backoff_deadline(self.now, rc.timeout, sends),
            xfer,
            seq,
            sends,
        )));
    }

    /// Fill `self.path_buf` with the selection for the pair, delegated
    /// to the shared [`SelectionEngine`](lmpr_core::SelectionEngine)
    /// behind the routing view: under a dynamic timeline the cached
    /// surviving selection computed against the (lagged) view, otherwise
    /// the router's plain selection.
    fn ensure_routes(&mut self, s: PnId, d: PnId) {
        let mut paths = std::mem::take(&mut self.path_buf);
        self.routing.select(&self.topo, s, d, &mut paths);
        self.path_buf = paths;
    }

    // ------------------------------------------------------------------
    // Stage 1: ejection at processing nodes.
    // ------------------------------------------------------------------
    pub(crate) fn eject(&mut self) {
        for pn in 0..self.graph.num_pns() {
            for port in self.graph.ports_of(pn) {
                let Some(&f) = self.arb.in_buf[ix(port)][0].front() else {
                    continue;
                };
                if f.entered >= self.now {
                    continue; // arrived this cycle; consumable next cycle
                }
                self.arb.in_buf[ix(port)][0].pop_front();
                self.arb.credits[ix(self.graph.peer(port))] += 1;
                self.deliver(pn, f);
            }
        }
    }

    fn deliver(&mut self, pn: u32, f: Flit) {
        let Some(pkt) = self.packets.get(f.pkt) else {
            debug_assert!(false, "ejected flit references a vacant packet record");
            return;
        };
        debug_assert_eq!(pkt.dst, PnId(pn), "flit ejected at the wrong PN");
        debug_assert_eq!(
            usize::from(f.hop),
            pkt.route.len(),
            "flit ejected mid-route"
        );
        let (msg_key, is_tail, len, xfer) = (pkt.msg, pkt.is_tail(f.seq), pkt.len, pkt.xfer);
        self.progress = true;
        if xfer != NO_XFER {
            self.deliver_reliable(f, msg_key, is_tail, len, xfer);
            return;
        }
        self.total_delivered += 1;
        if self.in_window() {
            self.w_delivered += 1;
        }
        if is_tail {
            self.packets.remove(f.pkt);
        }
        let Some(msg) = self.messages.get_mut(msg_key) else {
            debug_assert!(false, "delivered flit references a vacant message record");
            return;
        };
        msg.remaining_flits = msg.remaining_flits.saturating_sub(1);
        if msg.remaining_flits == 0 {
            self.complete_message(msg_key);
        }
    }

    /// Sink-side duplicate suppression: the first copy whose flits
    /// arrive while the transfer is unresolved counts as delivered; its
    /// tail resolves the transfer and advances the message. Copies of an
    /// already-resolved transfer (delivered by a sibling, or dropped
    /// because the source gave up) count as duplicates flit by flit.
    fn deliver_reliable(&mut self, f: Flit, msg_key: u32, is_tail: bool, len: u16, xfer: u32) {
        let state = self.ledger.transfers.get(xfer).map(|t| t.state);
        debug_assert!(state.is_some(), "live copy of a reaped transfer");
        let first_copy = state == Some(XferState::InFlight);
        if first_copy {
            self.total_delivered += 1;
            if self.in_window() {
                self.w_delivered += 1;
            }
        } else {
            self.total_duplicate += 1;
            if self.in_window() {
                self.w_duplicate += 1;
            }
        }
        if !is_tail {
            return;
        }
        self.packets.remove(f.pkt);
        if let Some(t) = self.ledger.transfers.get_mut(xfer) {
            t.live_copies = t.live_copies.saturating_sub(1);
            if first_copy {
                t.state = XferState::Delivered;
            }
        }
        if first_copy {
            self.ledger.delivered += 1;
        }
        self.ledger.maybe_reap(xfer);
        if first_copy {
            let Some(msg) = self.messages.get_mut(msg_key) else {
                debug_assert!(false, "transfer references a vacant message record");
                return;
            };
            msg.remaining_flits = msg.remaining_flits.saturating_sub(u32::from(len));
            if msg.remaining_flits == 0 {
                self.complete_message(msg_key);
            }
        }
    }

    fn complete_message(&mut self, msg_key: u32) {
        let Some(msg) = self.messages.remove(msg_key) else {
            return;
        };
        if msg.measured {
            let delay = self.now.saturating_sub(msg.created);
            self.w_completed_messages += 1;
            self.w_sum_delay += delay as f64;
            self.w_max_delay = self.w_max_delay.max(delay);
            self.w_delays.push(delay);
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: crossbar traversal at switches (input → output buffers).
    // ------------------------------------------------------------------
    pub(crate) fn crossbar(&mut self) {
        let cap = ix(self.cfg.buffer_flits());
        for node in self.graph.num_pns()..self.graph.num_nodes() {
            let ports = self.graph.ports_of(node);
            let n_ports = ix(ports.end - ports.start);
            for out in ports.clone() {
                let out_local = ix(out - ports.start);
                if let Some((in_gid, pkt_key)) = self.arb.grant[ix(out)] {
                    // A packet holds this output until its tail passes.
                    let Some(&f) = self.arb.in_buf[ix(in_gid)][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert_eq!(
                        f.pkt, pkt_key,
                        "foreign packet at VOQ head while output is granted"
                    );
                    if self.arb.out_buf[ix(out)].len() == cap {
                        continue; // output staging full; packet waits at the input
                    }
                    self.move_through_crossbar(in_gid, out_local, out);
                    // A vacant record means the tail already passed some
                    // impossible way; releasing the grant keeps the port
                    // usable either way.
                    if self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq)) {
                        self.arb.grant[ix(out)] = None;
                    }
                    continue;
                }
                // No grant: round-robin over the node's inputs for a VOQ
                // head flit destined here.
                //
                // Note the whole-packet VCT reservation applies at the
                // *link* (downstream input buffer); within the switch a
                // blocked packet may straddle the input and output
                // buffers, as in real combined-queue VCT switches.
                if self.arb.out_buf[ix(out)].len() == cap {
                    continue;
                }
                let start = ix(self.arb.rr_ptr[ix(out)]);
                for k in 0..n_ports {
                    let local_in = (start + k) % n_ports;
                    let in_gid = ports.start + small_u32(local_in);
                    let Some(&f) = self.arb.in_buf[ix(in_gid)][out_local].front() else {
                        continue;
                    };
                    if f.entered >= self.now {
                        continue;
                    }
                    debug_assert!(f.is_head(), "VOQ head must be a packet head between grants");
                    let Some(pkt) = self.packets.get(f.pkt) else {
                        debug_assert!(false, "VOQ head references a vacant packet record");
                        continue;
                    };
                    let len = pkt.len;
                    debug_assert_eq!(
                        pkt.route.get(usize::from(f.hop)).map(|&p| usize::from(p)),
                        Some(out_local)
                    );
                    self.move_through_crossbar(in_gid, out_local, out);
                    if len > 1 {
                        self.arb.grant[ix(out)] = Some((in_gid, f.pkt));
                    }
                    self.arb.rr_ptr[ix(out)] = (small_u32(local_in) + 1) % small_u32(n_ports);
                    break;
                }
            }
        }
    }

    fn move_through_crossbar(&mut self, in_gid: u32, voq: usize, out_gid: u32) {
        let Some(mut f) = self.arb.in_buf[ix(in_gid)][voq].pop_front() else {
            debug_assert!(false, "VOQ head vanished between inspection and move");
            return;
        };
        self.arb.credits[ix(self.graph.peer(in_gid))] += 1;
        f.entered = self.now;
        self.arb.out_buf[ix(out_gid)].push_back(f);
        self.progress = true;
    }

    // ------------------------------------------------------------------
    // Stage 3: link transfer (output buffer → downstream input buffer).
    // ------------------------------------------------------------------
    pub(crate) fn link_transfer(&mut self) {
        for out in 0..self.graph.num_ports() {
            let o = ix(out);
            let Some(&f) = self.arb.out_buf[o].front() else {
                continue;
            };
            if f.entered >= self.now {
                continue;
            }
            // A packet truncated here earlier keeps draining here, even
            // if the cable has recovered since — downstream must never
            // see a headless packet.
            if self.discarding[o] == Some(f.pkt) {
                self.drop_front_flit(o);
                continue;
            }
            // Failure takes effect at packet granularity: a packet that
            // started crossing before the cable died completes.
            if self.failed_out[o] && self.link_mid_packet[o] != Some(f.pkt) {
                match self.fault_policy {
                    // A dead cable transfers nothing; traffic routed over
                    // it backs up until the link recovers (or the
                    // watchdog aborts the run).
                    FaultPolicy::Block => continue,
                    // Discard at the failure point. The rest of the
                    // packet drains via the `discarding` marker; no
                    // credit moves and nothing downstream ever sees the
                    // packet. The packet record is retired when its tail
                    // drops (a dropped *transfer* copy releases its pin
                    // on the transfer record there).
                    FaultPolicy::Drop => {
                        self.drop_front_flit(o);
                        continue;
                    }
                }
            }
            let need = if f.is_head() {
                self.packets.get(f.pkt).map_or(1, |p| u32::from(p.len))
            } else {
                debug_assert!(
                    self.arb.credits[o] >= 1,
                    "credit reservation violated for a body flit"
                );
                1
            };
            if self.arb.credits[o] < need {
                continue;
            }
            let Some(mut f) = self.arb.out_buf[o].pop_front() else {
                continue;
            };
            self.arb.credits[o] -= 1;
            self.progress = true;
            if self.in_window() {
                self.link_busy[o] += 1;
            }
            let is_tail = self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq));
            if is_tail {
                self.link_mid_packet[o] = None;
            } else if f.is_head() {
                self.link_mid_packet[o] = Some(f.pkt);
            }
            f.hop += 1;
            f.entered = self.now;
            let dst_in = self.graph.peer(out);
            let voq = self.voq_of(dst_in, &f);
            self.arb.in_buf[ix(dst_in)][voq].push_back(f);
        }
    }

    /// Discard the flit at the head of output `o`, maintaining the
    /// truncated-packet drain marker and the drop counters. When the
    /// tail goes, the packet record is retired.
    fn drop_front_flit(&mut self, o: usize) {
        let Some(f) = self.arb.out_buf[o].pop_front() else {
            return;
        };
        self.total_dropped += 1;
        if self.in_window() {
            self.w_dropped += 1;
        }
        self.progress = true;
        let is_tail = self.packets.get(f.pkt).is_none_or(|p| p.is_tail(f.seq));
        if is_tail {
            self.discarding[o] = None;
            self.retire_dropped_packet(f.pkt);
        } else {
            self.discarding[o] = Some(f.pkt);
        }
    }

    /// Remove a fully-discarded packet's record; if end-to-end
    /// reliability tracks it, release the copy's pin on the transfer so
    /// the retransmission machinery (not this drop) decides its fate.
    fn retire_dropped_packet(&mut self, pkt_key: u32) {
        let Some(pkt) = self.packets.remove(pkt_key) else {
            return;
        };
        if pkt.xfer == NO_XFER {
            return;
        }
        if let Some(t) = self.ledger.transfers.get_mut(pkt.xfer) {
            t.live_copies = t.live_copies.saturating_sub(1);
        }
        self.ledger.maybe_reap(pkt.xfer);
    }

    /// VOQ a flit arriving on input port `in_gid` must join: the local
    /// output it will leave through, or queue 0 at a processing node
    /// (ejection).
    fn voq_of(&self, in_gid: u32, f: &Flit) -> usize {
        let owner = self.graph.port_owner(in_gid);
        if self.graph.is_pn(owner) {
            debug_assert!(
                self.packets
                    .get(f.pkt)
                    .is_some_and(|p| usize::from(f.hop) == p.route.len()),
                "a flit reaching a PN must be at its final hop"
            );
            0
        } else {
            debug_assert!(
                self.packets
                    .get(f.pkt)
                    .is_some_and(|p| usize::from(f.hop) < p.route.len()),
                "a flit at a switch must have a next hop"
            );
            self.packets
                .get(f.pkt)
                .and_then(|p| p.route.get(usize::from(f.hop)))
                .map_or(0, |&p| usize::from(p))
        }
    }

    // ------------------------------------------------------------------
    // Stage 4: message creation and source injection.
    // ------------------------------------------------------------------
    pub(crate) fn inject(&mut self) {
        let rate = self.cfg.message_rate();
        let num_pns = self.graph.num_pns();
        for pn in 0..num_pns {
            while self.sources[ix(pn)].poll_arrival(self.now, rate) {
                self.create_message(pn);
            }
            self.stream_source_flits(pn);
        }
    }

    fn create_message(&mut self, pn: u32) {
        let src = PnId(pn);
        let traffic = std::mem::replace(&mut self.traffic, TrafficMode::Uniform);
        let picked = self.sources[ix(pn)].pick_destination_mode(&traffic, pn, self.graph.num_pns());
        self.traffic = traffic;
        let Some(dst) = picked else {
            return; // self-mapped permutation entry: this source is silent
        };
        let dst = PnId(dst);
        self.ensure_routes(src, dst);
        let paths = std::mem::take(&mut self.path_buf);
        let retx = self.retx;
        let measured = self.in_window();
        if paths.is_empty() {
            if measured {
                self.w_disconnected += 1;
            }
            if retx.is_none() {
                // No surviving route and no reliability: the message is
                // never materialized, only counted.
                self.path_buf = paths;
                return;
            }
            // Reliability keeps the bookkeeping alive: each packet
            // becomes a transfer that retries — and may succeed once the
            // view reconverges — or drops as Disconnected.
            if measured {
                self.w_created_messages += 1;
            }
            let msg = self.messages.insert(Message {
                created: self.now,
                remaining_flits: self.cfg.message_flits(),
                measured,
            });
            for _ in 0..self.cfg.packets_per_message {
                let xfer = self.new_transfer(pn, dst, msg, false);
                self.arm_timeout(xfer, 1);
            }
            self.path_buf = paths;
            return;
        }
        if measured {
            self.w_created_messages += 1;
        }
        let msg = self.messages.insert(Message {
            created: self.now,
            remaining_flits: self.cfg.message_flits(),
            measured,
        });
        let per_message_choice = self.sources[ix(pn)].pick_message_path(paths.len());
        for _ in 0..self.cfg.packets_per_message {
            let choice = self.sources[ix(pn)].pick_path(
                self.cfg.path_policy,
                paths.len(),
                per_message_choice,
            );
            let route: Box<[u16]> = self
                .topo
                .path_output_ports(src, dst, paths[choice])
                .into_iter()
                .map(route_port)
                .collect();
            debug_assert!(!route.is_empty(), "traffic modes never self-address");
            let xfer = if retx.is_some() {
                let x = self.new_transfer(pn, dst, msg, true);
                self.arm_timeout(x, 1);
                x
            } else {
                NO_XFER
            };
            let first_port = usize::from(route[0]);
            let pkt = self.packets.insert(Packet {
                msg,
                len: self.cfg.packet_flits,
                route,
                dst,
                xfer,
            });
            self.sources[ix(pn)].queues[first_port].push_back(StreamingPacket { pkt, next_seq: 0 });
        }
        self.path_buf = paths;
    }

    fn stream_source_flits(&mut self, pn: u32) {
        let cap = ix(self.cfg.buffer_flits());
        let n_ports = self.sources[ix(pn)].queues.len();
        for local in 0..n_ports {
            let Some(&sp) = self.sources[ix(pn)].queues[local].front() else {
                continue;
            };
            let Some(len) = self.packets.get(sp.pkt).map(|p| p.len) else {
                debug_assert!(false, "queued packet references a vacant record");
                self.sources[ix(pn)].queues[local].pop_front();
                continue;
            };
            let out = ix(self.graph.port_gid(pn, small_u32(local)));
            if cap == self.arb.out_buf[out].len() {
                continue; // NIC staging buffer full
            }
            self.arb.out_buf[out].push_back(Flit {
                pkt: sp.pkt,
                seq: sp.next_seq,
                hop: 0,
                entered: self.now,
            });
            self.total_injected += 1;
            self.progress = true;
            if self.in_window() {
                self.w_injected += 1;
            }
            let q = &mut self.sources[ix(pn)].queues[local];
            if let Some(head) = q.front_mut() {
                head.next_seq += 1;
                if head.next_seq == len {
                    q.pop_front();
                }
            }
        }
    }
}
