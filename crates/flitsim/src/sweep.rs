//! Offered-load sweeps across worker threads.
//!
//! Table 1 and Figure 5 both need one simulation per offered-load point;
//! the points are independent, so they fan out over threads. Results
//! come back over a channel and are re-ordered by load index, keeping
//! the output deterministic.

use crate::{FlitSim, LoadPoint, SimConfig};
use crossbeam::channel;
use lmpr_core::Router;
use xgft::Topology;

/// Run one simulation per entry of `loads` (each uses `cfg` with the
/// offered load replaced) and return the load points in input order.
///
/// `threads = 0` uses all available parallelism.
pub fn run_sweep<R>(topo: &Topology, router: &R, cfg: SimConfig, loads: &[f64], threads: usize) -> Vec<LoadPoint>
where
    R: Router + Clone,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .min(loads.len().max(1));

    if threads <= 1 {
        return loads
            .iter()
            .map(|&l| FlitSim::simulate(topo, router.clone(), cfg.with_load(l)).load_point())
            .collect();
    }

    let (work_tx, work_rx) = channel::unbounded::<(usize, f64)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, LoadPoint)>();
    for item in loads.iter().copied().enumerate() {
        work_tx.send(item).expect("queueing work cannot fail");
    }
    drop(work_tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let router = router.clone();
            scope.spawn(move || {
                while let Ok((i, load)) = work_rx.recv() {
                    let stats = FlitSim::simulate(topo, router.clone(), cfg.with_load(load));
                    res_tx
                        .send((i, stats.load_point()))
                        .expect("result channel outlives workers");
                }
            });
        }
        drop(res_tx);
        let mut out = vec![
            LoadPoint { offered: 0.0, throughput: 0.0, avg_delay: f64::NAN, completion_rate: 0.0 };
            loads.len()
        ];
        for (i, p) in res_rx.iter() {
            out[i] = p;
        }
        out
    })
}

/// A standard sweep grid: `step, 2·step, …` up to and including 1.0.
pub fn load_grid(step: f64) -> Vec<f64> {
    assert!(step > 0.0 && step <= 1.0);
    let n = (1.0 / step).round() as usize;
    (1..=n).map(|i| (i as f64 * step).min(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::saturation_throughput;
    use lmpr_core::DModK;
    use xgft::XgftSpec;

    #[test]
    fn grid_shapes() {
        let g = load_grid(0.25);
        assert_eq!(g, vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(load_grid(0.1).len(), 10);
    }

    #[test]
    #[should_panic]
    fn bad_grid_step() {
        let _ = load_grid(0.0);
    }

    #[test]
    fn sweep_is_deterministic_and_ordered() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let cfg = SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 3_000,
            ..SimConfig::default()
        };
        let loads = [0.2, 0.6];
        let serial = run_sweep(&topo, &DModK, cfg, &loads, 1);
        let parallel = run_sweep(&topo, &DModK, cfg, &loads, 2);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0].offered, 0.2);
        assert_eq!(serial[1].offered, 0.6);
        assert!(saturation_throughput(&serial) > 0.0);
    }
}
