//! Offered-load sweeps across worker threads.
//!
//! Table 1 and Figure 5 both need one simulation per offered-load point;
//! the points are independent, so they fan out over threads. Workers
//! pull load indices from a shared atomic counter and send results back
//! over a channel; results are re-ordered by load index, keeping the
//! output deterministic. A panicking worker is caught and reported as a
//! [`SweepError`] naming the failing load point instead of poisoning
//! the whole sweep.

use crate::error::SimError;
use crate::{FlitSim, LoadPoint, SimConfig};
use lmpr_core::Router;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use xgft::Topology;

/// Why a sweep failed, always naming the offending load point.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// One simulation returned a typed error (bad config or deadlock).
    Sim {
        /// The offered load of the failing point.
        load: f64,
        /// Index of the point within the sweep grid.
        index: usize,
        /// The underlying simulator error.
        source: SimError,
    },
    /// One worker panicked while simulating a load point.
    WorkerPanicked {
        /// The offered load of the failing point.
        load: f64,
        /// Index of the point within the sweep grid.
        index: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A load index produced no result (a worker died without
    /// reporting) — surfaced instead of silently emitting a NaN point.
    MissingResult {
        /// Index of the unfilled point.
        index: usize,
    },
    /// The opt-in pre-flight verification hook rejected the
    /// configuration before any cycle was simulated (see
    /// [`run_sweep_with_preflight`]).
    Preflight {
        /// The verifier's failure summary.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Sim {
                load,
                index,
                source,
            } => {
                write!(f, "sweep point {index} (load {load}) failed: {source}")
            }
            SweepError::WorkerPanicked {
                load,
                index,
                message,
            } => {
                write!(f, "sweep point {index} (load {load}) panicked: {message}")
            }
            SweepError::MissingResult { index } => {
                write!(f, "sweep point {index} produced no result")
            }
            SweepError::Preflight { message } => {
                write!(f, "pre-flight verification rejected the sweep: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Sim { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Outcome of one worker simulation, sent back over the result channel.
type PointResult = (usize, Result<LoadPoint, SweepError>);

/// Run one simulation per entry of `loads` (each uses `cfg` with the
/// offered load replaced) and return the load points in input order.
///
/// `threads = 0` uses all available parallelism. The first failing load
/// point (lowest index) is reported; every index is guaranteed to be
/// filled on success.
pub fn run_sweep<R>(
    topo: &Topology,
    router: &R,
    cfg: SimConfig,
    loads: &[f64],
    threads: usize,
) -> Result<Vec<LoadPoint>, SweepError>
where
    R: Router + Clone,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .min(loads.len().max(1));

    if threads <= 1 {
        return loads
            .iter()
            .enumerate()
            .map(|(i, &l)| simulate_point(topo, router.clone(), cfg, i, l))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (res_tx, res_rx) = mpsc::channel::<PointResult>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let res_tx = res_tx.clone();
            let router = router.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&load) = loads.get(i) else { break };
                let outcome = simulate_point(topo, router.clone(), cfg, i, load);
                if res_tx.send((i, outcome)).is_err() {
                    break; // receiver gone: the sweep already failed
                }
            });
        }
        drop(res_tx);

        let mut out: Vec<Option<LoadPoint>> = vec![None; loads.len()];
        let mut first_error: Option<SweepError> = None;
        for (i, outcome) in res_rx.iter() {
            match outcome {
                Ok(p) => out[i] = Some(p),
                // Keep draining so workers finish, but remember the
                // lowest-index failure for a deterministic report.
                Err(e) => match &first_error {
                    Some(prev) if error_index(prev) <= i => {}
                    _ => first_error = Some(e),
                },
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        out.into_iter()
            .enumerate()
            .map(|(index, p)| p.ok_or(SweepError::MissingResult { index }))
            .collect()
    })
}

/// Like [`run_sweep`], but run an arbitrary verification hook over the
/// `(topology, router)` combination first and fail fast with
/// [`SweepError::Preflight`] — carrying the hook's diagnostic — before
/// a single cycle is simulated.
///
/// The hook is deliberately a plain closure rather than a fixed
/// verifier type so this crate stays independent of the static analyzer
/// (`lmpr-verify` depends on the flow-level stack); experiment binaries
/// pass `|t, _| lmpr_verify::preflight(t, kind)`.
pub fn run_sweep_with_preflight<R, F>(
    topo: &Topology,
    router: &R,
    cfg: SimConfig,
    loads: &[f64],
    threads: usize,
    preflight: F,
) -> Result<Vec<LoadPoint>, SweepError>
where
    R: Router + Clone,
    F: FnOnce(&Topology, &R) -> Result<(), String>,
{
    preflight(topo, router).map_err(|message| SweepError::Preflight { message })?;
    run_sweep(topo, router, cfg, loads, threads)
}

/// Run one load point, converting panics and simulator errors into
/// [`SweepError`]s that name the point.
fn simulate_point<R: Router>(
    topo: &Topology,
    router: R,
    cfg: SimConfig,
    index: usize,
    load: f64,
) -> Result<LoadPoint, SweepError> {
    let sim = catch_unwind(AssertUnwindSafe(|| {
        FlitSim::simulate(topo, router, cfg.with_load(load))
    }));
    match sim {
        Ok(Ok(stats)) => Ok(stats.load_point()),
        Ok(Err(source)) => Err(SweepError::Sim {
            load,
            index,
            source,
        }),
        Err(payload) => Err(SweepError::WorkerPanicked {
            load,
            index,
            message: panic_message(payload.as_ref()),
        }),
    }
}

fn error_index(e: &SweepError) -> usize {
    match e {
        SweepError::Sim { index, .. }
        | SweepError::WorkerPanicked { index, .. }
        | SweepError::MissingResult { index } => *index,
        // Pre-flight failures precede every load point (and in fact
        // never reach the per-point error ranking).
        SweepError::Preflight { .. } => 0,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A standard sweep grid: `step, 2·step, …` up to and including 1.0.
pub fn load_grid(step: f64) -> Vec<f64> {
    assert!(step > 0.0 && step <= 1.0);
    let n = (1.0 / step).round() as usize;
    (1..=n).map(|i| (i as f64 * step).min(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::saturation_throughput;
    use lmpr_core::DModK;
    use xgft::XgftSpec;

    #[test]
    fn grid_shapes() {
        let g = load_grid(0.25);
        assert_eq!(g, vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(load_grid(0.1).len(), 10);
    }

    #[test]
    #[should_panic]
    fn bad_grid_step() {
        let _ = load_grid(0.0);
    }

    #[test]
    fn sweep_is_deterministic_and_ordered() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let cfg = SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 3_000,
            ..SimConfig::default()
        };
        let loads = [0.2, 0.6];
        let serial = run_sweep(&topo, &DModK, cfg, &loads, 1).expect("sweep runs");
        let parallel = run_sweep(&topo, &DModK, cfg, &loads, 2).expect("sweep runs");
        assert_eq!(serial, parallel);
        assert_eq!(serial[0].offered, 0.2);
        assert_eq!(serial[1].offered, 0.6);
        assert!(saturation_throughput(&serial) > 0.0);
    }

    #[test]
    fn invalid_load_point_names_its_index() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 300,
            ..SimConfig::default()
        };
        // Load 1.5 fails config validation inside the worker.
        let loads = [0.2, 1.5];
        for threads in [1, 2] {
            let err = run_sweep(&topo, &DModK, cfg, &loads, threads).unwrap_err();
            match err {
                SweepError::Sim {
                    load,
                    index,
                    source,
                } => {
                    assert_eq!(load, 1.5);
                    assert_eq!(index, 1);
                    assert!(matches!(source, SimError::Config(_)));
                }
                other => panic!("expected a Sim error, got {other:?}"),
            }
        }
    }

    #[test]
    fn preflight_gates_the_sweep() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 300,
            ..SimConfig::default()
        };
        // Accepting hook: behaves exactly like run_sweep.
        let ok = run_sweep_with_preflight(&topo, &DModK, cfg, &[0.2], 1, |_, _| Ok(()));
        assert_eq!(ok, run_sweep(&topo, &DModK, cfg, &[0.2], 1));
        // Rejecting hook: fails fast with the diagnostic, no simulation.
        let err = run_sweep_with_preflight(&topo, &DModK, cfg, &[0.2], 1, |_, _| {
            Err("CDG-CYCLE: cycle of length 2".to_owned())
        })
        .unwrap_err();
        match err {
            SweepError::Preflight { message } => {
                assert!(message.contains("CDG-CYCLE"));
                assert!(err_to_string_mentions_preflight(&message));
            }
            other => panic!("expected Preflight, got {other:?}"),
        }
    }

    fn err_to_string_mentions_preflight(message: &str) -> bool {
        let e = SweepError::Preflight {
            message: message.to_owned(),
        };
        e.to_string().contains("pre-flight verification rejected")
    }

    #[test]
    fn empty_sweep_is_empty() {
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let cfg = SimConfig::default();
        assert_eq!(run_sweep(&topo, &DModK, cfg, &[], 4), Ok(vec![]));
    }
}
