//! Open-loop Poisson message sources.

use crate::config::PathPolicy;
use crate::traffic_mode::TrafficMode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A packet queued at its source, streaming flit by flit into the
/// processing node's output buffer.
#[derive(Debug, Clone, Copy)]
pub struct StreamingPacket {
    /// Packet slab key.
    pub pkt: u32,
    /// Next flit sequence number to inject.
    pub next_seq: u16,
}

/// Per-processing-node traffic source: Poisson message arrivals with
/// uniformly random destinations, and unbounded per-port packet queues
/// (open-loop injection).
#[derive(Debug, Clone)]
pub struct Source {
    rng: SmallRng,
    /// Absolute time (in cycles, fractional) of the next message
    /// arrival.
    next_arrival: f64,
    /// One FIFO of pending packets per PN up port.
    pub queues: Vec<VecDeque<StreamingPacket>>,
    /// Rotation counter for [`PathPolicy::RoundRobin`].
    rr: u64,
}

impl Source {
    /// Create a source with its own decorrelated RNG stream.
    pub fn new(seed: u64, pn: u32, ports: u32, rate: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ (0xA5A5_0000_0000_0000 | pn as u64));
        let first = exp_sample(&mut rng, rate);
        Source {
            rng,
            next_arrival: first,
            queues: vec![VecDeque::new(); ports as usize],
            rr: 0,
        }
    }

    /// Whether a message arrives at or before `now`; advances the
    /// arrival clock when it does.
    pub fn poll_arrival(&mut self, now: u64, rate: f64) -> bool {
        if self.next_arrival <= now as f64 {
            self.next_arrival += exp_sample(&mut self.rng, rate);
            true
        } else {
            false
        }
    }

    /// A uniformly random destination other than `self_pn`.
    #[cfg(test)]
    pub fn pick_destination(&mut self, self_pn: u32, num_pns: u32) -> u32 {
        debug_assert!(num_pns >= 2);
        let d = self.rng.gen_range(0..num_pns - 1);
        if d >= self_pn {
            d + 1
        } else {
            d
        }
    }

    /// Destination under a [`TrafficMode`] (`None` = this source is
    /// silent for this arrival).
    pub fn pick_destination_mode(
        &mut self,
        mode: &TrafficMode,
        self_pn: u32,
        num_pns: u32,
    ) -> Option<u32> {
        mode.pick(self_pn, num_pns, &mut self.rng)
    }

    /// Pick an index into a path set of size `len` for the next packet,
    /// honouring the policy. `per_message_choice` is the index chosen at
    /// message granularity (used by [`PathPolicy::PerMessageRandom`]).
    pub fn pick_path(
        &mut self,
        policy: PathPolicy,
        len: usize,
        per_message_choice: usize,
    ) -> usize {
        match policy {
            PathPolicy::PerPacketRandom => self.rng.gen_range(0..len),
            PathPolicy::PerMessageRandom => per_message_choice,
            PathPolicy::RoundRobin => {
                let i = (self.rr % len as u64) as usize;
                self.rr += 1;
                i
            }
        }
    }

    /// Draw the message-granularity path choice.
    pub fn pick_message_path(&mut self, len: usize) -> usize {
        self.rng.gen_range(0..len)
    }

    /// Total packets waiting across all port queues (for saturation
    /// diagnostics and conservation audits).
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Snapshot view of the private stream state: the RNG position, the
    /// absolute next-arrival time, and the round-robin counter (the
    /// queues are public and serialized separately).
    pub fn snapshot_parts(&self) -> ([u64; 4], f64, u64) {
        (self.rng.get_state(), self.next_arrival, self.rr)
    }

    /// Rebuild a source from snapshot parts, resuming its RNG stream at
    /// the exact captured position.
    pub fn from_parts(
        rng_state: [u64; 4],
        next_arrival: f64,
        queues: Vec<VecDeque<StreamingPacket>>,
        rr: u64,
    ) -> Self {
        Source {
            rng: SmallRng::from_state(rng_state),
            next_arrival,
            queues,
            rr,
        }
    }
}

/// Exponential inter-arrival sample with rate `rate` events/cycle.
fn exp_sample(rng: &mut SmallRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    // Map (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_is_calibrated() {
        // Mean inter-arrival must approximate 1/rate.
        let mut src = Source::new(1, 0, 1, 0.01);
        let mut events = 0u32;
        for now in 0..200_000u64 {
            while src.poll_arrival(now, 0.01) {
                events += 1;
            }
        }
        let expected = 200_000.0 * 0.01;
        assert!(
            (f64::from(events) - expected).abs() < 0.1 * expected,
            "events {events} vs expected {expected}"
        );
    }

    #[test]
    fn destinations_cover_everyone_but_self() {
        let mut src = Source::new(7, 3, 1, 0.5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let d = src.pick_destination(3, 8);
            assert_ne!(d, 3);
            assert!(d < 8);
            seen[d as usize] = true;
        }
        assert_eq!(seen.iter().filter(|&&b| b).count(), 7);
    }

    #[test]
    fn round_robin_cycles() {
        let mut src = Source::new(0, 0, 1, 0.5);
        let picks: Vec<usize> = (0..6)
            .map(|_| src.pick_path(PathPolicy::RoundRobin, 3, 0))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn per_message_policy_uses_the_message_choice() {
        let mut src = Source::new(0, 0, 1, 0.5);
        for _ in 0..5 {
            assert_eq!(src.pick_path(PathPolicy::PerMessageRandom, 4, 2), 2);
        }
    }

    #[test]
    fn per_packet_random_spreads() {
        let mut src = Source::new(0, 0, 1, 0.5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[src.pick_path(PathPolicy::PerPacketRandom, 4, 0)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn backlog_counts_all_queues() {
        let mut src = Source::new(0, 0, 2, 0.5);
        src.queues[0].push_back(StreamingPacket {
            pkt: 0,
            next_seq: 0,
        });
        src.queues[1].push_back(StreamingPacket {
            pkt: 1,
            next_seq: 0,
        });
        assert_eq!(src.backlog(), 2);
    }
}
