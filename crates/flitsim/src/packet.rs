//! Packets, messages and flits.

use xgft::PnId;

/// Sentinel for [`Packet::xfer`]: the packet is not tracked by the
/// end-to-end retransmission layer (reliability disabled).
pub const NO_XFER: u32 = u32::MAX;

/// A flit in a buffer. All flits of a packet share its record in the
/// packet slab; the flit only carries what differs per copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Packet slab key.
    pub pkt: u32,
    /// Position within the packet (`0` = head, `len-1` = tail).
    pub seq: u16,
    /// Index of the node this flit currently sits at along its route
    /// (`0` = source PN). The output port to take at that node is
    /// `route[hop]`.
    pub hop: u8,
    /// Cycle the flit entered its current buffer; it may move again only
    /// on a strictly later cycle. 64-bit so arbitrarily long resilience
    /// runs never wrap the timeline.
    pub entered: u64,
}

impl Flit {
    /// Whether this is the packet's head flit.
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Message slab key this packet belongs to.
    pub msg: u32,
    /// Length in flits.
    pub len: u16,
    /// Output port to take at each node along the path (`2κ` entries:
    /// source PN, up-phase switches, apex, down-phase switches).
    pub route: Box<[u16]>,
    /// Destination (for delivery assertions).
    pub dst: PnId,
    /// Transfer slab key when end-to-end reliability tracks this packet
    /// (each retransmitted copy is its own `Packet` sharing one
    /// transfer); [`NO_XFER`] otherwise.
    pub xfer: u32,
}

impl Packet {
    /// Whether `seq` is the tail flit.
    pub fn is_tail(&self, seq: u16) -> bool {
        seq + 1 == self.len
    }
}

/// A message: the unit whose creation-to-delivery delay the paper plots.
#[derive(Debug, Clone, Copy)]
pub struct Message {
    /// Creation cycle (arrival at the source queue).
    pub created: u64,
    /// Flits still outstanding; the message completes when this reaches
    /// zero. Under end-to-end reliability this decrements by a whole
    /// packet when the packet's *first* copy completes (duplicates never
    /// advance it).
    pub remaining_flits: u32,
    /// Whether the message was created inside the measurement window
    /// (only those contribute to delay statistics).
    pub measured: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_and_tail_classification() {
        let p = Packet {
            msg: 0,
            len: 4,
            route: Box::new([0, 1]),
            dst: PnId(3),
            xfer: NO_XFER,
        };
        assert!(Flit {
            pkt: 0,
            seq: 0,
            hop: 0,
            entered: 0
        }
        .is_head());
        assert!(!Flit {
            pkt: 0,
            seq: 1,
            hop: 0,
            entered: 0
        }
        .is_head());
        assert!(p.is_tail(3));
        assert!(!p.is_tail(2));
    }
}
