//! Behavioral test suite of the flit simulator: throughput/delay sanity,
//! conservation audits, determinism, fault policies, the dynamic-fault
//! resilience layer and end-to-end retransmission. Exercises only the
//! public API (the suite moved out of `sim.rs` when the monolith was
//! decomposed, which is exactly what keeps it honest).

use lmpr_core::{DModK, Disjoint, FaultAware};
use lmpr_flitsim::{
    ConfigError, FaultPolicy, FlitSim, PathPolicy, ResilienceConfig, RetxConfig, SimConfig,
    SimError, TrafficMode,
};
use lmpr_verify::Severity;
use xgft::{FaultChange, FaultEvent, FaultSchedule, FaultSet, Topology, XgftSpec};

fn small_topo() -> Topology {
    Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
}

fn quick_cfg(load: f64) -> SimConfig {
    SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 6_000,
        offered_load: load,
        ..SimConfig::default()
    }
}

#[test]
fn low_load_delivers_what_it_injects() {
    let topo = small_topo();
    let stats = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
    let t = stats.accepted_throughput();
    assert!(
        (t - 0.1).abs() < 0.02,
        "at 10% load throughput must track offered load, got {t}"
    );
    assert!(stats.completion_rate() > 0.95);
    assert!(stats.avg_message_delay() > 0.0);
}

#[test]
fn conservation_of_flits() {
    let topo = small_topo();
    let mut sim = FlitSim::new(&topo, Disjoint::new(2), quick_cfg(0.6)).expect("valid config");
    for _ in 0..5_000 {
        sim.step();
    }
    let (injected, delivered) = sim.lifetime_counters();
    assert_eq!(
        injected,
        delivered + sim.flits_in_network(),
        "flits must be conserved"
    );
    assert!(delivered > 0);
    let ledger = sim.conservation_ledger();
    assert!(ledger.flit_balance_holds());
    assert!(ledger.transfer_balance_holds());
    assert!(sim.check_invariants().is_empty());
}

#[test]
fn zero_load_latency_matches_pipeline_depth() {
    // At a vanishing load a message's delay approaches the no-
    // contention pipeline latency: each of the 2κ+1 link crossings
    // costs ~2 cycles (buffer + wire) and the message streams
    // message_flits flits behind its head.
    let topo = small_topo();
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 60_000,
        offered_load: 0.005,
        ..SimConfig::default()
    };
    let stats = FlitSim::simulate(&topo, DModK, cfg).expect("valid config");
    assert!(stats.completed_messages > 10);
    let delay = stats.avg_message_delay();
    // Lower bound: serialization alone (64 flits) plus a couple of
    // hops; upper bound: generous contention-free envelope.
    assert!(delay > 64.0, "delay {delay} below serialization bound");
    assert!(delay < 110.0, "delay {delay} too high for near-zero load");
}

#[test]
fn saturation_backlog_grows_with_overload() {
    let topo = small_topo();
    let low = FlitSim::simulate(&topo, DModK, quick_cfg(0.1)).expect("valid config");
    let high = FlitSim::simulate(&topo, DModK, quick_cfg(1.0)).expect("valid config");
    assert!(high.final_source_backlog > low.final_source_backlog);
    // Overloaded d-mod-k cannot deliver the full offered load.
    assert!(high.accepted_throughput() < 0.95);
}

#[test]
fn multipath_beats_single_path_at_high_load() {
    // On the paper's 3-level Table-1 topology, limited multi-path
    // routing must outperform d-mod-k at high uniform load.
    let topo = Topology::new(XgftSpec::new(&[4, 4, 8], &[1, 4, 4]).unwrap());
    let single = FlitSim::simulate(&topo, DModK, quick_cfg(0.8)).expect("valid config");
    let multi = FlitSim::simulate(&topo, Disjoint::new(4), quick_cfg(0.8)).expect("valid config");
    assert!(
        multi.accepted_throughput() > single.accepted_throughput(),
        "disjoint(4) {:.3} must beat d-mod-k {:.3} at 80% uniform load",
        multi.accepted_throughput(),
        single.accepted_throughput()
    );
}

#[test]
fn policies_all_run() {
    let topo = small_topo();
    for policy in [
        PathPolicy::PerPacketRandom,
        PathPolicy::PerMessageRandom,
        PathPolicy::RoundRobin,
    ] {
        let cfg = SimConfig {
            path_policy: policy,
            ..quick_cfg(0.4)
        };
        let stats = FlitSim::simulate(&topo, Disjoint::new(4), cfg).expect("valid config");
        assert!(
            stats.delivered_flits > 0,
            "policy {policy:?} delivered nothing"
        );
    }
}

#[test]
fn percentiles_bracket_the_mean_and_util_is_sane() {
    let topo = small_topo();
    let mut sim = FlitSim::new(&topo, DModK, quick_cfg(0.4)).expect("valid config");
    let stats = sim.run().expect("no deadlock");
    assert!(stats.delay_p50 > 0.0);
    assert!(stats.delay_p50 <= stats.delay_p95);
    assert!(stats.delay_p95 <= stats.delay_p99);
    assert!(stats.delay_p99 <= stats.max_message_delay as f64);
    assert!(stats.delay_p50 <= stats.avg_message_delay() * 1.5);
    let util = sim.link_utilization();
    assert_eq!(util.len(), sim.graph().num_ports() as usize);
    assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    // Injection links carry roughly the offered load.
    let pn0_out = util[sim.graph().port_gid(0, 0) as usize];
    assert!(
        (pn0_out - 0.4).abs() < 0.12,
        "PN0 injection utilization {pn0_out}"
    );
}

#[test]
fn deterministic_given_seed() {
    let topo = small_topo();
    let a = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
    let b = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid config");
    assert_eq!(a, b);
    let c = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5).with_seed(9))
        .expect("valid config");
    assert_ne!(a, c);
}

#[test]
fn empty_fault_set_is_bit_identical() {
    let topo = small_topo();
    let a = FlitSim::simulate(&topo, DModK, quick_cfg(0.5)).expect("valid config");
    let b = FlitSim::with_faults(
        &topo,
        DModK,
        quick_cfg(0.5),
        TrafficMode::Uniform,
        &FaultSet::default(),
        FaultPolicy::Block,
    )
    .expect("valid config")
    .run()
    .expect("no deadlock");
    assert_eq!(a, b);
    assert_eq!(a.dropped_flits, 0);
    assert_eq!(a.disconnected_messages, 0);
}

#[test]
fn empty_schedule_matches_plain_run() {
    // The resilience layer with nothing to do must be invisible:
    // same RNG consumption, same stats, all resilience counters 0.
    let topo = small_topo();
    let plain = FlitSim::simulate(&topo, Disjoint::new(2), quick_cfg(0.5)).expect("valid");
    let sched = FlitSim::with_schedule(
        &topo,
        Disjoint::new(2),
        quick_cfg(0.5),
        TrafficMode::Uniform,
        FaultSchedule::default(),
        FaultPolicy::Drop,
        ResilienceConfig::default(),
    )
    .expect("valid config")
    .run()
    .expect("no deadlock");
    assert_eq!(plain, sched);
    assert_eq!(sched.reconvergence_events, 0);
    assert_eq!(sched.transfers_created, 0);
    assert_eq!(sched.duplicate_flits, 0);
}

#[test]
fn scripted_outage_dips_and_recovers() {
    // One level-2 up-link dies mid-run and is repaired. Under the
    // blocking policy nothing is lost: traffic jams, the routing
    // view reconverges after the configured lag, and the backlog
    // drains after repair — the run completes with clean invariants.
    let topo = small_topo();
    let link = topo.up_link(2, 0, 0);
    let schedule = FaultSchedule::scripted(vec![
        FaultEvent {
            at: 3_000,
            change: FaultChange::LinkDown(link),
        },
        FaultEvent {
            at: 5_000,
            change: FaultChange::LinkUp(link),
        },
    ]);
    let res = ResilienceConfig {
        detect_cycles: 100,
        reconverge_cycles: 100,
        retx: None,
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        DModK,
        quick_cfg(0.3),
        TrafficMode::Uniform,
        schedule,
        FaultPolicy::Block,
        res,
    )
    .expect("valid config");
    let stats = sim
        .run()
        .expect("no deadlock: the outage is shorter than the watchdog");
    assert_eq!(stats.reconvergence_events, 2, "one batch down, one up");
    assert!(
        (stats.mean_reconverge_cycles - 200.0).abs() < 1e-9,
        "realized lag must equal detect + reconverge, got {}",
        stats.mean_reconverge_cycles
    );
    assert_eq!(stats.max_reconverge_cycles, 200);
    assert!(
        stats.routes_invalidated > 0,
        "d-mod-k selections crossing the dead link must be flushed"
    );
    assert_eq!(stats.dropped_flits, 0, "blocking policy loses nothing");
    assert!(stats.delivered_flits > 0);
    let diags = sim.check_invariants();
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    let sel = sim.selection_stats();
    assert!(sel.hits > 0, "repeat arrivals must hit the shared cache");
    assert_eq!(sel.invalidated, stats.routes_invalidated);
}

#[test]
fn retransmission_recovers_drops() {
    // Drop policy + a long outage: packets routed over the dead link
    // are discarded until the view reconverges; end-to-end
    // retransmission resends them and the ledger accounts for every
    // transfer exactly once.
    let topo = small_topo();
    let link = topo.up_link(2, 0, 0);
    let schedule = FaultSchedule::scripted(vec![
        FaultEvent {
            at: 2_500,
            change: FaultChange::LinkDown(link),
        },
        FaultEvent {
            at: 6_000,
            change: FaultChange::LinkUp(link),
        },
    ]);
    let res = ResilienceConfig {
        detect_cycles: 50,
        reconverge_cycles: 50,
        retx: Some(RetxConfig {
            timeout: 600,
            max_retries: 6,
        }),
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        DModK,
        quick_cfg(0.4),
        TrafficMode::Uniform,
        schedule,
        FaultPolicy::Drop,
        res,
    )
    .expect("valid config");
    let stats = sim.run().expect("no deadlock");
    assert!(stats.dropped_flits > 0, "the outage must discard something");
    assert!(
        stats.retransmitted_packets > 0,
        "dropped transfers must be retried"
    );
    assert!(stats.transfers_created > 0);
    let ledger = sim.conservation_ledger();
    assert!(ledger.flit_balance_holds(), "flit ledger: {ledger:?}");
    assert!(
        ledger.transfer_balance_holds(),
        "transfer ledger: {ledger:?}"
    );
    let diags = sim.check_invariants();
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
}

#[test]
fn generous_timeout_never_retransmits_without_faults() {
    // Regression: timeout-heap entries identify transfers by slab
    // slot, and resolved transfers are reaped, so slots are reused
    // long before old deadlines expire. Without the per-transfer
    // sequence tag a stale entry would match the fresh occupant
    // (also on its first send) and retransmit a perfectly healthy
    // packet. With a timeout far above the worst-case delay and no
    // faults, any retransmission at all is the ABA bug.
    let topo = small_topo();
    let res = ResilienceConfig {
        detect_cycles: 0,
        reconverge_cycles: 0,
        retx: Some(RetxConfig {
            timeout: 50_000,
            max_retries: 4,
        }),
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        DModK,
        quick_cfg(0.5),
        TrafficMode::Uniform,
        FaultSchedule::default(),
        FaultPolicy::Drop,
        res,
    )
    .expect("valid config");
    let stats = sim.run().expect("no deadlock");
    assert_eq!(
        stats.retransmitted_packets, 0,
        "stale timeout entries acted on reused transfer slots"
    );
    assert_eq!(stats.duplicate_flits, 0);
    assert_eq!(stats.transfers_dropped, 0);
}

#[test]
fn duplicates_are_suppressed() {
    // A timeout shorter than the congested delivery delay forces
    // spurious retransmissions: both copies arrive, exactly one
    // counts, and the duplicate monitors stay quiet.
    let topo = small_topo();
    let res = ResilienceConfig {
        detect_cycles: 0,
        reconverge_cycles: 0,
        retx: Some(RetxConfig {
            timeout: 60,
            max_retries: 4,
        }),
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        DModK,
        quick_cfg(0.8),
        TrafficMode::Uniform,
        FaultSchedule::default(),
        FaultPolicy::Drop,
        res,
    )
    .expect("valid config");
    let stats = sim.run().expect("no deadlock");
    assert!(
        stats.duplicate_flits > 0,
        "a 60-cycle timeout under congestion must produce duplicates"
    );
    assert!(stats.retransmit_ratio() > 0.0);
    let ledger = sim.conservation_ledger();
    assert!(ledger.flit_balance_holds(), "flit ledger: {ledger:?}");
    assert!(
        ledger.transfer_balance_holds(),
        "transfer ledger: {ledger:?}"
    );
    assert!(
        ledger.transfers_delivered + ledger.transfers_dropped <= ledger.transfers_created,
        "no transfer resolves twice"
    );
    let diags = sim.check_invariants();
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
}

#[test]
fn monitored_chaos_run_is_clean_and_deterministic() {
    let topo = small_topo();
    let cfg = quick_cfg(0.4);
    let run = || {
        let schedule = FaultSchedule::poisson(&topo, 2e-5, 400.0, cfg.horizon(), 11);
        let res = ResilienceConfig {
            detect_cycles: 50,
            reconverge_cycles: 100,
            retx: Some(RetxConfig::default()),
        };
        FlitSim::with_schedule(
            &topo,
            Disjoint::new(2),
            cfg,
            TrafficMode::Uniform,
            schedule,
            FaultPolicy::Drop,
            res,
        )
        .expect("valid config")
        .run_monitored(500)
        .expect("no deadlock")
    };
    let (a, diags_a) = run();
    let (b, _) = run();
    assert_eq!(a, b, "chaos runs must be deterministic in the seed");
    assert!(
        !diags_a.iter().any(|d| d.severity == Severity::Error),
        "invariant errors: {diags_a:?}"
    );
    assert!(a.reconvergence_events > 0, "the schedule must fire");
}

#[test]
fn dropped_flits_balance_the_conservation_audit() {
    let topo = small_topo();
    // Fail one level-2 up-link: inter-group traffic whose d-mod-k
    // path climbs through it is discarded at the failure point.
    let mut faults = FaultSet::new();
    faults.fail_link(topo.up_link(2, 0, 0));
    let mut sim = FlitSim::with_faults(
        &topo,
        DModK,
        quick_cfg(0.5),
        TrafficMode::Uniform,
        &faults,
        FaultPolicy::Drop,
    )
    .expect("valid config");
    for _ in 0..6_000 {
        sim.step();
    }
    let (injected, delivered) = sim.lifetime_counters();
    assert!(
        sim.dropped_in_lifetime() > 0,
        "the failed link saw no traffic"
    );
    assert!(delivered > 0);
    assert_eq!(
        injected,
        delivered + sim.flits_in_network() + sim.dropped_in_lifetime(),
        "conservation under faults: injected = delivered + in-flight + dropped"
    );
    assert!(sim.stats().dropped_flits > 0);
    assert!(sim.conservation_ledger().flit_balance_holds());
}

#[test]
fn blocking_faults_trip_the_watchdog() {
    let topo = small_topo();
    // Sever every PN's injection cable with the blocking policy: the
    // NIC staging buffers fill, then nothing can ever move again.
    let mut faults = FaultSet::new();
    for pn in 0..topo.num_pns() {
        faults.fail_link(topo.up_link(1, pn, 0));
    }
    let cfg = SimConfig {
        watchdog_cycles: 500,
        ..quick_cfg(0.5)
    };
    let err = FlitSim::with_faults(
        &topo,
        DModK,
        cfg,
        TrafficMode::Uniform,
        &faults,
        FaultPolicy::Block,
    )
    .expect("valid config")
    .run()
    .unwrap_err();
    let SimError::Deadlock(report) = err else {
        panic!("expected a deadlock, got {err:?}")
    };
    assert!(report.stalled_for > 500);
    assert!(report.flits_in_network > 0);
    assert!(report.blocked_ports > 0);
    assert!(report.in_flight_packets > 0);
}

#[test]
fn fault_aware_routing_counts_disconnected_messages() {
    let topo = small_topo();
    // PN 0 cannot send (its only up-link is down); a fault-aware
    // router reports its pairs as disconnected instead of panicking,
    // and the rest of the network keeps delivering.
    let mut faults = FaultSet::new();
    faults.fail_link(topo.up_link(1, 0, 0));
    let router = FaultAware::new(DModK, faults.clone());
    let stats = FlitSim::with_faults(
        &topo,
        router,
        quick_cfg(0.3),
        TrafficMode::Uniform,
        &faults,
        FaultPolicy::Drop,
    )
    .expect("valid config")
    .run()
    .expect("no deadlock");
    assert!(stats.disconnected_messages > 0);
    assert!(stats.delivered_flits > 0);
    // Routing around the failure means nothing is ever dropped.
    assert_eq!(stats.dropped_flits, 0);
}

#[test]
fn persistent_disconnection_drops_with_cause() {
    // PN 0's only up-link dies at cycle 0 and never recovers, with a
    // tiny lag: PN 0's transfers can never be sent and must resolve
    // as dropped (cause: disconnected), keeping the ledger balanced.
    let topo = small_topo();
    let link = topo.up_link(1, 0, 0);
    let schedule = FaultSchedule::scripted(vec![FaultEvent {
        at: 0,
        change: FaultChange::LinkDown(link),
    }]);
    let res = ResilienceConfig {
        detect_cycles: 0,
        reconverge_cycles: 10,
        retx: Some(RetxConfig {
            timeout: 200,
            max_retries: 2,
        }),
    };
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 8_000,
        offered_load: 0.3,
        watchdog_cycles: 0,
        ..SimConfig::default()
    };
    let mut sim = FlitSim::with_schedule(
        &topo,
        DModK,
        cfg,
        TrafficMode::Uniform,
        schedule,
        FaultPolicy::Drop,
        res,
    )
    .expect("valid config");
    let stats = sim.run().expect("watchdog disabled");
    assert!(
        stats.transfers_dropped > 0,
        "PN 0's transfers must exhaust their retries"
    );
    assert!(stats.disconnected_messages > 0);
    let ledger = sim.conservation_ledger();
    assert!(ledger.flit_balance_holds());
    assert!(ledger.transfer_balance_holds());
    let diags = sim.check_invariants();
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
}

#[test]
fn bad_configs_are_typed_errors_not_panics() {
    let topo = small_topo();
    let bad = SimConfig {
        offered_load: 2.0,
        ..SimConfig::default()
    };
    assert!(matches!(
        FlitSim::simulate(&topo, DModK, bad),
        Err(SimError::Config(_))
    ));
    let bad_traffic = TrafficMode::Permutation(vec![0, 1]);
    assert!(matches!(
        FlitSim::with_traffic(&topo, DModK, quick_cfg(0.5), bad_traffic),
        Err(SimError::Traffic(_))
    ));
    let bad_res = ResilienceConfig {
        retx: Some(RetxConfig {
            timeout: 0,
            max_retries: 1,
        }),
        ..ResilienceConfig::default()
    };
    assert!(matches!(
        FlitSim::with_schedule(
            &topo,
            DModK,
            quick_cfg(0.5),
            TrafficMode::Uniform,
            FaultSchedule::default(),
            FaultPolicy::Drop,
            bad_res,
        )
        .map(|_| ()),
        Err(SimError::Config(ConfigError::ZeroRetxTimeout))
    ));
}
