//! Crash-consistency certificates for the snapshot subsystem: a restore
//! at *any* cycle — mid-packet, mid-retransmission-backoff, between a
//! fault and its reconvergence — resumes the exact simulation, proven by
//! comparing final statistics, conservation ledgers, and the complete
//! re-serialized state byte for byte against the uninterrupted run.

use lmpr_core::{DModK, Disjoint, ShiftOne};
use lmpr_flitsim::{
    FaultPolicy, FlitSim, MonitorLog, ResilienceConfig, RetxConfig, SimConfig, SimStats,
    SnapshotError, TrafficMode, SNAPSHOT_VERSION,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xgft::{FaultChange, FaultEvent, FaultSchedule, FaultSet, Topology, XgftSpec};

fn small_topo() -> Topology {
    Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap())
}

fn cfg(load: f64) -> SimConfig {
    SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        offered_load: load,
        ..SimConfig::default()
    }
}

fn step_to<R: lmpr_core::Router>(sim: &mut FlitSim<R>, cycle: u64) {
    while sim.now() < cycle {
        sim.step();
    }
}

/// Scripted fail→recover timeline used by the resilient-config tests:
/// one top-level uplink dies mid-run and comes back.
fn scripted_schedule(topo: &Topology) -> FaultSchedule {
    let link = topo.up_link(2, 0, 0);
    FaultSchedule::scripted(vec![
        FaultEvent {
            at: 1_500,
            change: FaultChange::LinkDown(link),
        },
        FaultEvent {
            at: 3_000,
            change: FaultChange::LinkUp(link),
        },
    ])
}

fn resilient_sim(topo: &Topology) -> FlitSim<ShiftOne> {
    FlitSim::with_schedule(
        topo,
        ShiftOne::new(4),
        cfg(0.5),
        TrafficMode::Uniform,
        scripted_schedule(topo),
        FaultPolicy::Drop,
        ResilienceConfig {
            detect_cycles: 100,
            reconverge_cycles: 200,
            retx: Some(RetxConfig {
                timeout: 800,
                max_retries: 4,
            }),
        },
    )
    .expect("valid resilient config")
}

/// Drive `make_sim()` once to the horizon uninterrupted, and once per
/// snapshot cycle with a snapshot → restore → resume in the middle.
/// Every resumed run must match the uninterrupted one in stats, ledger,
/// and full re-serialized state.
fn assert_resume_equivalence<R, F, G>(make_sim: F, make_router: G, snap_cycles: &[u64])
where
    R: lmpr_core::Router,
    F: Fn() -> FlitSim<R>,
    G: Fn() -> R,
{
    // Both configs in this suite use warmup 1_000 + measure 4_000.
    let end = 5_000u64;
    let mut uninterrupted = make_sim();
    step_to(&mut uninterrupted, end);
    let final_stats = uninterrupted.stats();
    let final_ledger = uninterrupted.conservation_ledger();
    let final_bytes = uninterrupted.snapshot();

    // Single recording pass: walk one sim along the timeline, exporting
    // a snapshot as each requested cycle is reached.
    let mut cycles: Vec<u64> = snap_cycles.to_vec();
    cycles.sort_unstable();
    cycles.dedup();
    let mut recorder = make_sim();
    let mut snapshots = Vec::with_capacity(cycles.len());
    for &c in &cycles {
        step_to(&mut recorder, c);
        snapshots.push((c, recorder.snapshot()));
    }

    for (c, bytes) in snapshots {
        let mut resumed = FlitSim::restore(make_router(), &bytes)
            .unwrap_or_else(|e| panic!("restore at cycle {c} failed: {e}"));
        assert_eq!(resumed.now(), c, "restored sim must resume at cycle {c}");
        // The restored state itself must re-serialize to the same bytes
        // (round-trip state equality).
        assert_eq!(
            resumed.snapshot(),
            bytes,
            "snapshot at cycle {c} must round-trip byte-identically"
        );
        step_to(&mut resumed, end);
        assert_eq!(
            resumed.stats(),
            final_stats,
            "stats diverged after resuming from cycle {c}"
        );
        assert_eq!(
            resumed.conservation_ledger(),
            final_ledger,
            "conservation ledger diverged after resuming from cycle {c}"
        );
        assert_eq!(
            resumed.snapshot(),
            final_bytes,
            "final state diverged after resuming from cycle {c}"
        );
    }
}

#[test]
fn plain_config_resumes_byte_identically() {
    let topo = small_topo();
    assert_resume_equivalence(
        || FlitSim::new(&topo, Disjoint::new(2), cfg(0.6)).expect("valid config"),
        || Disjoint::new(2),
        &[1, 777, 2_500, 4_999],
    );
}

#[test]
fn static_faults_resume_byte_identically() {
    let topo = small_topo();
    let mut faults = FaultSet::new();
    faults.fail_link(topo.up_link(1, 0, 0));
    assert_resume_equivalence(
        || {
            FlitSim::with_faults(
                &topo,
                DModK,
                cfg(0.3),
                TrafficMode::Uniform,
                &faults,
                FaultPolicy::Drop,
            )
            .expect("valid config")
        },
        || DModK,
        &[100, 3_333],
    );
}

#[test]
fn resilient_config_resumes_from_random_cycles() {
    // The property test of the issue: snapshot at uniformly random
    // cycles — including mid-packet cycles, cycles inside the
    // fail→recover outage, and cycles inside a retransmission backoff
    // window — and require bit-exact resume equivalence.
    let topo = small_topo();
    let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE);
    let mut cycles: Vec<u64> = (0..8).map(|_| rng.gen_range(1..5_000)).collect();
    // Deterministically cover the interesting windows too: just after
    // the failure (drops arm backoff timers), deep in the outage, and
    // just after recovery while the routing view still lags.
    cycles.extend([1_501, 2_200, 3_001, 3_150]);
    assert_resume_equivalence(|| resilient_sim(&topo), || ShiftOne::new(4), &cycles);
}

#[test]
fn monitored_segments_match_uninterrupted_run() {
    // The orchestrator's driving pattern: run_monitored_until to an
    // arbitrary (unaligned) cycle, snapshot, restore in a fresh process,
    // continue with the same MonitorLog cadence. Stats and findings must
    // match an uninterrupted run_monitored.
    let topo = small_topo();
    let (base_stats, base_report) = resilient_sim(&topo)
        .run_monitored(500)
        .expect("uninterrupted run");

    let mut first = resilient_sim(&topo);
    let mut log = MonitorLog::new();
    let fatal = first
        .run_monitored_until(2_345, 500, &mut log)
        .expect("first segment");
    assert!(!fatal, "scripted run must be invariant-clean");
    let bytes = first.snapshot();
    drop(first);

    let mut second = FlitSim::restore(ShiftOne::new(4), &bytes).expect("restore");
    let fatal = second
        .run_monitored_until(u64::MAX, 500, &mut log)
        .expect("second segment");
    assert!(!fatal);
    log.absorb(second.check_invariants());

    assert_eq!(second.stats(), base_stats);
    let resumed_report = log.into_findings();
    assert_eq!(resumed_report.len(), base_report.len());
    for (a, b) in resumed_report.iter().zip(base_report.iter()) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.severity, b.severity);
        assert_eq!(a.message, b.message);
    }
}

#[test]
fn corrupted_snapshots_are_rejected_with_typed_errors() {
    let topo = small_topo();
    let mut sim = resilient_sim(&topo);
    step_to(&mut sim, 2_000);
    let good = sim.snapshot();

    // Pristine bytes restore fine.
    assert!(FlitSim::restore(ShiftOne::new(4), &good).is_ok());

    // Truncation below the header.
    assert_eq!(
        FlitSim::restore(ShiftOne::new(4), &good[..10]).err(),
        Some(SnapshotError::TooShort)
    );

    // Foreign magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert_eq!(
        FlitSim::restore(ShiftOne::new(4), &bad).err(),
        Some(SnapshotError::BadMagic)
    );

    // A version from the future.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    assert_eq!(
        FlitSim::restore(ShiftOne::new(4), &bad).err(),
        Some(SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
    );

    // Truncated payload: the declared length no longer matches.
    let cut = good.len() - 7;
    assert!(matches!(
        FlitSim::restore(ShiftOne::new(4), &good[..cut]).err(),
        Some(SnapshotError::LengthMismatch { .. })
    ));

    // Every single-bit payload corruption is caught by the checksum.
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..32 {
        let mut bad = good.clone();
        let i = rng.gen_range(28..bad.len() as u64) as usize;
        bad[i] ^= 1 << rng.gen_range(0u8..8);
        assert!(
            matches!(
                FlitSim::restore(ShiftOne::new(4), &bad).err(),
                Some(SnapshotError::ChecksumMismatch { .. })
            ),
            "bit flip at byte {i} must be detected"
        );
    }
}

#[test]
fn snapshot_stats_survive_roundtrip_exactly() {
    // f64 statistics (sum of delays, arrival clocks) are serialized as
    // raw bits — the restored stats must be *equal*, not approximately
    // equal.
    let topo = small_topo();
    let mut sim = FlitSim::new(&topo, DModK, cfg(0.4)).expect("valid config");
    step_to(&mut sim, 3_000);
    let stats_before: SimStats = sim.stats();
    let restored = FlitSim::restore(DModK, &sim.snapshot()).expect("restore");
    assert_eq!(restored.stats(), stats_before);
    assert_eq!(restored.conservation_ledger(), sim.conservation_ledger());
}
