//! The Theorem 2 adversarial concentration pattern.
//!
//! Theorem 2 of the paper exhibits XGFTs on which d-mod-k's oblivious
//! performance ratio is at least `Π_{i=1..h} w_i`. The construction:
//! every processing node `j` of the *first* height-`(h-1)` sub-tree
//! (there are `M = Π_{i<h} m_i` of them) sends one unit of traffic to
//! node `(A + j) · W`, where `W = Π_{i=1..h} w_i` and `A` is the
//! smallest integer with `A·W ≥ M` (so destinations land outside the
//! source sub-tree).
//!
//! Because every destination is a multiple of `W`, d-mod-k's up-port at
//! every level is `⌊d / Π_{i<k} w_i⌋ mod w_k = 0`: all `M` flows climb
//! the *same* sequence of switches and exit the sub-tree through one
//! up-link, giving a maximum link load of `M`. UMULTI spreads the same
//! traffic over the `TL(h-1) = W` outgoing links for a load of `M / W`
//! — hence the ratio `W`.

use crate::{Flow, TrafficMatrix};
use xgft::{PnId, Topology};

/// The constructed pattern together with the quantities the theorem's
/// proof predicts, so tests and the experiment harness can assert them.
#[derive(Debug, Clone)]
pub struct AdversarialPattern {
    /// The traffic matrix (`M` unit flows).
    pub tm: TrafficMatrix,
    /// `M = Π_{i<h} m_i` — flows, and d-mod-k's maximum link load.
    pub concentrated_load: f64,
    /// `M / W` — UMULTI's maximum link load (the optimal load).
    pub optimal_load: f64,
    /// `W = Π_i w_i` — the performance-ratio lower bound realized.
    pub ratio: f64,
}

/// Build the Theorem 2 pattern for a topology, or `None` when the tree
/// is too small to host it (the construction needs
/// `(A + M - 1)·W < N`, i.e. enough room to the right of the source
/// sub-tree for `M` destinations that are multiples of `W`).
pub fn adversarial_concentration(topo: &Topology) -> Option<AdversarialPattern> {
    let h = topo.height();
    let n = topo.num_pns() as u64;
    let m = topo.m_prod(h - 1); // PNs per height-(h-1) sub-tree
    let w = topo.w_prod(h); // number of top-level switches
    let a = m.div_ceil(w); // smallest A with A·W ≥ M
    let last_dst = (a + m - 1) * w;
    if last_dst >= n {
        return None;
    }
    let flows = (0..m)
        .map(|j| Flow {
            src: PnId(j as u32),
            dst: PnId(((a + j) * w) as u32),
            demand: 1.0,
        })
        .collect();
    Some(AdversarialPattern {
        tm: TrafficMatrix::from_flows(topo.num_pns(), flows),
        concentrated_load: m as f64,
        optimal_load: m as f64 / w as f64,
        ratio: w as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::{XgftSpec, MAX_HEIGHT};

    #[test]
    fn pattern_exists_on_wide_trees() {
        // XGFT(2; 4, 16; 2, 2): M = 4, W = 4, A = 1, destinations
        // 4, 8, 12, 16 — all valid.
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let p = adversarial_concentration(&topo).expect("pattern must fit");
        assert_eq!(p.tm.flows().len(), 4);
        assert_eq!(p.concentrated_load, 4.0);
        assert_eq!(p.optimal_load, 1.0);
        assert_eq!(p.ratio, 4.0);
        for f in p.tm.flows() {
            assert_eq!(f.dst.0 as u64 % topo.w_prod(2), 0);
            assert!(f.dst.0 >= 4, "destinations must leave the source sub-tree");
        }
    }

    #[test]
    fn all_dmodk_up_ports_are_zero() {
        let topo = Topology::new(XgftSpec::new(&[4, 16], &[2, 2]).unwrap());
        let p = adversarial_concentration(&topo).unwrap();
        let mut u = [0u32; MAX_HEIGHT];
        for f in p.tm.flows() {
            let path = topo.dmodk_path(f.src, f.dst);
            let k = topo.path_up_ports(f.src, f.dst, path, &mut u);
            assert!(u[..k].iter().all(|&x| x == 0), "d-mod-k must climb port 0");
        }
    }

    #[test]
    fn too_small_trees_yield_none() {
        // XGFT(2; 2, 2; 2, 2): M = 2, W = 4, A = 1, last dst = 2·4 = 8
        // but N = 4 — no room.
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[2, 2]).unwrap());
        assert!(adversarial_concentration(&topo).is_none());
    }

    #[test]
    fn destinations_in_distinct_subtrees() {
        let topo = Topology::new(XgftSpec::new(&[2, 2, 32], &[1, 2, 2]).unwrap());
        let p = adversarial_concentration(&topo).unwrap();
        let h = topo.height();
        let mut seen = std::collections::HashSet::new();
        for f in p.tm.flows() {
            assert!(seen.insert(topo.subtree_of(f.dst, h - 1)));
            assert_ne!(
                topo.subtree_of(f.dst, h - 1),
                0,
                "destinations leave sub-tree 0"
            );
        }
    }
}
