//! Traffic workloads for fat-tree routing studies.
//!
//! The paper evaluates routing with two workload families:
//!
//! * **permutation traffic** — every processing node sends one unit of
//!   traffic to the node a random permutation assigns it (§5, Figure 4);
//! * **uniform random traffic** — destinations drawn uniformly at
//!   message granularity (§5, Table 1 / Figure 5; generated online by
//!   the flit-level simulator, and available here as a dense matrix for
//!   flow-level analysis).
//!
//! In addition this crate provides the **adversarial concentration
//! pattern** from the proof of Theorem 2 (all d-mod-k routes of a
//! sub-tree collapse onto one up-link) and a library of classic
//! structured permutations (shift, bit-complement, bit-reversal,
//! transpose) for wider studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod hotspot;
mod matrix;
mod permutation;

pub use adversarial::{adversarial_concentration, AdversarialPattern};
pub use hotspot::{all_to_one, hotspot};
pub use matrix::{Flow, TrafficMatrix};
pub use permutation::{
    bit_complement_permutation, bit_reversal_permutation, is_permutation, random_permutation,
    shift_permutation, transpose_permutation,
};
