//! Sparse traffic matrices.

use xgft::PnId;

/// One entry of a traffic matrix: `demand` units of traffic from `src`
/// to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending processing node.
    pub src: PnId,
    /// Receiving processing node.
    pub dst: PnId,
    /// Traffic volume (the paper's `tm_{i,j}`; units are arbitrary but
    /// consistent within a matrix).
    pub demand: f64,
}

/// A traffic matrix stored sparsely as a list of non-zero flows.
///
/// Permutations have `N` entries and uniform all-to-all `N·(N-1)`; dense
/// `N×N` storage is never needed. Self-flows (`src == dst`) are legal in
/// the paper's model but load no links, so constructors drop them.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: u32,
    flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// Build from explicit flows for an `n`-node system.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or a demand is negative or
    /// non-finite.
    pub fn from_flows(n: u32, flows: Vec<Flow>) -> Self {
        for f in &flows {
            assert!(f.src.0 < n && f.dst.0 < n, "flow endpoint out of range");
            assert!(
                f.demand.is_finite() && f.demand >= 0.0,
                "demand must be non-negative"
            );
        }
        let flows = flows
            .into_iter()
            .filter(|f| f.src != f.dst && f.demand > 0.0)
            .collect();
        TrafficMatrix { n, flows }
    }

    /// Permutation traffic: node `i` sends one unit to `perm[i]`
    /// (self-mappings allowed, as in the paper, but stored only when
    /// they load links — i.e. never).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn permutation(perm: &[u32]) -> Self {
        assert!(
            crate::is_permutation(perm),
            "permutation traffic requires a bijection on 0..n"
        );
        let n = perm.len() as u32;
        let flows = perm
            .iter()
            .enumerate()
            .map(|(i, &d)| Flow {
                src: PnId(i as u32),
                dst: PnId(d),
                demand: 1.0,
            })
            .collect();
        Self::from_flows(n, flows)
    }

    /// Uniform all-to-all traffic: every node spreads `per_node` units
    /// evenly over the other `n - 1` nodes — the flow-level analogue of
    /// the flit simulator's uniform random workload.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2` or when the dense flow list would exceed 2^24
    /// entries (use the flit-level simulator for larger fabrics).
    pub fn uniform(n: u32, per_node: f64) -> Self {
        assert!(n >= 2, "uniform traffic needs at least two nodes");
        let entries = n as u64 * (n as u64 - 1);
        assert!(
            entries <= 1 << 24,
            "dense uniform matrix too large ({entries} flows)"
        );
        let share = per_node / (n - 1) as f64;
        let mut flows = Vec::with_capacity(entries as usize);
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    flows.push(Flow {
                        src: PnId(s),
                        dst: PnId(d),
                        demand: share,
                    });
                }
            }
        }
        Self::from_flows(n, flows)
    }

    /// Number of processing nodes this matrix addresses.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// The non-zero flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Total traffic volume.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).sum()
    }

    /// Largest per-source egress volume.
    pub fn max_egress(&self) -> f64 {
        self.per_endpoint(|f| f.src)
    }

    /// Largest per-destination ingress volume.
    pub fn max_ingress(&self) -> f64 {
        self.per_endpoint(|f| f.dst)
    }

    fn per_endpoint(&self, key: impl Fn(&Flow) -> PnId) -> f64 {
        let mut acc = vec![0.0f64; self.n as usize];
        for f in &self.flows {
            acc[key(f).0 as usize] += f.demand;
        }
        acc.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_drops_self_flows() {
        let tm = TrafficMatrix::permutation(&[2, 1, 0]);
        assert_eq!(tm.num_nodes(), 3);
        assert_eq!(tm.flows().len(), 2); // node 1 maps to itself
        assert_eq!(tm.total_demand(), 2.0);
        assert_eq!(tm.max_egress(), 1.0);
        assert_eq!(tm.max_ingress(), 1.0);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn non_permutation_rejected() {
        let _ = TrafficMatrix::permutation(&[0, 0, 1]);
    }

    #[test]
    fn uniform_volumes() {
        let tm = TrafficMatrix::uniform(4, 1.0);
        assert_eq!(tm.flows().len(), 12);
        assert!((tm.total_demand() - 4.0).abs() < 1e-12);
        assert!((tm.max_egress() - 1.0).abs() < 1e-12);
        assert!((tm.max_ingress() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_bounds_checked() {
        let _ = TrafficMatrix::from_flows(
            2,
            vec![Flow {
                src: PnId(0),
                dst: PnId(5),
                demand: 1.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_rejected() {
        let _ = TrafficMatrix::from_flows(
            2,
            vec![Flow {
                src: PnId(0),
                dst: PnId(1),
                demand: -1.0,
            }],
        );
    }

    #[test]
    fn zero_demand_flows_are_dropped() {
        let tm = TrafficMatrix::from_flows(
            3,
            vec![
                Flow {
                    src: PnId(0),
                    dst: PnId(1),
                    demand: 0.0,
                },
                Flow {
                    src: PnId(1),
                    dst: PnId(2),
                    demand: 2.5,
                },
            ],
        );
        assert_eq!(tm.flows().len(), 1);
        assert_eq!(tm.total_demand(), 2.5);
    }
}
