//! Hotspot and many-to-one workloads.
//!
//! Beyond the paper's two workloads, hotspot traffic is the classic
//! stress test for oblivious routing: a fraction of every node's
//! traffic converges on a few hot destinations, which no multi-path
//! scheme can fix (the destination links saturate) — a useful negative
//! control for the evaluation harness.

use crate::{Flow, TrafficMatrix};
use xgft::PnId;

/// Uniform traffic with a twist: each source redirects `hot_fraction`
/// of its unit demand to the hot nodes (evenly), spreading the rest
/// uniformly over everyone else.
///
/// # Panics
///
/// Panics if `hot` is empty, contains out-of-range nodes, or
/// `hot_fraction` is outside `[0, 1]`.
pub fn hotspot(n: u32, hot: &[PnId], hot_fraction: f64) -> TrafficMatrix {
    assert!(!hot.is_empty(), "need at least one hot node");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "fraction must be in [0, 1]"
    );
    assert!(hot.iter().all(|h| h.0 < n), "hot node out of range");
    assert!(n >= 2);
    let mut flows = Vec::new();
    let hot_share = hot_fraction / hot.len() as f64;
    let cold_share = (1.0 - hot_fraction) / (n - 1) as f64;
    for s in 0..n {
        let s = PnId(s);
        for &h in hot {
            if h != s {
                flows.push(Flow {
                    src: s,
                    dst: h,
                    demand: hot_share,
                });
            }
        }
        for d in 0..n {
            let d = PnId(d);
            if d != s {
                flows.push(Flow {
                    src: s,
                    dst: d,
                    demand: cold_share,
                });
            }
        }
    }
    // Merge duplicate (s, d) entries (hot nodes also receive the
    // uniform share).
    let mut merged: std::collections::BTreeMap<(u32, u32), f64> = std::collections::BTreeMap::new();
    for f in flows {
        *merged.entry((f.src.0, f.dst.0)).or_insert(0.0) += f.demand;
    }
    TrafficMatrix::from_flows(
        n,
        merged
            .into_iter()
            .map(|((s, d), demand)| Flow {
                src: PnId(s),
                dst: PnId(d),
                demand,
            })
            .collect(),
    )
}

/// All-to-one: every other node sends one unit to `sink` — the extreme
/// hotspot, whose optimal load is dictated purely by the sink's cut.
pub fn all_to_one(n: u32, sink: PnId) -> TrafficMatrix {
    assert!(sink.0 < n);
    let flows = (0..n)
        .filter(|&s| s != sink.0)
        .map(|s| Flow {
            src: PnId(s),
            dst: sink,
            demand: 1.0,
        })
        .collect();
    TrafficMatrix::from_flows(n, flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_volumes_add_up() {
        let tm = hotspot(8, &[PnId(0)], 0.5);
        // Every source emits one unit, except the hot node itself whose
        // own hot share has nowhere to go (7 × 1.0 + 0.5).
        assert!((tm.total_demand() - 7.5).abs() < 1e-9);
        // The hot node receives far more than a cold one.
        let to = |d: u32| -> f64 {
            tm.flows()
                .iter()
                .filter(|f| f.dst.0 == d)
                .map(|f| f.demand)
                .sum()
        };
        assert!(to(0) > 3.0);
        assert!(to(5) < 1.0);
    }

    #[test]
    fn zero_fraction_is_uniform() {
        let a = hotspot(6, &[PnId(2)], 0.0);
        let b = TrafficMatrix::uniform(6, 1.0);
        assert_eq!(a.flows().len(), b.flows().len());
        assert!((a.total_demand() - b.total_demand()).abs() < 1e-9);
    }

    #[test]
    fn all_to_one_shape() {
        let tm = all_to_one(5, PnId(3));
        assert_eq!(tm.flows().len(), 4);
        assert!((tm.max_ingress() - 4.0).abs() < 1e-12);
        assert!((tm.max_egress() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one hot node")]
    fn empty_hot_set_rejected() {
        let _ = hotspot(4, &[], 0.5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = hotspot(4, &[PnId(0)], 1.5);
    }
}
