//! Permutation generators.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Whether `perm` is a bijection on `0..perm.len()`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let Some(slot) = seen.get_mut(p as usize) else {
            return false;
        };
        if std::mem::replace(slot, true) {
            return false;
        }
    }
    true
}

/// A uniformly random permutation of `0..n` (Fisher–Yates), seeded for
/// reproducibility — the sampling unit of the paper's Figure 4 study.
pub fn random_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed));
    perm
}

/// The shift permutation `i ↦ (i + k) mod n` — the pattern optimized IB
/// fat-tree routing targets in Zahavi et al.'s shift all-to-all study.
pub fn shift_permutation(n: u32, k: u32) -> Vec<u32> {
    (0..n).map(|i| (i + k) % n).collect()
}

/// Bit-complement permutation `i ↦ ~i` over `log2(n)` bits.
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_complement_permutation(n: u32) -> Vec<u32> {
    assert!(
        n.is_power_of_two(),
        "bit-complement needs a power-of-two node count"
    );
    (0..n).map(|i| (n - 1) ^ i).collect()
}

/// Bit-reversal permutation over `log2(n)` bits.
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_reversal_permutation(n: u32) -> Vec<u32> {
    assert!(
        n.is_power_of_two(),
        "bit-reversal needs a power-of-two node count"
    );
    let bits = n.trailing_zeros();
    (0..n).map(|i| i.reverse_bits() >> (32 - bits)).collect()
}

/// Matrix-transpose permutation: viewing `0..n` as an `r × r` matrix,
/// `i ↦ (i mod r)·r + i/r`.
///
/// # Panics
///
/// Panics unless `n` is a perfect square.
pub fn transpose_permutation(n: u32) -> Vec<u32> {
    let r = (n as f64).sqrt().round() as u32;
    assert_eq!(r * r, n, "transpose needs a square node count");
    (0..n).map(|i| (i % r) * r + i / r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(is_permutation(&[2, 0, 1]));
        assert!(is_permutation(&[]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 1, 3]));
    }

    #[test]
    fn random_is_permutation_and_seed_dependent() {
        let a = random_permutation(128, 1);
        let b = random_permutation(128, 1);
        let c = random_permutation(128, 2);
        assert!(is_permutation(&a));
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn structured_patterns_are_permutations() {
        for p in [
            shift_permutation(12, 5),
            bit_complement_permutation(16),
            bit_reversal_permutation(32),
            transpose_permutation(16),
        ] {
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn shift_wraps() {
        assert_eq!(shift_permutation(4, 1), vec![1, 2, 3, 0]);
        assert_eq!(shift_permutation(4, 6), vec![2, 3, 0, 1]);
    }

    #[test]
    fn bit_patterns_match_definitions() {
        assert_eq!(bit_complement_permutation(4), vec![3, 2, 1, 0]);
        assert_eq!(bit_reversal_permutation(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        assert_eq!(transpose_permutation(4), vec![0, 2, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_complement_requires_pow2() {
        let _ = bit_complement_permutation(6);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_requires_square() {
        let _ = transpose_permutation(8);
    }
}
