//! Degraded-mode routing: filter any heuristic's selection to paths
//! that survive a fault set.

use crate::{PathSet, RouteError, Router};
use xgft::{FaultSet, PathId, PnId, Topology};

/// Degrade a fault-free path selection in place against a fault set.
///
/// `out` holds a selection computed on the fault-free enumeration (any
/// [`Router`]'s output). Paths crossing a failed link are dropped, then
/// the set is topped back up from the surviving enumeration so it keeps
/// `min(budget, X_surviving)` distinct paths, where `budget` is the
/// incoming selection size. The top-up scan starts at the pair's
/// d-mod-k index and wraps, not at path 0: if every degraded pair
/// topped up from the canonical start, concurrent failures would herd
/// all repaired selections onto the lowest-numbered top switches and
/// manufacture hot spots exactly when the network is most stressed.
/// Rotating by the d-mod-k index keeps replacements spread by
/// destination, the same balancing idea the shift-1 window is built on.
///
/// Returns `Ok(false)` when the selection passed through untouched (no
/// fault affected it), `Ok(true)` when it was modified, and
/// [`RouteError::Disconnected`] when no shortest path of the pair
/// survives (`out` is left empty in that case).
///
/// This free function is the online-reconvergence primitive: a running
/// simulator calls it per affected SD pair against its *current view* of
/// the fault state instead of rebuilding the whole routing.
pub fn degrade_selection(
    topo: &Topology,
    s: PnId,
    d: PnId,
    faults: &FaultSet,
    out: &mut Vec<PathId>,
) -> Result<bool, RouteError> {
    if faults.is_empty() {
        return Ok(false);
    }
    let budget = out.len();
    out.retain(|&p| faults.path_survives(topo, s, d, p));
    if out.len() == budget {
        return Ok(false); // every selected path survived
    }
    // Re-select from the surviving enumeration, preserving the
    // already-selected survivors and topping up from the pair's d-mod-k
    // index (wrapping) so replacements stay spread across pairs.
    let x = topo.num_paths(s, d);
    let start = topo.dmodk_path(s, d).0;
    for n in 0..x {
        if out.len() == budget {
            break;
        }
        let p = PathId((start + n) % x);
        if !out.contains(&p) && faults.path_survives(topo, s, d, p) {
            out.push(p);
        }
    }
    if out.is_empty() {
        return Err(RouteError::Disconnected { src: s, dst: d });
    }
    Ok(true)
}

/// Adapter that makes any [`Router`] fault-aware.
///
/// For each SD pair it runs the inner heuristic on the *fault-free*
/// enumeration (mirroring a subnet manager whose routing tables were
/// computed before the failure), then:
///
/// 1. drops the selected paths that cross a failed link;
/// 2. if fewer than the heuristic's budget survive, tops the set back
///    up from the surviving ALLPATHS enumeration (rotated to start at
///    the pair's d-mod-k index — see [`degrade_selection`]), so the
///    degraded set always has `min(K, X_surviving)` paths;
/// 3. if *no* path of the pair survives, reports
///    [`RouteError::Disconnected`] instead of panicking.
///
/// With an empty fault set the adapter is an exact pass-through: step 1
/// drops nothing and step 2 never triggers, so the selection is
/// bit-for-bit the inner router's.
#[derive(Debug, Clone)]
pub struct FaultAware<R> {
    inner: R,
    faults: FaultSet,
}

impl<R: Router> FaultAware<R> {
    /// Wrap a router with a fault set.
    pub fn new(inner: R, faults: FaultSet) -> Self {
        FaultAware { inner, faults }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The active fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Fill `out` with the degraded-mode selection for `(s, d)`.
    ///
    /// Errors with [`RouteError::Disconnected`] when no shortest path of
    /// the pair survives (`out` is left empty in that case).
    pub fn try_fill_paths(
        &self,
        topo: &Topology,
        s: PnId,
        d: PnId,
        out: &mut Vec<PathId>,
    ) -> Result<(), RouteError> {
        self.inner.fill_paths(topo, s, d, out);
        degrade_selection(topo, s, d, &self.faults, out).map(|_| ())
    }

    /// Owned-set variant of [`FaultAware::try_fill_paths`].
    pub fn try_path_set(&self, topo: &Topology, s: PnId, d: PnId) -> Result<PathSet, RouteError> {
        let mut v = Vec::new();
        self.try_fill_paths(topo, s, d, &mut v)?;
        PathSet::try_new(v)
    }
}

impl<R: Router> Router for FaultAware<R> {
    /// Degraded-mode selection. **Contract deviation:** for a
    /// disconnected pair `out` is left *empty* (the [`Router`] trait
    /// normally guarantees a non-empty set). Callers that must
    /// distinguish disconnection use [`FaultAware::try_fill_paths`].
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        if self.try_fill_paths(topo, s, d, out).is_err() {
            out.clear();
        }
    }

    fn name(&self) -> String {
        if self.faults.is_empty() {
            self.inner.name()
        } else {
            format!("{}+faults", self.inner.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DModK, Disjoint, ShiftOne};
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn empty_fault_set_is_a_pass_through() {
        let topo = fig3();
        let inner = ShiftOne::new(3);
        let fa = FaultAware::new(ShiftOne::new(3), FaultSet::default());
        let (s, d) = (PnId(0), PnId(63));
        assert_eq!(
            fa.try_path_set(&topo, s, d).unwrap(),
            inner.path_set(&topo, s, d)
        );
        assert_eq!(fa.path_set(&topo, s, d), inner.path_set(&topo, s, d));
        assert_eq!(fa.name(), "shift-1(3)");
    }

    #[test]
    fn dead_paths_are_replaced_by_survivors() {
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        // Kill top switch 0 — path 0 dies; shift-1 at the d-mod-k index 7
        // selects {7, 0, 1}; the degraded set must swap 0 for a survivor
        // and keep cardinality 3.
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, xgft::NodeId { level: 3, rank: 0 });
        let fa = FaultAware::new(ShiftOne::new(3), faults.clone());
        let set = fa.try_path_set(&topo, s, d).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set
            .paths()
            .iter()
            .all(|&p| faults.path_survives(&topo, s, d, p)));
        assert!(set.paths().contains(&PathId(7)));
        assert!(set.paths().contains(&PathId(1)));
        assert!(!set.paths().contains(&PathId(0)));
        assert_eq!(fa.name(), "shift-1(3)+faults");
    }

    #[test]
    fn disconnection_is_a_typed_error() {
        let topo = fig3();
        // w_1 = 1: PN 0's single up-link carries every path out of it.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0));
        let fa = FaultAware::new(DModK, faults);
        let err = fa.try_path_set(&topo, PnId(0), PnId(63)).unwrap_err();
        assert_eq!(
            err,
            RouteError::Disconnected {
                src: PnId(0),
                dst: PnId(63)
            }
        );
        // The infallible trait method leaves the set empty.
        let mut out = vec![PathId(9)];
        fa.fill_paths(&topo, PnId(0), PnId(63), &mut out);
        assert!(out.is_empty());
        // Other sources are unaffected.
        assert!(fa.try_path_set(&topo, PnId(1), PnId(63)).is_ok());
    }

    #[test]
    fn degraded_topup_never_duplicates_paths() {
        // Property: for random fault sets, any heuristic wrapped in
        // FaultAware yields a selection with no duplicate PathId, every
        // path surviving, and cardinality min(K, X_surviving) — even
        // when the top-up scan wraps past the end of the enumeration.
        use crate::{RandomK, RouterKind};
        let topos = [
            Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap()),
            Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap()),
            Topology::new(XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).unwrap()),
        ];
        for topo in &topos {
            for fault_seed in 0u64..6 {
                let rate = [0.05, 0.15, 0.4][fault_seed as usize % 3];
                let faults = FaultSet::sample(topo, rate, 0.0, fault_seed);
                for k in [1u64, 2, 3, 4, 8] {
                    for router in [
                        RouterKind::ShiftOne(k),
                        RouterKind::Disjoint(k),
                        RouterKind::DisjointStride(k),
                        RouterKind::RandomK(k, 99),
                    ] {
                        let fa = FaultAware::new(router, faults.clone());
                        // A deterministic spread of SD pairs.
                        let n = topo.num_pns();
                        for i in 0..n.min(8) {
                            let s = PnId(i * (n / 8).max(1) % n);
                            let d = PnId((i * 7 + 3) % n);
                            let mut out = Vec::new();
                            fa.fill_paths(topo, s, d, &mut out);
                            let surviving = faults.num_surviving(topo, s, d);
                            assert_eq!(
                                out.len() as u64,
                                k.min(surviving),
                                "cardinality for {} {s:?}->{d:?}",
                                fa.name()
                            );
                            assert!(
                                out.iter().all(|&p| faults.path_survives(topo, s, d, p)),
                                "dead path selected by {}",
                                fa.name()
                            );
                            let mut sorted = out.clone();
                            sorted.sort_unstable_by_key(|p| p.0);
                            sorted.dedup();
                            assert_eq!(
                                sorted.len(),
                                out.len(),
                                "duplicate PathId from {} {s:?}->{d:?}: {out:?}",
                                fa.name()
                            );
                        }
                    }
                }
                // RandomK's struct form goes through the same adapter.
                let fa = FaultAware::new(RandomK::new(3, 5), faults.clone());
                let mut out = Vec::new();
                fa.fill_paths(topo, PnId(0), PnId(1), &mut out);
                let mut sorted = out.clone();
                sorted.sort_unstable_by_key(|p| p.0);
                sorted.dedup();
                assert_eq!(sorted.len(), out.len());
            }
        }
    }

    #[test]
    fn cardinality_is_min_k_surviving() {
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        // Fail one level-2 up-link: 4 of 8 paths survive.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(2, 0, 0));
        assert_eq!(faults.num_surviving(&topo, s, d), 4);
        for k in [1u64, 2, 4, 6, 8] {
            let fa = FaultAware::new(Disjoint::new(k), faults.clone());
            let set = fa.try_path_set(&topo, s, d).unwrap();
            assert_eq!(set.len() as u64, k.min(4), "budget {k}");
        }
    }
}
