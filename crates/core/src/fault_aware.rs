//! Degraded-mode routing: filter any heuristic's selection to paths
//! that survive a fault set.

use crate::{PathSet, RouteError, Router};
use xgft::{FaultSet, PathId, PnId, Topology};

/// Adapter that makes any [`Router`] fault-aware.
///
/// For each SD pair it runs the inner heuristic on the *fault-free*
/// enumeration (mirroring a subnet manager whose routing tables were
/// computed before the failure), then:
///
/// 1. drops the selected paths that cross a failed link;
/// 2. if fewer than the heuristic's budget survive, tops the set back
///    up from the surviving ALLPATHS enumeration (in canonical order),
///    so the degraded set always has `min(K, X_surviving)` paths;
/// 3. if *no* path of the pair survives, reports
///    [`RouteError::Disconnected`] instead of panicking.
///
/// With an empty fault set the adapter is an exact pass-through: step 1
/// drops nothing and step 2 never triggers, so the selection is
/// bit-for-bit the inner router's.
#[derive(Debug, Clone)]
pub struct FaultAware<R> {
    inner: R,
    faults: FaultSet,
}

impl<R: Router> FaultAware<R> {
    /// Wrap a router with a fault set.
    pub fn new(inner: R, faults: FaultSet) -> Self {
        FaultAware { inner, faults }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The active fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Fill `out` with the degraded-mode selection for `(s, d)`.
    ///
    /// Errors with [`RouteError::Disconnected`] when no shortest path of
    /// the pair survives (`out` is left empty in that case).
    pub fn try_fill_paths(
        &self,
        topo: &Topology,
        s: PnId,
        d: PnId,
        out: &mut Vec<PathId>,
    ) -> Result<(), RouteError> {
        self.inner.fill_paths(topo, s, d, out);
        if self.faults.is_empty() {
            return Ok(());
        }
        let budget = out.len();
        out.retain(|&p| self.faults.path_survives(topo, s, d, p));
        if out.len() == budget {
            return Ok(()); // every selected path survived
        }
        // Re-select from the surviving enumeration, preserving the
        // already-selected survivors and topping up in canonical order.
        for p in topo.all_paths(s, d) {
            if out.len() == budget {
                break;
            }
            if !out.contains(&p) && self.faults.path_survives(topo, s, d, p) {
                out.push(p);
            }
        }
        if out.is_empty() {
            return Err(RouteError::Disconnected { src: s, dst: d });
        }
        Ok(())
    }

    /// Owned-set variant of [`FaultAware::try_fill_paths`].
    pub fn try_path_set(&self, topo: &Topology, s: PnId, d: PnId) -> Result<PathSet, RouteError> {
        let mut v = Vec::new();
        self.try_fill_paths(topo, s, d, &mut v)?;
        PathSet::try_new(v)
    }
}

impl<R: Router> Router for FaultAware<R> {
    /// Degraded-mode selection. **Contract deviation:** for a
    /// disconnected pair `out` is left *empty* (the [`Router`] trait
    /// normally guarantees a non-empty set). Callers that must
    /// distinguish disconnection use [`FaultAware::try_fill_paths`].
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        if self.try_fill_paths(topo, s, d, out).is_err() {
            out.clear();
        }
    }

    fn name(&self) -> String {
        if self.faults.is_empty() {
            self.inner.name()
        } else {
            format!("{}+faults", self.inner.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DModK, Disjoint, ShiftOne};
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn empty_fault_set_is_a_pass_through() {
        let topo = fig3();
        let inner = ShiftOne::new(3);
        let fa = FaultAware::new(ShiftOne::new(3), FaultSet::default());
        let (s, d) = (PnId(0), PnId(63));
        assert_eq!(
            fa.try_path_set(&topo, s, d).unwrap(),
            inner.path_set(&topo, s, d)
        );
        assert_eq!(fa.path_set(&topo, s, d), inner.path_set(&topo, s, d));
        assert_eq!(fa.name(), "shift-1(3)");
    }

    #[test]
    fn dead_paths_are_replaced_by_survivors() {
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        // Kill top switch 0 — path 0 dies; shift-1 at the d-mod-k index 7
        // selects {7, 0, 1}; the degraded set must swap 0 for a survivor
        // and keep cardinality 3.
        let mut faults = FaultSet::new();
        faults.fail_switch(&topo, xgft::NodeId { level: 3, rank: 0 });
        let fa = FaultAware::new(ShiftOne::new(3), faults.clone());
        let set = fa.try_path_set(&topo, s, d).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set
            .paths()
            .iter()
            .all(|&p| faults.path_survives(&topo, s, d, p)));
        assert!(set.paths().contains(&PathId(7)));
        assert!(set.paths().contains(&PathId(1)));
        assert!(!set.paths().contains(&PathId(0)));
        assert_eq!(fa.name(), "shift-1(3)+faults");
    }

    #[test]
    fn disconnection_is_a_typed_error() {
        let topo = fig3();
        // w_1 = 1: PN 0's single up-link carries every path out of it.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0));
        let fa = FaultAware::new(DModK, faults);
        let err = fa.try_path_set(&topo, PnId(0), PnId(63)).unwrap_err();
        assert_eq!(
            err,
            RouteError::Disconnected {
                src: PnId(0),
                dst: PnId(63)
            }
        );
        // The infallible trait method leaves the set empty.
        let mut out = vec![PathId(9)];
        fa.fill_paths(&topo, PnId(0), PnId(63), &mut out);
        assert!(out.is_empty());
        // Other sources are unaffected.
        assert!(fa.try_path_set(&topo, PnId(1), PnId(63)).is_ok());
    }

    #[test]
    fn cardinality_is_min_k_surviving() {
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        // Fail one level-2 up-link: 4 of 8 paths survive.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(2, 0, 0));
        assert_eq!(faults.num_surviving(&topo, s, d), 4);
        for k in [1u64, 2, 4, 6, 8] {
            let fa = FaultAware::new(Disjoint::new(k), faults.clone());
            let set = fa.try_path_set(&topo, s, d).unwrap();
            assert_eq!(set.len() as u64, k.min(4), "budget {k}");
        }
    }
}
