//! The selection engine: one authority for `min(K, X)` path selection.
//!
//! Every consumer of path selections — the flow-level accumulators, the
//! flit-level simulator and the static verifier — needs the same three
//! ingredients: the scheme's canonical selection (behind the [`Router`]
//! trait), the fault-degraded top-up with d-mod-k-rotated scanning
//! ([`degrade_selection`]), and, when selections are queried repeatedly
//! under fault churn, an incremental per-SD-pair cache with blast-radius
//! invalidation. [`SelectionEngine`] packages the three so all consumers
//! compute (and, when cached, share) byte-identical selections instead
//! of re-implementing the pipeline.
//!
//! # Cache coherence
//!
//! The cache is keyed by [`route_key`] and invalidated *incrementally*
//! as the engine's fault view changes through
//! [`SelectionEngine::apply_changes`]:
//!
//! * a **down** event flushes exactly the entries whose selection
//!   crosses a newly dead link (the blast radius);
//! * an **up** event flushes exactly the *degraded* entries whose
//!   canonical path space touches a recovered link — a degraded
//!   selection is a pure function of the survival bits of the pair's
//!   canonical enumeration, so if no canonical path crosses a recovered
//!   link the selection cannot change (and pristine entries cannot
//!   improve at all).
//!
//! Everything else keeps its selection, so reconvergence cost scales
//! with the damage, not with the pair count.

use crate::{degrade_selection, RouteError, Router};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use xgft::{FaultChange, FaultSet, PathId, PnId, Topology};

/// Dense SD-pair key for the selection cache.
pub fn route_key(s: PnId, d: PnId) -> u64 {
    ((s.0 as u64) << 32) | d.0 as u64
}

/// Multiply–xorshift hasher for [`route_key`]s.
///
/// The cache's keys are already uniformly spread 64-bit integers, so the
/// default SipHash (keyed, DoS-resistant) buys nothing here and costs a
/// full keyed permutation per probe. One Fibonacci multiply plus a fold
/// of the high bits mixes every key bit into the table index and keeps
/// iteration order deterministic across runs (the map is only ever
/// *iterated* through [`SelectionEngine::cached_keys`], which sorts).
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteKeyHasher(u64);

impl Hasher for RouteKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by u64 keys): FNV-1a fallback.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, key: u64) {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type RouteKeyMap = HashMap<u64, CachedSelection, BuildHasherDefault<RouteKeyHasher>>;

/// Invert [`route_key`].
pub fn route_key_pair(key: u64) -> (PnId, PnId) {
    (PnId((key >> 32) as u32), PnId(key as u32))
}

/// A cached routing decision for one SD pair, computed against the
/// engine's fault view. `paths` empty means the view considers the pair
/// disconnected (kept cached so repeated queries stay cheap; flushed by
/// the next recovery event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSelection {
    /// The surviving `min(K, X)` selection, possibly topped up.
    pub paths: Vec<PathId>,
    /// Whether faults modified the fault-free selection (degraded
    /// entries are re-examined when links recover).
    pub degraded: bool,
}

/// Lifetime counters of one [`SelectionEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that recomputed the selection (cached mode only).
    pub misses: u64,
    /// Cached selections flushed by fault events (blast-radius
    /// invalidation).
    pub invalidated: u64,
}

impl SelectionStats {
    /// Fraction of queries answered from the cache (0 when nothing was
    /// queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One authority for path selection: scheme dispatch, fault-degraded
/// top-up, and (optionally) the incremental per-SD-pair cache.
///
/// The engine owns a router, a fault *view* (the fault state selections
/// are computed against — possibly lagging the physical truth, see the
/// flit simulator's routing view) and, in cached mode, a map of
/// previously computed selections. An uncached engine with an empty
/// view is an exact pass-through of the router, bit for bit.
#[derive(Debug, Clone)]
pub struct SelectionEngine<R> {
    router: R,
    view: FaultSet,
    cache: Option<RouteKeyMap>,
    stats: SelectionStats,
}

impl<R: Router> SelectionEngine<R> {
    /// An uncached engine with an empty fault view: selections are the
    /// router's, recomputed per query.
    pub fn new(router: R) -> Self {
        SelectionEngine {
            router,
            view: FaultSet::new(),
            cache: None,
            stats: SelectionStats::default(),
        }
    }

    /// An uncached engine over an explicit fault view.
    pub fn with_view(router: R, view: FaultSet) -> Self {
        SelectionEngine {
            router,
            view,
            cache: None,
            stats: SelectionStats::default(),
        }
    }

    /// A cached engine over an explicit fault view: each SD pair is
    /// computed once and invalidated incrementally by
    /// [`SelectionEngine::apply_changes`].
    pub fn cached(router: R, view: FaultSet) -> Self {
        SelectionEngine {
            router,
            view,
            cache: Some(RouteKeyMap::default()),
            stats: SelectionStats::default(),
        }
    }

    /// The wrapped router.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Unwrap the engine, recovering the router.
    pub fn into_router(self) -> R {
        self.router
    }

    /// The fault view selections are computed against.
    pub fn view(&self) -> &FaultSet {
        &self.view
    }

    /// Whether selections are cached.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Number of currently cached selections.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, HashMap::len)
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// Fill `out` with the selection for `(s, d)` against the current
    /// view: the router's fault-free selection with dead paths replaced
    /// by survivors scanned from the pair's d-mod-k index (see
    /// [`degrade_selection`]). In cached mode the result is memoized per
    /// pair — a disconnected pair is cached as an empty selection so
    /// repeated queries stay cheap.
    ///
    /// Returns `Ok(degraded)` on success (`degraded` = faults modified
    /// the fault-free selection) and [`RouteError::Disconnected`] when
    /// no path of the pair survives the view (`out` is left empty).
    pub fn try_select(
        &mut self,
        topo: &Topology,
        s: PnId,
        d: PnId,
        out: &mut Vec<PathId>,
    ) -> Result<bool, RouteError> {
        out.clear();
        if let Some(cache) = self.cache.as_ref() {
            if let Some(sel) = cache.get(&route_key(s, d)) {
                self.stats.hits += 1;
                out.extend_from_slice(&sel.paths);
                return if sel.paths.is_empty() {
                    Err(RouteError::Disconnected { src: s, dst: d })
                } else {
                    Ok(sel.degraded)
                };
            }
            self.stats.misses += 1;
        }
        self.router.fill_paths(topo, s, d, out);
        let result = degrade_selection(topo, s, d, &self.view, out);
        let (degraded, err) = match result {
            Ok(modified) => (modified, None),
            Err(e) => {
                out.clear();
                (true, Some(e))
            }
        };
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(
                route_key(s, d),
                CachedSelection {
                    paths: out.clone(),
                    degraded,
                },
            );
        }
        match err {
            Some(e) => Err(e),
            None => Ok(degraded),
        }
    }

    /// Infallible variant of [`SelectionEngine::try_select`]: a
    /// disconnected pair leaves `out` empty instead of erroring (the
    /// flit simulator's calling convention).
    pub fn select(&mut self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        let _ = self.try_select(topo, s, d, out);
    }

    /// Apply a batch of fault changes to the view and flush exactly the
    /// cached selections the batch invalidates: entries whose *selected*
    /// paths cross a newly dead link (down events) and degraded entries
    /// whose *canonical* path space touches a recovered link (up events
    /// — the selection is a pure function of the survival bits of the
    /// pair's canonical enumeration, so recoveries outside that space
    /// cannot change it, and pristine entries cannot improve at all).
    /// Returns the number of entries flushed.
    pub fn apply_changes(&mut self, topo: &Topology, changes: &[FaultChange]) -> u64 {
        self.apply_changes_inner(topo, changes, None)
    }

    /// [`SelectionEngine::apply_changes`], additionally appending the
    /// [`route_key`] of every flushed entry to `flushed` — the batch's
    /// observed blast radius. Consumers that must re-certify exactly
    /// the selections a change batch may have altered (the routing
    /// controller's per-epoch certificate) scope their audit to these
    /// keys instead of re-proving every pair.
    pub fn apply_changes_collect(
        &mut self,
        topo: &Topology,
        changes: &[FaultChange],
        flushed: &mut Vec<u64>,
    ) -> u64 {
        self.apply_changes_inner(topo, changes, Some(flushed))
    }

    fn apply_changes_inner(
        &mut self,
        topo: &Topology,
        changes: &[FaultChange],
        mut flushed_keys: Option<&mut Vec<u64>>,
    ) -> u64 {
        let mut newly_down = FaultSet::new();
        let mut newly_up = FaultSet::new();
        for &change in changes {
            match change {
                FaultChange::LinkDown(_) | FaultChange::SwitchDown(_) => {
                    change.apply(topo, &mut newly_down);
                }
                // Recovered elements, expressed as a FaultSet so "does a
                // canonical path cross a recovered link" is the same
                // walk as path survival.
                FaultChange::LinkUp(l) => newly_up.fail_link(l),
                FaultChange::SwitchUp(n) => newly_up.fail_switch(topo, n),
            }
            change.apply(topo, &mut self.view);
        }
        let Some(cache) = self.cache.as_mut() else {
            return 0;
        };
        let before = cache.len();
        if !newly_down.is_empty() || !newly_up.is_empty() {
            // The flush predicate runs over the key set in sorted order,
            // never in hash-iteration order: the flushed-key list is an
            // observable output (the batch's recorded blast radius), and
            // every observable sequence in this workspace must be a pure
            // function of the inputs.
            let mut keys: Vec<u64> = cache.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let Some(sel) = cache.get(&key) else { continue };
                let (s, d) = route_key_pair(key);
                let dead = !newly_down.is_empty()
                    && !sel
                        .paths
                        .iter()
                        .all(|&p| newly_down.path_survives(topo, s, d, p));
                // Degraded (including cached-disconnected) entries are
                // re-examined only when a recovery touches the pair's
                // canonical path space.
                let improvable = sel.degraded
                    && !newly_up.is_empty()
                    && (0..topo.num_paths(s, d))
                        .any(|p| !newly_up.path_survives(topo, s, d, PathId(p)));
                if dead || improvable {
                    cache.remove(&key);
                    if let Some(out) = flushed_keys.as_deref_mut() {
                        out.push(key);
                    }
                }
            }
        }
        let flushed = (before - cache.len()) as u64;
        self.stats.invalidated += flushed;
        flushed
    }

    /// The cache's key set in sorted order — the serialization surface
    /// of a simulator snapshot. Selections themselves are *not*
    /// serialized: a restore recomputes them against the restored view
    /// (see [`SelectionEngine::restore_cached`]), which the
    /// cached-vs-cold property test certifies as equivalent.
    pub fn cached_keys(&self) -> Vec<u64> {
        let Some(cache) = self.cache.as_ref() else {
            return Vec::new();
        };
        let mut keys: Vec<u64> = cache.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Rebuild a cached engine from snapshot parts: the fault view the
    /// selections were computed against, the key set exported by
    /// [`SelectionEngine::cached_keys`], and the lifetime counters at
    /// snapshot time. Each key's selection is *recomputed* against the
    /// view (cache contents are derived state, never trusted from the
    /// snapshot); the counters are restored verbatim so post-restore
    /// statistics match the uninterrupted run exactly.
    pub fn restore_cached(
        router: R,
        view: FaultSet,
        topo: &Topology,
        keys: &[u64],
        stats: SelectionStats,
    ) -> Self {
        let mut engine = SelectionEngine::cached(router, view);
        let mut scratch = Vec::new();
        for &key in keys {
            let (s, d) = route_key_pair(key);
            let _ = engine.try_select(topo, s, d, &mut scratch);
        }
        engine.stats = stats;
        engine
    }

    /// The cached selections in deterministic (sorted-key) order — the
    /// iteration surface of the `RT-SELECT` runtime audit.
    pub fn cached_selections(&self) -> Vec<(PnId, PnId, &CachedSelection)> {
        let Some(cache) = self.cache.as_ref() else {
            return Vec::new();
        };
        let mut keys: Vec<u64> = cache.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|key| {
                cache.get(&key).map(|sel| {
                    let (s, d) = route_key_pair(key);
                    (s, d, sel)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DModK, Disjoint, FaultAware, ShiftOne};
    use xgft::{FaultEvent, FaultSchedule, XgftSpec};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn uncached_empty_view_is_a_pass_through() {
        let topo = fig3();
        let mut engine = SelectionEngine::new(ShiftOne::new(3));
        let (s, d) = (PnId(0), PnId(63));
        let mut out = Vec::new();
        assert_eq!(engine.try_select(&topo, s, d, &mut out), Ok(false));
        assert_eq!(out, ShiftOne::new(3).path_set(&topo, s, d).paths());
        assert_eq!(engine.stats(), SelectionStats::default());
        assert_eq!(engine.cache_len(), 0);
        assert!(!engine.is_cached());
    }

    #[test]
    fn cached_engine_matches_fault_aware_adapter() {
        let topo = fig3();
        let faults = FaultSet::sample(&topo, 0.1, 0.0, 3);
        let fa = FaultAware::new(Disjoint::new(4), faults.clone());
        let mut engine = SelectionEngine::cached(Disjoint::new(4), faults);
        let n = topo.num_pns();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                let adapter = fa.try_fill_paths(&topo, s, d, &mut a);
                let engine_r = engine.try_select(&topo, s, d, &mut b);
                assert_eq!(adapter.is_err(), engine_r.is_err(), "({s:?}, {d:?})");
                assert_eq!(a, b, "({s:?}, {d:?})");
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.hits, 0, "each pair queried once");
        assert_eq!(stats.misses, (n as u64) * (n as u64 - 1));
        // A second sweep is answered entirely from the cache, identically.
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (PnId(s), PnId(d));
                fa.fill_paths(&topo, s, d, &mut a);
                engine.select(&topo, s, d, &mut b);
                assert_eq!(a, b);
            }
        }
        assert_eq!(engine.stats().hits, (n as u64) * (n as u64 - 1));
        assert!(engine.stats().hit_rate() > 0.49);
    }

    #[test]
    fn disconnection_is_cached_and_typed() {
        let topo = fig3();
        // w_1 = 1: PN 0's single up-link carries every path out of it.
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(1, 0, 0));
        let mut engine = SelectionEngine::cached(DModK, faults);
        let mut out = vec![PathId(9)];
        let err = engine.try_select(&topo, PnId(0), PnId(63), &mut out);
        assert_eq!(
            err,
            Err(RouteError::Disconnected {
                src: PnId(0),
                dst: PnId(63)
            })
        );
        assert!(out.is_empty());
        // The disconnection is memoized: the repeat is a cache hit with
        // the same typed error.
        let err = engine.try_select(&topo, PnId(0), PnId(63), &mut out);
        assert!(err.is_err());
        assert!(out.is_empty());
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.stats().misses, 1);
    }

    /// Property (cache coherence under churn): across a scripted
    /// fail → recover schedule, a cached engine answers every SD pair
    /// identically to a cold engine recomputing against the same view.
    #[test]
    fn cached_selections_agree_with_cold_recompute_across_fail_recover() {
        let topo = fig3();
        let link_a = topo.up_link(2, 0, 0);
        let link_b = topo.up_link(3, 1, 2);
        let schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 0,
                change: FaultChange::LinkDown(link_a),
            },
            FaultEvent {
                at: 1,
                change: FaultChange::LinkDown(link_b),
            },
            FaultEvent {
                at: 2,
                change: FaultChange::SwitchDown(xgft::NodeId { level: 3, rank: 1 }),
            },
            FaultEvent {
                at: 3,
                change: FaultChange::LinkUp(link_a),
            },
            FaultEvent {
                at: 4,
                change: FaultChange::SwitchUp(xgft::NodeId { level: 3, rank: 1 }),
            },
            FaultEvent {
                at: 5,
                change: FaultChange::LinkUp(link_b),
            },
        ]);
        let mut engine = SelectionEngine::cached(ShiftOne::new(4), FaultSet::new());
        let n = topo.num_pns();
        let (mut warm, mut cold) = (Vec::new(), Vec::new());
        for epoch in 0..=schedule.events().len() {
            // Warm the cache on a spread of pairs *before* the next batch
            // so invalidation has something to bite on.
            for i in 0..n {
                let (s, d) = (PnId(i), PnId((i * 13 + 7) % n));
                if s == d {
                    continue;
                }
                engine.select(&topo, s, d, &mut warm);
            }
            if let Some(e) = schedule.events().get(epoch) {
                engine.apply_changes(&topo, &[e.change]);
            }
            // Every pair: cached answer == cold recomputation against an
            // identical view.
            let mut reference = SelectionEngine::with_view(ShiftOne::new(4), engine.view().clone());
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (PnId(s), PnId(d));
                    let w = engine.try_select(&topo, s, d, &mut warm);
                    let c = reference.try_select(&topo, s, d, &mut cold);
                    assert_eq!(w, c, "epoch {epoch} ({s:?}, {d:?})");
                    assert_eq!(warm, cold, "epoch {epoch} ({s:?}, {d:?})");
                }
            }
        }
        let stats = engine.stats();
        assert!(stats.hits > 0, "the churn sweep must hit the cache");
        assert!(
            stats.invalidated > 0,
            "down events must flush blast-radius entries"
        );
        // After full recovery the view is empty again: selections equal
        // the fault-free router's.
        assert!(engine.view().is_empty());
        let mut plain = Vec::new();
        for (s, d, sel) in engine.cached_selections() {
            ShiftOne::new(4).fill_paths(&topo, s, d, &mut plain);
            assert_eq!(sel.paths, plain, "({s:?}, {d:?}) after recovery");
            assert!(!sel.degraded);
        }
    }

    #[test]
    fn up_events_flush_only_degraded_entries() {
        let topo = fig3();
        let link = topo.up_link(2, 0, 0);
        // K = 8 selects all 8 paths of (0, 63), four of which cross the
        // link; pair (1, 0) stays below level 2 and never touches it.
        let mut engine = SelectionEngine::cached(ShiftOne::new(8), FaultSet::new());
        let mut out = Vec::new();
        engine.select(&topo, PnId(0), PnId(63), &mut out);
        engine.select(&topo, PnId(1), PnId(0), &mut out);
        assert_eq!(engine.cache_len(), 2);
        let flushed = engine.apply_changes(&topo, &[FaultChange::LinkDown(link)]);
        assert_eq!(
            flushed, 1,
            "only the crossing selection is in the blast radius"
        );
        engine.select(&topo, PnId(0), PnId(63), &mut out);
        assert!(!out.is_empty(), "degraded top-up found a survivor");
        let flushed = engine.apply_changes(&topo, &[FaultChange::LinkUp(link)]);
        assert_eq!(flushed, 1, "recovery flushes exactly the degraded entry");
        assert_eq!(engine.stats().invalidated, 2);
    }

    #[test]
    fn up_events_spare_degraded_entries_outside_the_recovery_blast_radius() {
        let topo = fig3();
        // Two level-2 up-links in different subtrees: (0, 63) can cross
        // the first, (16, 31) only the second (both pairs NCA at level
        // 2+ — pick pairs whose canonical spaces are disjoint at the
        // failed level's subtree).
        let link_a = topo.up_link(2, 0, 0);
        let link_b = topo.up_link(2, 7, 1);
        let mut engine = SelectionEngine::cached(ShiftOne::new(8), FaultSet::new());
        let mut out = Vec::new();
        engine.apply_changes(
            &topo,
            &[FaultChange::LinkDown(link_a), FaultChange::LinkDown(link_b)],
        );
        engine.select(&topo, PnId(0), PnId(63), &mut out); // degraded via link_a
        engine.select(&topo, PnId(28), PnId(19), &mut out); // degraded via link_b
        assert_eq!(engine.cache_len(), 2);
        let degraded = engine
            .cached_selections()
            .iter()
            .filter(|(_, _, sel)| sel.degraded)
            .count();
        assert_eq!(degraded, 2, "both entries must be degraded");
        // Recovering link_a must flush only the pair whose canonical
        // space contains it — the other degraded entry is untouched.
        let flushed = engine.apply_changes(&topo, &[FaultChange::LinkUp(link_a)]);
        assert_eq!(
            flushed, 1,
            "recovery must flush only the blast-radius entry"
        );
        assert_eq!(engine.cache_len(), 1);
    }

    /// Regression for the 24 % steady-state hit rate: under uniform
    /// repeated queries with Poisson fault churn, recoveries used to
    /// flush *every* degraded entry network-wide, so each repair dumped
    /// thousands of selections. With recovery invalidation scoped to
    /// the canonical-path blast radius, steady-state traffic must be
    /// answered overwhelmingly from the cache.
    #[test]
    fn steady_state_churn_traffic_is_mostly_cache_hits() {
        let topo = fig3();
        let schedule = FaultSchedule::poisson(&topo, 5e-5, 1_500.0, 10_000, 11);
        assert!(!schedule.is_empty());
        let mut engine = SelectionEngine::cached(ShiftOne::new(4), FaultSet::new());
        let n = topo.num_pns();
        let mut out = Vec::new();
        let sweep = |engine: &mut SelectionEngine<ShiftOne>, out: &mut Vec<PathId>| {
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        engine.select(&topo, PnId(s), PnId(d), out);
                    }
                }
            }
        };
        // Warm sweep, then steady state: traffic requeries every pair
        // several times between 500-cycle batches of fault events (the
        // flit-sim regime — traffic is much faster than fault churn).
        sweep(&mut engine, &mut out);
        let warm = engine.stats();
        assert_eq!(warm.misses, (n as u64) * (n as u64 - 1));
        let mut from = 0u64;
        for through in (500..=10_000u64).step_by(500) {
            let changes: Vec<FaultChange> = schedule
                .events_between(from, through)
                .iter()
                .map(|e| e.change)
                .collect();
            engine.apply_changes(&topo, &changes);
            from = through + 1;
            for _ in 0..4 {
                sweep(&mut engine, &mut out);
            }
        }
        let stats = engine.stats();
        let steady_hits = stats.hits;
        let steady_misses = stats.misses - warm.misses;
        let rate = steady_hits as f64 / (steady_hits + steady_misses) as f64;
        assert!(
            stats.invalidated > 0,
            "the churn must actually flush entries"
        );
        assert!(
            rate > 0.85,
            "steady-state uniform traffic must be mostly cache hits, got {rate:.3}"
        );
    }

    #[test]
    fn apply_changes_collect_reports_the_flushed_keys() {
        let topo = fig3();
        let link = topo.up_link(2, 0, 0);
        let mut engine = SelectionEngine::cached(ShiftOne::new(8), FaultSet::new());
        let mut out = Vec::new();
        engine.select(&topo, PnId(0), PnId(63), &mut out);
        engine.select(&topo, PnId(1), PnId(0), &mut out);
        let mut flushed = Vec::new();
        let n = engine.apply_changes_collect(&topo, &[FaultChange::LinkDown(link)], &mut flushed);
        assert_eq!(n, 1);
        assert_eq!(flushed, vec![route_key(PnId(0), PnId(63))]);
        // The recovery flushes the same (now degraded) entry.
        engine.select(&topo, PnId(0), PnId(63), &mut out);
        flushed.clear();
        let n = engine.apply_changes_collect(&topo, &[FaultChange::LinkUp(link)], &mut flushed);
        assert_eq!(n, 1);
        assert_eq!(flushed, vec![route_key(PnId(0), PnId(63))]);
    }

    #[test]
    fn restore_cached_rebuilds_identical_cache_and_stats() {
        let topo = fig3();
        let mut faults = FaultSet::new();
        faults.fail_link(topo.up_link(2, 0, 0));
        let mut engine = SelectionEngine::cached(ShiftOne::new(4), faults);
        let mut out = Vec::new();
        for &(s, d) in &[(0u32, 63u32), (1, 0), (0, 63), (5, 40), (17, 3)] {
            engine.select(&topo, PnId(s), PnId(d), &mut out);
        }
        let keys = engine.cached_keys();
        let restored = SelectionEngine::restore_cached(
            ShiftOne::new(4),
            engine.view().clone(),
            &topo,
            &keys,
            engine.stats(),
        );
        assert_eq!(restored.stats(), engine.stats());
        assert_eq!(restored.cached_keys(), keys);
        let (orig, rest) = (engine.cached_selections(), restored.cached_selections());
        assert_eq!(orig.len(), rest.len());
        for (a, b) in orig.iter().zip(rest.iter()) {
            assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
        }
    }

    #[test]
    fn route_key_roundtrip() {
        let (s, d) = (PnId(123), PnId(4_000_000));
        assert_eq!(route_key_pair(route_key(s, d)), (s, d));
        assert_ne!(route_key(PnId(1), PnId(2)), route_key(PnId(2), PnId(1)));
    }

    #[test]
    fn cached_selections_iterate_in_sorted_key_order() {
        let topo = fig3();
        let mut engine = SelectionEngine::cached(DModK, FaultSet::new());
        let mut out = Vec::new();
        for &(s, d) in &[(9u32, 2u32), (0, 63), (3, 17), (0, 1)] {
            engine.select(&topo, PnId(s), PnId(d), &mut out);
        }
        let keys: Vec<u64> = engine
            .cached_selections()
            .iter()
            .map(|&(s, d, _)| route_key(s, d))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 4);
    }
}
