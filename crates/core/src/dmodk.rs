//! The destination-mod-k and source-mod-k single-path baselines.

use crate::{PathSet, Router};
use xgft::{PathId, PnId, Topology};

/// Destination-mod-k routing (§3.3): climbing from level `k-1` to level
/// `k`, take the up port `⌊d / Π_{i<k} w_i⌋ mod w_k`.
///
/// This is the de-facto standard single-path scheme for fat-trees (it is
/// what OpenSM's fat-tree routing engine computes) and the anchor the
/// shift-1 and disjoint heuristics are built on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DModK;

impl Router for DModK {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        out.push(topo.dmodk_path(s, d));
    }

    fn path_set(&self, topo: &Topology, s: PnId, d: PnId) -> PathSet {
        PathSet::single(topo.dmodk_path(s, d))
    }

    fn name(&self) -> String {
        "d-mod-k".to_owned()
    }
}

/// Source-mod-k routing: the mirror-image scheme keyed on the source
/// address. The paper notes its performance is indistinguishable from
/// d-mod-k; it is provided for completeness and for ablation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SModK;

impl Router for SModK {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        out.push(topo.smodk_path(s, d));
    }

    fn name(&self) -> String {
        "s-mod-k".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    #[test]
    fn dmodk_matches_paper_example() {
        let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
        let set = DModK.path_set(&topo, PnId(0), PnId(63));
        assert_eq!(set.paths(), &[PathId(7)]);
        assert_eq!(DModK.name(), "d-mod-k");
    }

    #[test]
    fn single_path_for_every_pair() {
        let topo = Topology::new(XgftSpec::new(&[3, 2], &[2, 3]).unwrap());
        for s in 0..topo.num_pns() {
            for d in 0..topo.num_pns() {
                let (s, d) = (PnId(s), PnId(d));
                for r in [&DModK as &dyn Router, &SModK] {
                    let set = r.path_set(&topo, s, d);
                    assert_eq!(set.len(), 1);
                    assert!(set.paths()[0].0 < topo.num_paths(s, d));
                }
            }
        }
    }

    #[test]
    fn destination_concentration_property() {
        // All sources with the same NCA level route to a destination
        // through the same top-level switch — the root cause of
        // Theorem 2's adversarial pattern.
        let topo = Topology::new(XgftSpec::new(&[4, 4], &[1, 4]).unwrap());
        let d = PnId(12);
        let mut apexes = std::collections::HashSet::new();
        for s in 0..topo.num_pns() {
            let s = PnId(s);
            if topo.nca_level(s, d) == 2 {
                let p = topo.dmodk_path(s, d);
                let nodes = topo.path_nodes(s, d, p);
                apexes.insert(nodes[2]);
            }
        }
        assert_eq!(apexes.len(), 1);
    }
}
