//! The random limited multi-path heuristic.

use crate::Router;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xgft::{PathId, PnId, Topology};

/// Random heuristic (§4.2.1): pick `min(K, X)` *distinct* paths
/// uniformly at random among the `X` shortest paths of the pair.
///
/// The randomness is a pure function of `(seed, s, d)`, so the scheme is
/// oblivious and reproducible: the same router object always returns the
/// same set for a pair, which is what a real subnet manager would
/// install. Experiments that average over random-routing seeds (the
/// paper uses five) construct five `RandomK` routers with different
/// seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomK {
    k: u64,
    seed: u64,
}

impl RandomK {
    /// Build a random router with path budget `K ≥ 1` and a seed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64, seed: u64) -> Self {
        Self::try_new(k, seed).expect("the path budget K must be at least 1")
    }

    /// Fallible constructor: [`RouteError::ZeroBudget`](crate::RouteError::ZeroBudget)
    /// instead of a panic when `k == 0`.
    pub fn try_new(k: u64, seed: u64) -> Result<Self, crate::RouteError> {
        if k == 0 {
            return Err(crate::RouteError::ZeroBudget);
        }
        Ok(RandomK { k, seed })
    }

    /// The configured path budget.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// SplitMix64 finalizer — mixes `(seed, s, d)` into an RNG seed so
    /// that per-pair streams are independent.
    fn pair_seed(&self, s: PnId, d: PnId) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((s.0 as u64) << 32 | d.0 as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Router for RandomK {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        let x = topo.num_paths(s, d);
        let take = self.k.min(x);
        if take == x {
            // Whole path space: no sampling needed (this is UMULTI).
            out.extend((0..x).map(PathId));
            return;
        }
        let mut rng = SmallRng::seed_from_u64(self.pair_seed(s, d));
        // Floyd's algorithm: uniform sample of `take` distinct values
        // from 0..x in O(take) expected work.
        for j in (x - take)..x {
            let t = rng.gen_range(0..=j);
            let candidate = PathId(t);
            if out.contains(&candidate) {
                out.push(PathId(j));
            } else {
                out.push(candidate);
            }
        }
    }

    fn name(&self) -> String {
        format!("random({})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn deterministic_per_pair() {
        let topo = fig3();
        let r = RandomK::new(3, 42);
        let a = r.path_set(&topo, PnId(0), PnId(63));
        let b = r.path_set(&topo, PnId(0), PnId(63));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let topo = fig3();
        let r1 = RandomK::new(2, 1);
        let r2 = RandomK::new(2, 2);
        let differs = (0..topo.num_pns())
            .any(|d| r1.path_set(&topo, PnId(0), PnId(d)) != r2.path_set(&topo, PnId(0), PnId(d)));
        assert!(differs);
    }

    #[test]
    fn distinct_valid_and_exact_cardinality() {
        let topo = fig3();
        for k in [1u64, 2, 3, 7, 8, 20] {
            let r = RandomK::new(k, 7);
            for (s, d) in [(0u32, 63u32), (5, 6), (0, 4), (9, 9)] {
                let (s, d) = (PnId(s), PnId(d));
                let set = r.path_set(&topo, s, d);
                let x = topo.num_paths(s, d);
                assert_eq!(set.len() as u64, k.min(x));
                let mut v: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
                v.sort_unstable();
                v.dedup();
                assert_eq!(v.len(), set.len());
                assert!(v.iter().all(|&p| p < x));
            }
        }
    }

    #[test]
    fn full_budget_is_umulti() {
        let topo = fig3();
        let set = RandomK::new(8, 3).path_set(&topo, PnId(0), PnId(63));
        let ids: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Over many destinations, each path index of an 8-path pair class
        // should be selected a similar number of times.
        let topo = fig3();
        let r = RandomK::new(1, 99);
        let mut counts = [0u32; 8];
        // All pairs (s, d) with NCA level 3 have 8 paths.
        for s in 0..16u32 {
            for d in 48..64u32 {
                let set = r.path_set(&topo, PnId(s), PnId(d));
                counts[set.paths()[0].0 as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 256);
        for &c in &counts {
            // Expected 32 per bucket; allow generous slack for 256 draws.
            assert!((12..=60).contains(&c), "count {c} too far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        let _ = RandomK::new(0, 0);
    }
}
