//! Unlimited multi-path routing.

use crate::Router;
use xgft::{PathId, PnId, Topology};

/// UMULTI (§4.1): route every SD pair over *all* of its shortest paths
/// with the traffic split evenly.
///
/// Theorem 1 of the paper proves `PERF(UMULTI) = 1`: for any traffic
/// matrix its maximum link load equals the sub-tree cut lower bound
/// `ML(TM)`, so no routing can do better. The catch is resource cost —
/// on a 24-port 3-tree a pair can have 144 paths, overflowing e.g. the
/// InfiniBand LID space (see [`crate::lid`]), which is exactly why
/// limited multi-path routing exists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Umulti;

impl Router for Umulti {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        out.extend((0..topo.num_paths(s, d)).map(PathId));
    }

    fn name(&self) -> String {
        "umulti".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    #[test]
    fn uses_every_path() {
        let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
        let set = Umulti.path_set(&topo, PnId(0), PnId(63));
        assert_eq!(set.len(), 8);
        assert!((set.fraction() - 0.125).abs() < 1e-12);
        let set = Umulti.path_set(&topo, PnId(0), PnId(1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn self_pair_has_the_empty_path() {
        let topo = Topology::new(XgftSpec::new(&[2], &[3]).unwrap());
        let set = Umulti.path_set(&topo, PnId(1), PnId(1));
        assert_eq!(set.paths(), &[PathId(0)]);
    }
}
