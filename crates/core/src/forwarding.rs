//! Destination-based forwarding tables — the InfiniBand realization of
//! limited multi-path routing.
//!
//! InfiniBand switches forward by *destination LID* only: a linear
//! forwarding table (LFT) maps each LID to one output port. Multi-path
//! routing is realized by giving every destination `K` LIDs (via the
//! LMC field) and programming the `j`-th LID of every destination as an
//! independent single-path routing — "K copies of d-mod-k", exactly how
//! the paper describes the shift-1 and disjoint heuristics.
//!
//! A per-LID routing must be *source-independent*: the output port at a
//! switch may depend only on (switch, destination LID). The universal
//! source-independent form on an XGFT is a **digit-shifted d-mod-k**:
//! LID slot `j` carries a shift vector `c = (c_1, …, c_h)` with
//! `c_t < w_t`, and the up-port taken from level `t-1` to level `t` is
//! `(u_t(d) + c_t) mod w_t` where `u_t(d)` is the plain d-mod-k digit.
//! Downward forwarding is the usual destination-digit descent.
//!
//! Slot orderings recover the paper's heuristics:
//!
//! * [`SlotOrder::TopFirst`] assigns shift vectors that increment the
//!   *top* digit fastest — the LFT realization of **shift-1**;
//! * [`SlotOrder::BottomFirst`] increments the *bottom* digit fastest
//!   (mixed-radix van-der-Corput order) — the LFT realization of
//!   **disjoint**.
//!
//! **Realizability note.** The paper defines the heuristics by *index*
//! arithmetic — path `(i + δ) mod X` — whose digit carries depend on
//! the pair's NCA level and therefore on the *source*; destination-based
//! tables cannot express that. The digit-wise shift implemented here is
//! the closest source-independent scheme: per destination it selects the
//! same *set* of low-level forks (first `w_1` slots are fully
//! link-disjoint, the first `w_1 w_2` fork at level 1, and so on), it
//! covers the pair's whole path space bijectively across slots, and it
//! degrades to the pair's smaller path space on low-NCA pairs exactly as
//! an LFT must (a switch cannot know where a packet came from). Slot 0
//! is always plain d-mod-k.

use crate::lid;
use xgft::{NodeId, PnId, Topology, MAX_HEIGHT};

/// Per-slot digit shifts `c_1..c_h` applied on top of d-mod-k.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftVector(Vec<u32>);

impl ShiftVector {
    /// The shift applied at level `t` (1-based).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `t` is outside `1..=h`
    /// (previously a silent index panic; use [`ShiftVector::try_at`] for
    /// a fallible lookup).
    pub fn at(&self, t: usize) -> u32 {
        match self.try_at(t) {
            Some(c) => c,
            None => panic!(
                "shift level {t} out of range 1..={} for this vector",
                self.0.len()
            ),
        }
    }

    /// The shift applied at level `t` (1-based), or `None` when `t` is
    /// outside `1..=h`.
    pub fn try_at(&self, t: usize) -> Option<u32> {
        t.checked_sub(1).and_then(|i| self.0.get(i)).copied()
    }

    /// Number of levels the vector covers (the tree height).
    pub fn levels(&self) -> usize {
        self.0.len()
    }
}

/// How LID slots map to shift vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOrder {
    /// Top digit varies fastest: consecutive slots differ at the top
    /// level only (shift-1 semantics).
    TopFirst,
    /// Bottom digit varies fastest: consecutive slots fork as low as
    /// possible (disjoint semantics).
    BottomFirst,
}

/// The shift vectors for `k` LID slots on a topology.
pub fn shift_vectors(topo: &Topology, k: u64, order: SlotOrder) -> Vec<ShiftVector> {
    let h = topo.height();
    let max = topo.w_prod(h);
    (0..k.min(max))
        .map(|j| slot_vector(topo, j, order))
        .collect()
}

fn slot_vector(topo: &Topology, j: u64, order: SlotOrder) -> ShiftVector {
    let h = topo.height();
    let mut c = vec![0u32; h];
    let mut rem = j;
    match order {
        SlotOrder::BottomFirst => {
            for t in 1..=h {
                let w = topo.spec().w_at(t) as u64;
                c[t - 1] = (rem % w) as u32;
                rem /= w;
            }
        }
        SlotOrder::TopFirst => {
            for t in (1..=h).rev() {
                let w = topo.spec().w_at(t) as u64;
                c[t - 1] = (rem % w) as u32;
                rem /= w;
            }
        }
    }
    ShiftVector(c)
}

/// Complete destination-LID forwarding state for one fabric: per-switch
/// LFTs plus the per-PN injection port choice.
///
/// Table sizes mirror real subnet-manager output: every switch stores
/// `N · K` entries.
#[derive(Debug, Clone)]
pub struct ForwardingTables {
    k: u64,
    lmc: u32,
    /// `tables[level-1][switch_rank][dst*k + slot]` = output port.
    tables: Vec<Vec<Vec<u16>>>,
    /// `pn_ports[pn? not needed — same formula]`: injection up-port per
    /// `(dst, slot)`, identical for every source PN (source-independent
    /// by construction), stored once.
    pn_ports: Vec<u16>,
    num_pns: u32,
}

impl ForwardingTables {
    /// Program LFTs for `k` paths per destination in the given slot
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `k` needs an LMC beyond InfiniBand's 3-bit field
    /// (`k > 128`) — the hard resource wall the paper works around. Use
    /// [`ForwardingTables::try_build`] to get the typed
    /// [`RouteError::BudgetExceedsLmc`](crate::RouteError::BudgetExceedsLmc)
    /// instead.
    pub fn build(topo: &Topology, k: u64, order: SlotOrder) -> Self {
        match Self::try_build(topo, k, order) {
            Ok(ft) => ft,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`ForwardingTables::build`]:
    /// [`RouteError::BudgetExceedsLmc`](crate::RouteError::BudgetExceedsLmc)
    /// instead of a panic when `k > 128`.
    pub fn try_build(topo: &Topology, k: u64, order: SlotOrder) -> Result<Self, crate::RouteError> {
        if k == 0 {
            return Err(crate::RouteError::ZeroBudget);
        }
        let lmc = lid::lmc_for_budget(k).ok_or(crate::RouteError::BudgetExceedsLmc { k })?;
        let n = topo.num_pns();
        let h = topo.height();
        let vectors = shift_vectors(topo, k, order);
        let k_eff = vectors.len() as u64;

        // Injection ports (level 0 → 1), shared by all sources.
        let mut pn_ports = vec![0u16; (n as u64 * k) as usize];
        for d in 0..n {
            for j in 0..k {
                let v = &vectors[(j % k_eff) as usize];
                let u1 = dmodk_digit(topo, PnId(d), 1);
                pn_ports[(d as u64 * k + j) as usize] =
                    ((u1 + v.at(1)) % topo.spec().w_at(1)) as u16;
            }
        }

        let mut tables = Vec::with_capacity(h);
        let mut digits = [0u32; MAX_HEIGHT];
        for l in 1..=h {
            let mut level_tables = Vec::with_capacity(topo.nodes_at_level(l) as usize);
            for rank in 0..topo.nodes_at_level(l) {
                let sw = NodeId {
                    level: l as u8,
                    rank,
                };
                topo.digits_of(sw, &mut digits);
                let mut lft = vec![0u16; (n as u64 * k) as usize];
                for d in 0..n {
                    let dst = PnId(d);
                    let in_subtree = (l + 1..=h).all(|i| topo.pn_digit(dst, i) == digits[i - 1]);
                    for j in 0..k {
                        let v = &vectors[(j % k_eff) as usize];
                        let port = if in_subtree {
                            // Descend toward the destination's digit.
                            (topo.down_port_offset(l) + topo.pn_digit(dst, l)) as u16
                        } else {
                            // Climb with the slot's shifted d-mod-k digit.
                            let t = l + 1;
                            let u = dmodk_digit(topo, dst, t);
                            ((u + v.at(t)) % topo.spec().w_at(t)) as u16
                        };
                        lft[(d as u64 * k + j) as usize] = port;
                    }
                }
                level_tables.push(lft);
            }
            tables.push(level_tables);
        }
        Ok(ForwardingTables {
            k,
            lmc,
            tables,
            pn_ports,
            num_pns: n,
        })
    }

    /// Paths per destination these tables realize.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The LMC value a subnet manager would program (`2^lmc ≥ k`).
    pub fn lmc(&self) -> u32 {
        self.lmc
    }

    /// The LID addressing `(dst, slot)`: base LID of the destination
    /// plus the slot offset (LID 0 is reserved, ports get consecutive
    /// `2^lmc` blocks).
    pub fn lid(&self, dst: PnId, slot: u64) -> u64 {
        debug_assert!(slot < self.k);
        1 + ((dst.0 as u64) << self.lmc) + slot
    }

    /// Output port a switch forwards `(dst, slot)` to.
    pub fn lookup(&self, sw: NodeId, dst: PnId, slot: u64) -> u16 {
        assert!(sw.level >= 1, "processing nodes use injection_port()");
        self.tables[sw.level as usize - 1][sw.rank as usize]
            [(dst.0 as u64 * self.k + slot) as usize]
    }

    /// Injection port a source PN uses for `(dst, slot)`.
    pub fn injection_port(&self, dst: PnId, slot: u64) -> u16 {
        self.pn_ports[(dst.0 as u64 * self.k + slot) as usize]
    }

    /// Walk the tables from `src` toward `(dst, slot)` and return the
    /// node sequence, or an error describing the failure (loop or port
    /// mismatch) — the subnet-manager validation step.
    pub fn route(
        &self,
        topo: &Topology,
        src: PnId,
        dst: PnId,
        slot: u64,
    ) -> Result<Vec<NodeId>, String> {
        let mut node = NodeId::pn(src);
        let mut nodes = vec![node];
        if src == dst {
            return Ok(nodes);
        }
        let mut port = self.injection_port(dst, slot) as u32;
        let limit = 2 * topo.height() + 2;
        for _ in 0..limit {
            let link = topo.link_from_port(node, port);
            node = topo.endpoints(link).to;
            nodes.push(node);
            if node == NodeId::pn(dst) {
                return Ok(nodes);
            }
            if node.level == 0 {
                return Err(format!(
                    "route for ({}, {}) slot {slot} ejected at the wrong PN {}",
                    src.0, dst.0, node.rank
                ));
            }
            port = self.lookup(node, dst, slot) as u32;
        }
        Err(format!(
            "route for ({}, {}) slot {slot} did not terminate",
            src.0, dst.0
        ))
    }

    /// Total LFT entries across all switches (table-memory footprint a
    /// fabric would dedicate to this configuration).
    pub fn total_entries(&self) -> u64 {
        self.tables
            .iter()
            .map(|lvl| lvl.iter().map(|t| t.len() as u64).sum::<u64>())
            .sum()
    }

    /// Number of processing nodes addressed.
    pub fn num_pns(&self) -> u32 {
        self.num_pns
    }
}

/// Plain d-mod-k up-port digit at level `t`.
fn dmodk_digit(topo: &Topology, dst: PnId, t: usize) -> u32 {
    ((dst.0 as u64 / topo.w_prod(t - 1)) % topo.spec().w_at(t) as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Disjoint, Router, ShiftOne};
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn slot_vectors_cover_orders() {
        let topo = fig3(); // w = (1, 2, 4)
        let bottom = shift_vectors(&topo, 8, SlotOrder::BottomFirst);
        // Bottom-first: digit 2 (w=2) varies before digit 3 (w=4);
        // digit 1 has radix 1 and stays 0.
        assert_eq!(bottom[0].0, vec![0, 0, 0]);
        assert_eq!(bottom[1].0, vec![0, 1, 0]);
        assert_eq!(bottom[2].0, vec![0, 0, 1]);
        let top = shift_vectors(&topo, 8, SlotOrder::TopFirst);
        assert_eq!(top[0].0, vec![0, 0, 0]);
        assert_eq!(top[1].0, vec![0, 0, 1]);
        assert_eq!(top[4].0, vec![0, 1, 0]);
        // Vectors are capped at the path-space size.
        assert_eq!(shift_vectors(&topo, 100, SlotOrder::TopFirst).len(), 8);
    }

    #[test]
    fn every_route_is_a_valid_shortest_path() {
        let topo = fig3();
        let ft = ForwardingTables::build(&topo, 4, SlotOrder::BottomFirst);
        for s in 0..topo.num_pns() {
            for d in 0..topo.num_pns() {
                let (s, d) = (PnId(s), PnId(d));
                for slot in 0..4 {
                    let nodes = ft.route(&topo, s, d, slot).expect("route must verify");
                    if s == d {
                        assert_eq!(nodes.len(), 1);
                        continue;
                    }
                    let kappa = topo.nca_level(s, d);
                    assert_eq!(nodes.len(), 2 * kappa + 1, "LFT route must be shortest");
                }
            }
        }
    }

    #[test]
    fn slots_cover_the_full_path_space_bijectively() {
        // For pairs whose NCA is the top level, the X slots reach X
        // distinct apexes (digit-wise shifting is a bijection), for both
        // orders, and the slot-0 path is d-mod-k — the LFT analogue of
        // the router guarantee.
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
            let ft = ForwardingTables::build(&topo, 8, order);
            let mut apexes = std::collections::HashSet::new();
            for slot in 0..8 {
                let nodes = ft.route(&topo, s, d, slot).unwrap();
                apexes.insert(nodes[3]);
            }
            assert_eq!(apexes.len(), 8, "{order:?} slots must cover all paths");
        }
    }

    #[test]
    fn bottom_first_slots_fork_low_like_disjoint() {
        // The defining property of the disjoint heuristic survives the
        // LFT realization: on a tree with w_1 = 2 the first two
        // bottom-first slots are fully link-disjoint, while the first
        // two top-first slots differ only at the top level.
        let topo = Topology::new(XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).unwrap());
        let (s, d) = (PnId(0), PnId(7));
        let low = ForwardingTables::build(&topo, 2, SlotOrder::BottomFirst);
        let a = low.route(&topo, s, d, 0).unwrap();
        let b = low.route(&topo, s, d, 1).unwrap();
        for (x, y) in a[1..a.len() - 1].iter().zip(&b[1..b.len() - 1]) {
            assert_ne!(x, y, "bottom-first slot pair must share no switch");
        }
        let top = ForwardingTables::build(&topo, 2, SlotOrder::TopFirst);
        let a = top.route(&topo, s, d, 0).unwrap();
        let b = top.route(&topo, s, d, 1).unwrap();
        // Same path except at the apex.
        assert_eq!(a[1], b[1]);
        assert_eq!(a[2], b[2]);
        assert_ne!(a[3], b[3]);
        assert_eq!(a[5], b[5]);
        // And the router-level heuristics agree on who forks low.
        let dj = Disjoint::new(2).path_set(&topo, s, d);
        let sh = ShiftOne::new(2).path_set(&topo, s, d);
        assert_ne!(dj, sh);
    }

    #[test]
    fn lower_pairs_cycle_through_their_path_space() {
        let topo = fig3();
        let ft = ForwardingTables::build(&topo, 8, SlotOrder::BottomFirst);
        let (s, d) = (PnId(0), PnId(4)); // NCA level 2, X = 2 paths
        let mut apexes = std::collections::HashSet::new();
        for slot in 0..8 {
            let nodes = ft.route(&topo, s, d, slot).unwrap();
            apexes.insert(nodes[2]);
        }
        assert_eq!(apexes.len(), 2, "slots must cover the pair's 2-path space");
    }

    #[test]
    fn lids_are_disjoint_blocks() {
        let topo = fig3();
        let ft = ForwardingTables::build(&topo, 4, SlotOrder::BottomFirst);
        assert_eq!(ft.lmc(), 2);
        let mut seen = std::collections::HashSet::new();
        for d in 0..topo.num_pns() {
            for slot in 0..4 {
                assert!(seen.insert(ft.lid(PnId(d), slot)), "LID collision");
            }
        }
        assert!(!seen.contains(&0), "LID 0 is reserved");
    }

    #[test]
    fn table_footprint_scales_with_k() {
        let topo = fig3();
        let k1 = ForwardingTables::build(&topo, 1, SlotOrder::BottomFirst).total_entries();
        let k4 = ForwardingTables::build(&topo, 4, SlotOrder::BottomFirst).total_entries();
        assert_eq!(k4, 4 * k1);
        // 32 switches × 64 dsts × K entries.
        assert_eq!(k1, 32 * 64);
    }

    #[test]
    fn slot_zero_is_plain_dmodk() {
        let topo = fig3();
        for order in [SlotOrder::BottomFirst, SlotOrder::TopFirst] {
            let ft = ForwardingTables::build(&topo, 2, order);
            for (s, d) in [(0u32, 63u32), (5, 40), (17, 2)] {
                let (s, d) = (PnId(s), PnId(d));
                let nodes = ft.route(&topo, s, d, 0).unwrap();
                assert_eq!(nodes, topo.path_nodes(s, d, topo.dmodk_path(s, d)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "LMC-realizable")]
    fn k_beyond_lmc_panics() {
        let topo = fig3();
        let _ = ForwardingTables::build(&topo, 129, SlotOrder::BottomFirst);
    }

    #[test]
    fn try_build_returns_typed_errors() {
        use crate::RouteError;
        let topo = fig3();
        assert!(ForwardingTables::try_build(&topo, 4, SlotOrder::BottomFirst).is_ok());
        assert_eq!(
            ForwardingTables::try_build(&topo, 129, SlotOrder::BottomFirst).unwrap_err(),
            RouteError::BudgetExceedsLmc { k: 129 }
        );
        assert_eq!(
            ForwardingTables::try_build(&topo, 0, SlotOrder::TopFirst).unwrap_err(),
            RouteError::ZeroBudget
        );
    }

    #[test]
    fn shift_vector_lookup_bounds() {
        let topo = fig3();
        let v = &shift_vectors(&topo, 2, SlotOrder::BottomFirst)[1];
        assert_eq!(v.levels(), 3);
        assert_eq!(v.try_at(2), Some(v.at(2)));
        assert_eq!(v.try_at(0), None);
        assert_eq!(v.try_at(4), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shift_vector_at_zero_panics_descriptively() {
        let topo = fig3();
        let _ = shift_vectors(&topo, 1, SlotOrder::BottomFirst)[0].at(0);
    }
}
