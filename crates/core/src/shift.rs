//! The shift-1 limited multi-path heuristic.

use crate::Router;
use xgft::{PathId, PnId, Topology};

/// Shift-1 heuristic (§4.2.2): select the `K` *consecutive* paths
/// starting at the d-mod-k path,
/// `ALLPATHS[i], ALLPATHS[(i+1) mod X], …, ALLPATHS[(i+K-1) mod X]`.
///
/// Because consecutive path ids differ in the least-significant up-port
/// digit (the *top-level* choice), shift-1 is logically `K` copies of
/// d-mod-k that spread traffic across top-level switches while reusing
/// the same lower-level links — the limitation that motivates the
/// [`crate::Disjoint`] heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftOne {
    k: u64,
}

impl ShiftOne {
    /// Build a shift-1 router with path budget `K ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        Self::try_new(k).expect("the path budget K must be at least 1")
    }

    /// Fallible constructor: [`RouteError::ZeroBudget`](crate::RouteError::ZeroBudget)
    /// instead of a panic when `k == 0`.
    pub fn try_new(k: u64) -> Result<Self, crate::RouteError> {
        if k == 0 {
            return Err(crate::RouteError::ZeroBudget);
        }
        Ok(ShiftOne { k })
    }

    /// The configured path budget.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl Router for ShiftOne {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        let x = topo.num_paths(s, d);
        let i = topo.dmodk_path(s, d).0;
        let take = self.k.min(x);
        out.extend((0..take).map(|j| PathId((i + j) % x)));
    }

    fn name(&self) -> String {
        format!("shift-1({})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    #[test]
    fn paper_example_k3() {
        // §4.2.2: pair (0, 63), K = 3 → paths 7, 0, 1.
        let set = ShiftOne::new(3).path_set(&fig3(), PnId(0), PnId(63));
        let ids: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![7, 0, 1]);
    }

    #[test]
    fn k1_is_dmodk() {
        let topo = fig3();
        let r = ShiftOne::new(1);
        for (s, d) in [(0u32, 63u32), (3, 40), (10, 11)] {
            let (s, d) = (PnId(s), PnId(d));
            assert_eq!(r.path_set(&topo, s, d).paths(), &[topo.dmodk_path(s, d)]);
        }
    }

    #[test]
    fn saturates_at_all_paths() {
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        for k in [8, 9, 100] {
            let set = ShiftOne::new(k).path_set(&topo, s, d);
            assert_eq!(set.len(), 8);
            let mut ids: Vec<u64> = set.paths().iter().map(|p| p.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn consecutive_paths_differ_only_at_top() {
        // For K ≤ w_κ the selected paths share every up port except the
        // last (top-level) one.
        let topo = fig3();
        let (s, d) = (PnId(0), PnId(63));
        let set = ShiftOne::new(4).path_set(&topo, s, d);
        let mut u = [0u32; xgft::MAX_HEIGHT];
        let k0 = topo.path_up_ports(s, d, set.paths()[0], &mut u);
        let prefix: Vec<u32> = u[..k0 - 1].to_vec();
        for &p in &set.paths()[1..] {
            let k = topo.path_up_ports(s, d, p, &mut u);
            assert_eq!(k, k0);
            // All but the last digit may wrap only when the id wraps past
            // X; with i = 7 and K = 4 ids 0..2 have prefix (0, …).
            let _ = &prefix; // prefix equality holds only pre-wrap; the
                             // stronger invariant is exercised below.
        }
        // Non-wrapping case: pair with d-mod-k path 0.
        let d0 = PnId(0);
        let s0 = PnId(63);
        assert_eq!(topo.dmodk_path(s0, d0).0, 0);
        let set = ShiftOne::new(4).path_set(&topo, s0, d0);
        let kk = topo.path_up_ports(s0, d0, set.paths()[0], &mut u);
        let prefix: Vec<u32> = u[..kk - 1].to_vec();
        for &p in set.paths() {
            let k = topo.path_up_ports(s0, d0, p, &mut u);
            assert_eq!(&u[..k - 1], prefix.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        let _ = ShiftOne::new(0);
    }
}
