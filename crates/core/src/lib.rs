//! Limited multi-path routing on extended generalized fat-trees.
//!
//! This crate implements the primary contribution of Mahapatra, Yuan and
//! Nienaber, *"Limited Multi-path Routing on Extended Generalized
//! Fat-trees"* (IPDPS workshops, 2012): path-calculation heuristics that
//! pick `K` of the `X = Π_{i≤κ} w_i` shortest paths of every
//! source-destination pair, where `K` is a resource budget knob.
//!
//! * `K = 1` recovers single-path routing;
//! * `K ≥ X` recovers unlimited multi-path routing (`UMULTI`), which is
//!   optimal for every traffic matrix (Theorem 1 of the paper);
//! * in between, the heuristics trade routing quality for realizability
//!   (e.g. InfiniBand LID budgets, see [`lid`]).
//!
//! # Routers
//!
//! | Router | Idea | Paper section |
//! |---|---|---|
//! | [`DModK`] | deterministic destination-mod-k single path | §3.3 |
//! | [`SModK`] | source-mod-k single path (baseline twin) | §3.3 |
//! | [`ShiftOne`] | `K` consecutive paths after the d-mod-k path — spreads load at the top level only | §4.2.2 |
//! | [`Disjoint`] | `K` paths chosen by a recursive level-wise shift so they fork as *low* as possible | §4.2.3 |
//! | [`DisjointStride`] | maximal-stride variant of the disjoint selection (ablation; see DESIGN.md on the garbled worked example) | §4.2.3 |
//! | [`RandomK`] | `K` distinct paths sampled uniformly per SD pair | §4.2.1 |
//! | [`Umulti`] | all `X` paths, traffic split evenly | §4.1 |
//!
//! All multi-path routers guarantee: the selected set contains
//! `min(K, X)` *distinct* valid path ids, grows monotonically in quality
//! as `K` rises, and equals the full path set once `K ≥ X`.
//!
//! # Example
//!
//! ```
//! use xgft::{Topology, XgftSpec, PnId, PathId};
//! use lmpr_core::{Router, ShiftOne, Disjoint};
//!
//! // The paper's Figure 3 topology and worked example pair (0, 63).
//! let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
//! let (s, d) = (PnId(0), PnId(63));
//!
//! // shift-1 with K = 3 selects paths 7, 0, 1 (§4.2.2).
//! let set = ShiftOne::new(3).path_set(&topo, s, d);
//! assert_eq!(set.paths(), &[PathId(7), PathId(0), PathId(1)]);
//!
//! // disjoint with K = 2 selects paths 7 and 3, which fork at the
//! // level-1 switch (§4.2.3).
//! let set = Disjoint::new(2).path_set(&topo, s, d);
//! assert_eq!(set.paths(), &[PathId(7), PathId(3)]);
//! // Each carries half of the pair's traffic.
//! assert!((set.fraction() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disjoint;
mod dmodk;
mod error;
mod fault_aware;
pub mod forwarding;
mod kind;
pub mod lid;
mod path_set;
mod random;
mod router;
mod selection;
mod shift;
mod umulti;

pub use disjoint::{Disjoint, DisjointStride};
pub use dmodk::{DModK, SModK};
pub use error::RouteError;
pub use fault_aware::{degrade_selection, FaultAware};
pub use kind::RouterKind;
pub use path_set::PathSet;
pub use random::RandomK;
pub use router::Router;
pub use selection::{route_key, route_key_pair, CachedSelection, SelectionEngine, SelectionStats};
pub use shift::ShiftOne;
pub use umulti::Umulti;
