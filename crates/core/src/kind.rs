//! Dynamic router selection for experiment drivers and CLIs.

use crate::{DModK, Disjoint, DisjointStride, RandomK, Router, SModK, ShiftOne, Umulti};
use xgft::{PathId, PnId, Topology};

/// Every routing scheme in the crate behind one enum, so experiment
/// binaries can be driven by strings like `disjoint:8` without trait
/// objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Destination-mod-k single path.
    DModK,
    /// Source-mod-k single path.
    SModK,
    /// Shift-1 with budget `K`.
    ShiftOne(u64),
    /// Disjoint (paper recursion) with budget `K`.
    Disjoint(u64),
    /// Stride ablation variant of disjoint with budget `K`.
    DisjointStride(u64),
    /// Random with budget `K` and a seed.
    RandomK(u64, u64),
    /// Unlimited multi-path.
    Umulti,
}

impl RouterKind {
    /// Parse a spec string: `dmodk`, `smodk`, `umulti`, `shift1:K`,
    /// `disjoint:K`, `stride:K`, `random:K[:seed]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut it = s.split(':');
        let head = it.next().unwrap_or("");
        let arg = |it: &mut std::str::Split<'_, char>| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{head} requires a K argument, e.g. {head}:4"))?
                .parse::<u64>()
                .map_err(|e| format!("bad K in {s}: {e}"))
        };
        let kind = match head {
            "dmodk" | "d-mod-k" => RouterKind::DModK,
            "smodk" | "s-mod-k" => RouterKind::SModK,
            "umulti" => RouterKind::Umulti,
            "shift1" | "shift-1" => RouterKind::ShiftOne(arg(&mut it)?),
            "disjoint" => RouterKind::Disjoint(arg(&mut it)?),
            "stride" | "disjoint-stride" => RouterKind::DisjointStride(arg(&mut it)?),
            "random" => {
                let k = arg(&mut it)?;
                let seed = match it.next() {
                    Some(t) => t
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed in {s}: {e}"))?,
                    None => 0,
                };
                RouterKind::RandomK(k, seed)
            }
            other => return Err(format!("unknown router kind: {other}")),
        };
        if it.next().is_some() {
            return Err(format!("trailing arguments in router spec: {s}"));
        }
        if let RouterKind::ShiftOne(0)
        | RouterKind::Disjoint(0)
        | RouterKind::DisjointStride(0)
        | RouterKind::RandomK(0, _) = kind
        {
            return Err("the path budget K must be at least 1".to_owned());
        }
        Ok(kind)
    }

    /// Path budget of the scheme (`None` for UMULTI, whose budget is the
    /// pair-dependent path count).
    pub fn budget(&self) -> Option<u64> {
        match *self {
            RouterKind::DModK | RouterKind::SModK => Some(1),
            RouterKind::ShiftOne(k)
            | RouterKind::Disjoint(k)
            | RouterKind::DisjointStride(k)
            | RouterKind::RandomK(k, _) => Some(k),
            RouterKind::Umulti => None,
        }
    }

    /// Check the scheme's parameters *before* any routing runs: a zero
    /// budget is reported as the typed
    /// [`RouteError::ZeroBudget`](crate::RouteError::ZeroBudget) rather
    /// than panicking inside `fill_paths`. Pre-flight verification and
    /// experiment drivers call this on parsed-but-untrusted specs.
    pub fn validate(&self) -> Result<(), crate::RouteError> {
        if self.budget() == Some(0) {
            return Err(crate::RouteError::ZeroBudget);
        }
        Ok(())
    }

    /// Replace the scheme's seed (no-op for deterministic schemes);
    /// used when averaging random routing over several seeds.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            RouterKind::RandomK(k, _) => RouterKind::RandomK(k, seed),
            other => other,
        }
    }
}

impl Router for RouterKind {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        match *self {
            RouterKind::DModK => DModK.fill_paths(topo, s, d, out),
            RouterKind::SModK => SModK.fill_paths(topo, s, d, out),
            RouterKind::ShiftOne(k) => ShiftOne::new(k).fill_paths(topo, s, d, out),
            RouterKind::Disjoint(k) => Disjoint::new(k).fill_paths(topo, s, d, out),
            RouterKind::DisjointStride(k) => DisjointStride::new(k).fill_paths(topo, s, d, out),
            RouterKind::RandomK(k, seed) => RandomK::new(k, seed).fill_paths(topo, s, d, out),
            RouterKind::Umulti => Umulti.fill_paths(topo, s, d, out),
        }
    }

    fn name(&self) -> String {
        match *self {
            RouterKind::DModK => DModK.name(),
            RouterKind::SModK => SModK.name(),
            RouterKind::ShiftOne(k) => ShiftOne::new(k).name(),
            RouterKind::Disjoint(k) => Disjoint::new(k).name(),
            RouterKind::DisjointStride(k) => DisjointStride::new(k).name(),
            RouterKind::RandomK(k, seed) => RandomK::new(k, seed).name(),
            RouterKind::Umulti => Umulti.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    #[test]
    fn parse_roundtrips() {
        assert_eq!(RouterKind::parse("dmodk"), Ok(RouterKind::DModK));
        assert_eq!(RouterKind::parse("d-mod-k"), Ok(RouterKind::DModK));
        assert_eq!(RouterKind::parse("shift1:4"), Ok(RouterKind::ShiftOne(4)));
        assert_eq!(RouterKind::parse("disjoint:8"), Ok(RouterKind::Disjoint(8)));
        assert_eq!(
            RouterKind::parse("stride:2"),
            Ok(RouterKind::DisjointStride(2))
        );
        assert_eq!(RouterKind::parse("random:3"), Ok(RouterKind::RandomK(3, 0)));
        assert_eq!(
            RouterKind::parse("random:3:77"),
            Ok(RouterKind::RandomK(3, 77))
        );
        assert_eq!(RouterKind::parse("umulti"), Ok(RouterKind::Umulti));
        assert!(RouterKind::parse("disjoint").is_err());
        assert!(RouterKind::parse("disjoint:0").is_err());
        assert!(RouterKind::parse("nope").is_err());
        assert!(RouterKind::parse("dmodk:1:2").is_err());
        assert!(RouterKind::parse("shift1:x").is_err());
    }

    #[test]
    fn dispatch_matches_concrete_routers() {
        let topo = Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap());
        let (s, d) = (PnId(0), PnId(63));
        assert_eq!(
            RouterKind::Disjoint(4).path_set(&topo, s, d),
            Disjoint::new(4).path_set(&topo, s, d)
        );
        assert_eq!(
            RouterKind::RandomK(2, 5).path_set(&topo, s, d),
            RandomK::new(2, 5).path_set(&topo, s, d)
        );
        assert_eq!(RouterKind::Umulti.name(), "umulti");
    }

    #[test]
    fn budgets_and_seeds() {
        assert_eq!(RouterKind::DModK.budget(), Some(1));
        assert_eq!(RouterKind::Disjoint(8).budget(), Some(8));
        assert_eq!(RouterKind::Umulti.budget(), None);
        assert_eq!(
            RouterKind::RandomK(4, 0).with_seed(9),
            RouterKind::RandomK(4, 9)
        );
        assert_eq!(RouterKind::DModK.with_seed(9), RouterKind::DModK);
    }

    #[test]
    fn validate_rejects_zero_budgets() {
        use crate::RouteError;
        assert_eq!(
            RouterKind::Disjoint(0).validate(),
            Err(RouteError::ZeroBudget)
        );
        assert_eq!(
            RouterKind::RandomK(0, 7).validate(),
            Err(RouteError::ZeroBudget)
        );
        assert_eq!(RouterKind::Disjoint(4).validate(), Ok(()));
        assert_eq!(RouterKind::DModK.validate(), Ok(()));
        assert_eq!(RouterKind::Umulti.validate(), Ok(()));
    }
}
