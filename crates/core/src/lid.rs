//! InfiniBand-style address (LID) budget model.
//!
//! The paper motivates *limited* multi-path routing with a concrete
//! resource constraint: "unlimited multi-path routing cannot be
//! supported on many reasonably sized InfiniBand networks due to
//! resource constraints". In InfiniBand, distinct paths to the same
//! destination port are realized by assigning the port multiple Local
//! IDentifiers (LIDs) via the LID Mask Control (LMC) field: a port owns
//! `2^LMC` consecutive LIDs, and the unicast LID space holds
//! `0xBFFF = 49151` addresses shared by *all* ports (switches consume
//! one LID each).
//!
//! This module quantifies that budget so examples and tests can show
//! where UMULTI stops being realizable and limited multi-path routing
//! takes over — e.g. the paper's 24-port 3-tree needs 144 paths per pair
//! for UMULTI, which no LMC setting can realize network-wide.

use xgft::Topology;

/// Number of unicast LIDs available in an InfiniBand subnet
/// (`1 ..= 0xBFFF`; LID 0 is reserved and `0xC000+` is multicast).
pub const UNICAST_LIDS: u64 = 0xBFFF;

/// Maximum value of the LID Mask Control field (3 bits).
pub const MAX_LMC: u32 = 7;

/// Smallest LMC that yields at least `k` LIDs per port (`2^LMC ≥ k`),
/// or `None` if `k` exceeds `2^MAX_LMC = 128`.
pub fn lmc_for_budget(k: u64) -> Option<u32> {
    assert!(k >= 1, "path budget must be at least 1");
    let lmc = 64 - (k - 1).leading_zeros(); // ceil(log2(k))
    (lmc <= MAX_LMC).then_some(lmc)
}

/// Unicast LIDs consumed by running a `K`-path configuration on a
/// topology: every end port needs `2^LMC(K)` LIDs and every switch one.
pub fn lids_required(topo: &Topology, k: u64) -> Option<u64> {
    let lmc = lmc_for_budget(k)?;
    let per_port = 1u64 << lmc;
    let switches: u64 = (1..=topo.height())
        .map(|l| topo.nodes_at_level(l) as u64)
        .sum();
    Some(topo.num_pns() as u64 * per_port + switches)
}

/// Whether a `K`-path configuration fits the standard unicast LID space.
pub fn is_realizable(topo: &Topology, k: u64) -> bool {
    lids_required(topo, k).is_some_and(|need| need <= UNICAST_LIDS)
}

/// The largest path budget `K` realizable on this topology within the
/// unicast LID space (always at least 1 for any topology this crate can
/// represent, since single-path routing needs one LID per port).
pub fn max_realizable_budget(topo: &Topology) -> u64 {
    let mut best = 1;
    for lmc in 0..=MAX_LMC {
        let k = 1u64 << lmc;
        if is_realizable(topo, k) {
            best = k;
        }
    }
    best
}

/// Whether UMULTI (all `Π w_i` paths between the farthest pairs) is
/// realizable — the situation the paper's introduction rules out for
/// "reasonably sized" fabrics.
pub fn umulti_realizable(topo: &Topology) -> bool {
    let max_paths = topo.w_prod(topo.height());
    lmc_for_budget(max_paths).is_some() && is_realizable(topo, max_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft::XgftSpec;

    #[test]
    fn lmc_rounds_up() {
        assert_eq!(lmc_for_budget(1), Some(0));
        assert_eq!(lmc_for_budget(2), Some(1));
        assert_eq!(lmc_for_budget(3), Some(2));
        assert_eq!(lmc_for_budget(8), Some(3));
        assert_eq!(lmc_for_budget(128), Some(7));
        assert_eq!(lmc_for_budget(129), None);
        assert_eq!(lmc_for_budget(144), None);
    }

    #[test]
    fn ranger_scale_umulti_is_unrealizable() {
        // The paper's §4.1 example: a 24-port 3-tree has 144 paths
        // between far pairs; no LMC realizes that.
        let topo = Topology::new(XgftSpec::m_port_n_tree(24, 3).unwrap());
        assert_eq!(topo.w_prod(3), 144);
        assert!(!umulti_realizable(&topo));
        // Limited multi-path with K = 8 fits easily.
        assert!(is_realizable(&topo, 8));
        // K = 16 needs 3456·16 + 720 = 56016 LIDs > 49151: the LID wall
        // bites well below the path count.
        assert!(!is_realizable(&topo, 16));
        assert_eq!(max_realizable_budget(&topo), 8);
    }

    #[test]
    fn small_fabrics_realize_umulti() {
        let topo = Topology::new(XgftSpec::m_port_n_tree(8, 3).unwrap());
        assert_eq!(topo.w_prod(3), 16);
        assert!(umulti_realizable(&topo));
    }

    #[test]
    fn lid_accounting_includes_switches() {
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).unwrap());
        // 4 PNs, 2 + 2 switches; K = 2 → LMC 1 → 4·2 + 4 = 12 LIDs.
        assert_eq!(lids_required(&topo, 2), Some(12));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        let _ = lmc_for_budget(0);
    }
}
