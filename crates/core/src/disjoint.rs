//! The disjoint limited multi-path heuristic and its stride ablation.

use crate::Router;
use xgft::{PathId, PnId, Topology};

/// Disjoint heuristic (§4.2.3): keep the d-mod-k structure but shift the
/// path index so that successive selections fork as *low* in the tree as
/// possible, maximizing link-disjointness among the `K` chosen paths.
///
/// Writing the path id in the mixed radix `u_1·Δ_1 + … + u_κ·Δ_κ` with
/// `Δ_t = Π_{i>t} w_i`, the selection enumerates offsets `δ` from the
/// d-mod-k index `i` in the order produced by the paper's recursion:
///
/// * the first `w_1` offsets vary only the level-1 digit (`δ = j·Δ_1`) —
///   these paths fork at the processing node and are fully link-disjoint;
/// * the next factor varies the level-2 digit (`level-1 disjoint groups
///   starting from i, i + Δ_2, …, i + (w_2 - 1)·Δ_2`) — forks at level-1
///   switches;
/// * and so on up to level κ.
///
/// Equivalently, offset number `n` is the mixed-radix *digit reversal*
/// of `n` (a van-der-Corput sequence): write
/// `n = n_1 + n_2·w_1 + n_3·w_1 w_2 + …` and emit
/// `δ(n) = n_1·Δ_1 + n_2·Δ_2 + …`.
///
/// For the paper's worked pair `(0, 63)` in `XGFT(3; 4,4,4; 1,2,4)` with
/// d-mod-k index 7 this yields 7, 3, 0, 4, 1, 5, 2, 6 — the first two
/// (7 and 3) are exactly the level-1-forking pair called out in §4.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disjoint {
    k: u64,
}

impl Disjoint {
    /// Build a disjoint router with path budget `K ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        Self::try_new(k).expect("the path budget K must be at least 1")
    }

    /// Fallible constructor: [`RouteError::ZeroBudget`](crate::RouteError::ZeroBudget)
    /// instead of a panic when `k == 0`.
    pub fn try_new(k: u64) -> Result<Self, crate::RouteError> {
        if k == 0 {
            return Err(crate::RouteError::ZeroBudget);
        }
        Ok(Disjoint { k })
    }

    /// The configured path budget.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Offset of the `n`-th selected path from the d-mod-k index:
    /// mixed-radix digit reversal of `n` over the radices
    /// `(w_1, …, w_κ)` of the NCA sub-tree.
    fn offset(topo: &Topology, kappa: usize, n: u64) -> u64 {
        let x = topo.w_prod(kappa);
        let mut delta = 0u64;
        let mut rem = n;
        for t in 1..=kappa {
            let w_t = topo.spec().w_at(t) as u64;
            let digit = rem % w_t;
            rem /= w_t;
            delta += digit * (x / topo.w_prod(t));
        }
        delta
    }
}

impl Router for Disjoint {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        let kappa = topo.nca_level(s, d);
        let x = topo.w_prod(kappa);
        let i = topo.dmodk_path(s, d).0;
        let take = self.k.min(x);
        out.extend((0..take).map(|n| PathId((i + Self::offset(topo, kappa, n)) % x)));
    }

    fn name(&self) -> String {
        format!("disjoint({})", self.k)
    }
}

/// Maximal-stride variant of the disjoint selection (ablation): the
/// `n`-th path is `(i + ⌊n·X/K'⌋) mod X` with `K' = min(K, X)`.
///
/// When `K` divides `X` the selected ids are evenly spaced over the path
/// space, which matches the alternative reading of the paper's garbled
/// worked example (paths 7, 1, 3, 5 for `K = 4`). On symmetric XGFTs the
/// two variants are statistically equivalent; the ablation bench
/// (`benches/ablation.rs`) quantifies this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisjointStride {
    k: u64,
}

impl DisjointStride {
    /// Build a stride-disjoint router with path budget `K ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        Self::try_new(k).expect("the path budget K must be at least 1")
    }

    /// Fallible constructor: [`RouteError::ZeroBudget`](crate::RouteError::ZeroBudget)
    /// instead of a panic when `k == 0`.
    pub fn try_new(k: u64) -> Result<Self, crate::RouteError> {
        if k == 0 {
            return Err(crate::RouteError::ZeroBudget);
        }
        Ok(DisjointStride { k })
    }

    /// The configured path budget.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl Router for DisjointStride {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        out.clear();
        let x = topo.num_paths(s, d);
        let i = topo.dmodk_path(s, d).0;
        let take = self.k.min(x);
        out.extend((0..take).map(|n| PathId((i + n * x / take) % x)));
    }

    fn name(&self) -> String {
        format!("disjoint-stride({})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DModK, ShiftOne};
    use xgft::{XgftSpec, MAX_HEIGHT};

    fn fig3() -> Topology {
        Topology::new(XgftSpec::new(&[4, 4, 4], &[1, 2, 4]).unwrap())
    }

    fn ids(set: &crate::PathSet) -> Vec<u64> {
        set.paths().iter().map(|p| p.0).collect()
    }

    #[test]
    fn paper_example_level1_pair() {
        // §4.2.3: the level-1-forking partner of Path 7 is Path 3
        // (offset Δ_2 = w_3 = 4).
        let set = Disjoint::new(2).path_set(&fig3(), PnId(0), PnId(63));
        assert_eq!(ids(&set), vec![7, 3]);
    }

    #[test]
    fn literal_recursion_order() {
        let topo = fig3();
        let set = Disjoint::new(8).path_set(&topo, PnId(0), PnId(63));
        assert_eq!(ids(&set), vec![7, 3, 0, 4, 1, 5, 2, 6]);
    }

    #[test]
    fn stride_variant_matches_alternative_reading() {
        // Alternative reading of the garbled example: K = 4 → 7, 1, 3, 5.
        let set = DisjointStride::new(4).path_set(&fig3(), PnId(0), PnId(63));
        assert_eq!(ids(&set), vec![7, 1, 3, 5]);
    }

    #[test]
    fn both_variants_start_at_dmodk_and_cover_all() {
        let topo = fig3();
        for (s, d) in [(0u32, 63u32), (13, 50), (2, 33)] {
            let (s, d) = (PnId(s), PnId(d));
            let base = topo.dmodk_path(s, d);
            for k in 1..=10u64 {
                for r in [
                    Box::new(Disjoint::new(k)) as Box<dyn Router>,
                    Box::new(DisjointStride::new(k)),
                ] {
                    let set = r.path_set(&topo, s, d);
                    assert_eq!(set.paths()[0], base, "first path must be d-mod-k");
                    let expect = k.min(topo.num_paths(s, d)) as usize;
                    assert_eq!(set.len(), expect);
                    let mut v = ids(&set);
                    v.sort_unstable();
                    v.dedup();
                    assert_eq!(v.len(), expect, "paths must be distinct");
                }
            }
        }
    }

    #[test]
    fn first_w1_paths_fork_at_the_processing_node() {
        // On a topology with w_1 > 1 the first w_1 disjoint selections
        // must differ in u_1 — fully link-disjoint paths.
        let topo = Topology::new(XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).unwrap());
        let (s, d) = (PnId(0), PnId(7));
        assert_eq!(topo.num_paths(s, d), 8);
        let set = Disjoint::new(2).path_set(&topo, s, d);
        let mut u = [0u32; MAX_HEIGHT];
        let mut first_hops = std::collections::HashSet::new();
        for &p in set.paths() {
            topo.path_up_ports(s, d, p, &mut u);
            first_hops.insert(u[0]);
        }
        assert_eq!(
            first_hops.len(),
            2,
            "first w_1 paths must use distinct PN ports"
        );
    }

    #[test]
    fn level_structure_of_selection() {
        // First w_1·w_2 selections use every (u_1, u_2) combination once.
        let topo = Topology::new(XgftSpec::new(&[2, 2, 2], &[2, 2, 2]).unwrap());
        let (s, d) = (PnId(1), PnId(6));
        let set = Disjoint::new(4).path_set(&topo, s, d);
        let mut u = [0u32; MAX_HEIGHT];
        let mut combos = std::collections::HashSet::new();
        for &p in set.paths() {
            topo.path_up_ports(s, d, p, &mut u);
            combos.insert((u[0], u[1]));
        }
        assert_eq!(combos.len(), 4);
    }

    #[test]
    fn k1_equals_dmodk_and_full_k_is_all_paths() {
        let topo = fig3();
        let (s, d) = (PnId(5), PnId(58));
        assert_eq!(
            Disjoint::new(1).path_set(&topo, s, d),
            DModK.path_set(&topo, s, d)
        );
        let all = Disjoint::new(1000).path_set(&topo, s, d);
        assert_eq!(all.len() as u64, topo.num_paths(s, d));
        // Same coverage as shift-1 at full budget (both become UMULTI).
        let mut a = ids(&all);
        let mut b = ids(&ShiftOne::new(1000).path_set(&topo, s, d));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        let _ = Disjoint::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected_stride() {
        let _ = DisjointStride::new(0);
    }
}
