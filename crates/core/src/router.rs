//! The traffic-oblivious router abstraction.

use crate::PathSet;
use xgft::{PathId, PnId, Topology};

/// A traffic-oblivious routing scheme: a deterministic mapping from an
/// SD pair to a set of shortest paths with uniform traffic fractions.
///
/// "Oblivious" means the mapping may not depend on network state;
/// [`crate::RandomK`] is still oblivious because its randomness is a
/// pure function of `(seed, s, d)`.
///
/// Implementations must uphold:
///
/// * every returned id is `< topology.num_paths(s, d)`;
/// * ids are distinct;
/// * for `s == d` the set is `{PathId(0)}` (the empty path).
pub trait Router: Send + Sync {
    /// Append the selected path ids for `(s, d)` to `out` (cleared
    /// first). This is the allocation-friendly primitive the simulators
    /// call in hot loops.
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>);

    /// Convenience wrapper building an owned [`PathSet`].
    fn path_set(&self, topo: &Topology, s: PnId, d: PnId) -> PathSet {
        let mut v = Vec::new();
        self.fill_paths(topo, s, d, &mut v);
        PathSet::new(v)
    }

    /// Human-readable name, used in experiment output (matches the
    /// labels in the paper's figures, e.g. `d-mod-k`, `disjoint(8)`).
    fn name(&self) -> String;
}

impl<R: Router + ?Sized> Router for &R {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        (**self).fill_paths(topo, s, d, out)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<R: Router + ?Sized> Router for Box<R> {
    fn fill_paths(&self, topo: &Topology, s: PnId, d: PnId, out: &mut Vec<PathId>) {
        (**self).fill_paths(topo, s, d, out)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DModK;
    use xgft::XgftSpec;

    #[test]
    fn blanket_impls_delegate() {
        let topo = Topology::new(XgftSpec::new(&[2, 2], &[1, 2]).unwrap());
        let r = DModK;
        let by_ref: &dyn Router = &r;
        let boxed: Box<dyn Router> = Box::new(DModK);
        let (s, d) = (PnId(0), PnId(3));
        assert_eq!(by_ref.path_set(&topo, s, d), r.path_set(&topo, s, d));
        assert_eq!(boxed.path_set(&topo, s, d), r.path_set(&topo, s, d));
        assert_eq!(boxed.name(), "d-mod-k");
    }
}
