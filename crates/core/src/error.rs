//! Typed routing errors.

use xgft::PnId;

/// Errors surfaced by the fallible routing APIs (`try_*` constructors
/// and fault-aware path selection) instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The pair has no surviving shortest path under the active fault
    /// set — the network is disconnected for this flow.
    Disconnected {
        /// Source processing node.
        src: PnId,
        /// Destination processing node.
        dst: PnId,
    },
    /// A path budget of `K = 0` was requested (every heuristic needs at
    /// least one path).
    ZeroBudget,
    /// An empty path set was supplied where at least one path is
    /// required.
    EmptyPathSet,
    /// The requested path budget cannot be realized with InfiniBand's
    /// 3-bit LMC field (`2^7 = 128` LIDs per destination).
    BudgetExceedsLmc {
        /// The requested budget.
        k: u64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Disconnected { src, dst } => {
                write!(f, "no surviving path from PN {} to PN {}", src.0, dst.0)
            }
            RouteError::ZeroBudget => write!(f, "the path budget K must be at least 1"),
            RouteError::EmptyPathSet => {
                write!(f, "a PathSet must contain at least one path")
            }
            RouteError::BudgetExceedsLmc { k } => {
                write!(f, "K = {k} exceeds the LMC-realizable budget (128)")
            }
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RouteError::Disconnected {
            src: PnId(3),
            dst: PnId(9),
        };
        assert_eq!(e.to_string(), "no surviving path from PN 3 to PN 9");
        assert!(RouteError::ZeroBudget.to_string().contains("K"));
        assert!(RouteError::EmptyPathSet
            .to_string()
            .contains("at least one"));
    }
}
