//! The multi-path routing unit: a set of selected paths for one SD pair.

use crate::RouteError;
use xgft::PathId;

/// The paths a router selects for one SD pair, with traffic split
/// *uniformly* across them — the paper's multi-path model assigns each
/// of the `|MP_{i,j}|` paths the fraction `1 / |MP_{i,j}|`.
///
/// Invariants (enforced by the constructors and checked in debug
/// builds): non-empty, all ids distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSet {
    paths: Vec<PathId>,
}

impl PathSet {
    /// Build a set from distinct path ids.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty; duplicates are a logic error and are
    /// asserted in debug builds.
    pub fn new(paths: Vec<PathId>) -> Self {
        match Self::try_new(paths) {
            Ok(set) => set,
            Err(_) => panic!("a PathSet must contain at least one path"),
        }
    }

    /// Fallible constructor: [`RouteError::EmptyPathSet`] instead of a
    /// panic when `paths` is empty.
    pub fn try_new(paths: Vec<PathId>) -> Result<Self, RouteError> {
        if paths.is_empty() {
            return Err(RouteError::EmptyPathSet);
        }
        debug_assert!(
            {
                let mut sorted: Vec<_> = paths.iter().collect();
                sorted.sort();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "PathSet ids must be distinct"
        );
        Ok(PathSet { paths })
    }

    /// A single-path set.
    pub fn single(path: PathId) -> Self {
        PathSet { paths: vec![path] }
    }

    /// The selected path ids, in the order the heuristic produced them.
    pub fn paths(&self) -> &[PathId] {
        &self.paths
    }

    /// Number of selected paths (`|MP_{i,j}|`).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Always false (sets are non-empty by construction); provided to
    /// satisfy the usual container conventions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Traffic fraction carried by each path (`1 / len`).
    pub fn fraction(&self) -> f64 {
        1.0 / self.paths.len() as f64
    }

    /// Iterate `(path, fraction)` pairs.
    pub fn weighted(&self) -> impl Iterator<Item = (PathId, f64)> + '_ {
        let f = self.fraction();
        self.paths.iter().map(move |&p| (p, f))
    }
}

impl IntoIterator for PathSet {
    type Item = PathId;
    type IntoIter = std::vec::IntoIter<PathId>;
    fn into_iter(self) -> Self::IntoIter {
        self.paths.into_iter()
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = &'a PathId;
    type IntoIter = std::slice::Iter<'a, PathId>;
    fn into_iter(self) -> Self::IntoIter {
        self.paths.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let s = PathSet::new(vec![PathId(0), PathId(3), PathId(5)]);
        let total: f64 = s.weighted().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn single_has_fraction_one() {
        let s = PathSet::single(PathId(9));
        assert_eq!(s.paths(), &[PathId(9)]);
        assert_eq!(s.fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_set_rejected() {
        let _ = PathSet::new(vec![]);
    }

    #[test]
    fn iterates_in_order() {
        let s = PathSet::new(vec![PathId(2), PathId(0)]);
        let ids: Vec<u64> = (&s).into_iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![2, 0]);
        let ids: Vec<u64> = s.into_iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![2, 0]);
    }
}
