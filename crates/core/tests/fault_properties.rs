//! Property-based tests for fault-aware routing: for arbitrary XGFTs,
//! SD pairs and sampled fault sets, the degraded selection must stay
//! inside the fault-free enumeration, avoid every failed link, keep the
//! `min(K, X_surviving)` cardinality, and collapse to the inner
//! heuristic bit-for-bit when the fault set is empty.

use lmpr_core::{Disjoint, DisjointStride, FaultAware, RandomK, RouteError, Router, ShiftOne};
use proptest::prelude::*;
use xgft::{FaultSet, PathId, PnId, Topology, XgftSpec};

fn arb_topo() -> impl Strategy<Value = Topology> {
    (1usize..=3)
        .prop_flat_map(|h| {
            (
                prop::collection::vec(2u32..=4, h),
                prop::collection::vec(1u32..=4, h),
            )
        })
        .prop_map(|(m, w)| Topology::new(XgftSpec::new(&m, &w).expect("valid spec")))
}

/// Topology, SD pair, budget and a sampled fault set (up to ~8 % of
/// links plus occasionally a failed switch).
fn degraded_case() -> impl Strategy<Value = (Topology, PnId, PnId, u64, FaultSet)> {
    arb_topo().prop_flat_map(|t| {
        let n = t.num_pns();
        (Just(t), 0..n, 0..n, 1u64..=10, 0u64..=200, 0u32..=8).prop_map(
            |(t, s, d, k, seed, rate_pct)| {
                let faults = FaultSet::sample(&t, rate_pct as f64 / 100.0, 0.0, seed);
                (t, PnId(s), PnId(d), k, faults)
            },
        )
    })
}

fn all_limited_routers(k: u64) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(ShiftOne::new(k)),
        Box::new(Disjoint::new(k)),
        Box::new(DisjointStride::new(k)),
        Box::new(RandomK::new(k, 0xFEED)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn degraded_sets_are_surviving_subsets_of_the_enumeration(
        (t, s, d, k, faults) in degraded_case()
    ) {
        let x = t.num_paths(s, d);
        let surviving = faults.num_surviving(&t, s, d);
        for r in all_limited_routers(k) {
            let name = r.name();
            let fa = FaultAware::new(r, faults.clone());
            let mut out: Vec<PathId> = Vec::new();
            match fa.try_fill_paths(&t, s, d, &mut out) {
                Ok(()) => {
                    // Cardinality: min(K, surviving X).
                    prop_assert_eq!(
                        out.len() as u64, k.min(surviving),
                        "router {} cardinality", &name
                    );
                    for &p in &out {
                        // Subset of the fault-free enumeration…
                        prop_assert!(p.0 < x, "router {} out-of-range id", &name);
                        // …using only surviving links.
                        prop_assert!(
                            faults.path_survives(&t, s, d, p),
                            "router {} selected a dead path", &name
                        );
                    }
                    let mut ids: Vec<u64> = out.iter().map(|p| p.0).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    prop_assert_eq!(ids.len(), out.len(), "router {} duplicates", &name);
                }
                Err(e) => {
                    prop_assert_eq!(surviving, 0, "router {} spurious error", &name);
                    prop_assert_eq!(e, RouteError::Disconnected { src: s, dst: d });
                    prop_assert!(out.is_empty());
                }
            }
        }
    }

    #[test]
    fn empty_fault_set_reproduces_every_heuristic_bit_for_bit(
        (t, s, d, k, _faults) in degraded_case()
    ) {
        for r in all_limited_routers(k) {
            let plain = r.path_set(&t, s, d);
            let fa = FaultAware::new(r, FaultSet::default());
            prop_assert_eq!(
                fa.try_path_set(&t, s, d).expect("fault-free routing cannot disconnect"),
                plain.clone(),
                "adapter altered {}", fa.name()
            );
            // The infallible trait path agrees too.
            prop_assert_eq!(fa.path_set(&t, s, d), plain);
        }
    }

    #[test]
    fn disconnection_matches_the_connectivity_oracle(
        (t, s, d, k, faults) in degraded_case()
    ) {
        let fa = FaultAware::new(Disjoint::new(k), faults.clone());
        let routed = fa.try_path_set(&t, s, d).is_ok();
        prop_assert_eq!(routed, faults.connected(&t, s, d));
    }
}
